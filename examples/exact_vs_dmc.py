#!/usr/bin/env python3
"""Ground truth: DMC ensembles vs the exactly integrated Master Equation.

For a tiny 2x2 lattice the full Master Equation (3^4 = 81 configuration
states) can be integrated exactly.  This example shows the stochastic
simulators (RSM, VSSM, FRM) converging to the exact coverage curves in
ensemble average — the correctness foundation of everything else in
this package.

Run:  python examples/exact_vs_dmc.py
"""

import numpy as np

from repro import Configuration, Lattice, MasterEquation
from repro.dmc import FRM, RSM, VSSM
from repro.io import format_table
from repro.models import ziff_model


def main() -> None:
    model = ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)
    lattice = Lattice((2, 2))

    # --- exact ----------------------------------------------------------
    me = MasterEquation(model, lattice)
    print(f"state space: {me.n_states} configurations")
    p0 = me.delta(Configuration.empty(lattice, model.species))
    times = [0.25, 0.5, 1.0, 2.0]
    P = me.propagate(p0, times)
    exact_co = me.expected_coverage(P, "CO")
    exact_o = me.expected_coverage(P, "O")

    # --- stochastic ensembles --------------------------------------------
    n_runs = 400
    rows = []
    for k, t in enumerate(times):
        row = [t, f"{exact_co[k]:.4f}/{exact_o[k]:.4f}"]
        for cls in (RSM, VSSM, FRM):
            co = np.empty(n_runs)
            o = np.empty(n_runs)
            for seed in range(n_runs):
                res = cls(model, lattice, seed=seed).run(until=t)
                co[seed] = res.final_state.coverage("CO")
                o[seed] = res.final_state.coverage("O")
            row.append(f"{co.mean():.4f}/{o.mean():.4f}")
        rows.append(row)

    print()
    print("<theta_CO>/<theta_O> at time t (ensemble of 400 runs each):")
    print(format_table(["t", "exact ME", "RSM", "VSSM", "FRM"], rows))
    print()
    print("standard error of each ensemble mean is ~0.02; all three DMC")
    print("algorithms realise the same Master Equation.")


if __name__ == "__main__":
    main()
