#!/usr/bin/env python3
"""Quickstart: simulate CO oxidation on a catalyst surface with RSM.

This is the paper's running example (section 2, Table I): CO adsorbs
on vacant sites, O2 adsorbs dissociatively on vacant pairs, adjacent
CO + O react to CO2 and desorb.  We build the model, run the Random
Selection Method (the paper's reference DMC algorithm), and print the
coverage kinetics plus a picture of the final surface.

Run:  python examples/quickstart.py
"""

from repro import CoverageObserver, Lattice, RSM, SnapshotObserver
from repro.io import format_series, render_frames, side_by_side
from repro.models import empty_surface, ziff_model


def main() -> None:
    # --- the model: Table I with explicit rate constants --------------
    # (rates chosen inside the reactive window of the ZGB phase diagram,
    # so the steady state keeps producing CO2 instead of poisoning)
    model = ziff_model(k_co=1.0, k_o2=0.55, k_co2=10.0)
    print(model.describe())
    print()

    # --- the surface ---------------------------------------------------
    lattice = Lattice((60, 60))
    initial = empty_surface(lattice, model)

    # --- simulate ------------------------------------------------------
    snapshots = SnapshotObserver(interval=10.0)
    sim = RSM(
        model,
        lattice,
        seed=2024,
        initial=initial,
        observers=[CoverageObserver(interval=2.0), snapshots],
    )
    result = sim.run(until=40.0)

    # --- report ----------------------------------------------------------
    print(result.summary())
    print()
    print("coverage kinetics:")
    print(format_series(result.times, result.coverage, max_rows=12))
    print()
    print("surface time-lapse (. vacant, C = CO, O = oxygen), 20x48 windows:")
    data = snapshots.data()
    frames = render_frames(
        lattice, model.species, data["snapshots"], data["snapshot_times"],
        max_frames=3,
    )
    cropped = [
        "\n".join(line[:48] for line in f.splitlines()[:21]) for f in frames
    ]
    print(side_by_side([c for c in cropped], gap="  |  "))


if __name__ == "__main__":
    main()
