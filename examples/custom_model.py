#!/usr/bin/env python3
"""Define your own surface chemistry and parallelise it automatically.

The downstream-user workflow end to end:

1. describe a new reaction system with the fluent :class:`ModelBuilder`
   (here: A/B2 co-adsorption with an inert site-blocker C — not a model
   from the paper);
2. derive its conservation laws automatically;
3. let the partition machinery *find* a conflict-free partition for it
   (greedy colouring + modular-tiling search) and prove a lower bound;
4. run it through any algorithm via the taxonomy factory and compare
   the exact DMC against the parallel PNDCA.

Run:  python examples/custom_model.py
"""

from repro import Lattice, ModelBuilder, conserved_quantities
from repro.partition import (
    chunk_count_bounds,
    find_modular_tiling,
    greedy_partition,
    modular_tiling,
)
from repro.taxonomy import describe_all, make_simulator


def main() -> None:
    # --- 1. the chemistry ------------------------------------------------
    model = (
        ModelBuilder("ab2-with-blocker", species=("*", "A", "B", "C"))
        .adsorption("A_ads", "A", rate=1.0)
        .dissociative_adsorption("B2_ads", "B", rate=0.6)
        .pair_reaction("A+B", "A", "B", rate=8.0)       # products desorb
        .adsorption("C_ads", "C", rate=0.05)             # slow poisoning
        .desorption("C_des", "C", rate=0.02)
        .hop("A_hop", "A", rate=2.0)
        .build()
    )
    print(model.describe())
    print()

    # --- 2. conservation laws -------------------------------------------
    print("conserved quantities (integer basis):")
    for law in conserved_quantities(model):
        terms = " + ".join(f"{c}*{sp}" for sp, c in law.items() if c)
        print(f"  {terms} = const")
    print()

    # --- 3. automatic partitioning ----------------------------------------
    lattice = Lattice((60, 60))
    lo, hi = chunk_count_bounds(Lattice((10, 10)), model)
    m, coeffs = find_modular_tiling(model)
    print(f"chunk-count bounds for this chemistry: >= {lo} (clique), "
          f"greedy colouring achieves {hi}")
    print(f"modular-tiling search: m={m}, coefficients={coeffs}")
    partition = modular_tiling(lattice, m, coeffs)
    partition.validate_conflict_free(model)
    print(f"using {partition.name}: validated conflict-free")
    print()

    # --- 4. simulate through the taxonomy --------------------------------
    print(describe_all())
    print()
    for key, kwargs in (
        ("rsm", {}),
        ("pndca", {"partition": partition}),
    ):
        sim = make_simulator(key, model, lattice, seed=11, **kwargs)
        res = sim.run(until=15.0)
        cov = res.final_state.coverages()
        rate = res.n_trials / res.wall_time / 1e6
        print(
            f"{res.algorithm:<28s} {rate:5.2f} Mtrials/s  "
            + "  ".join(f"{k}={v:.3f}" for k, v in cov.items())
        )


if __name__ == "__main__":
    main()
