#!/usr/bin/env python3
"""Oscillatory CO oxidation on reconstructing Pt(100): RSM vs L-PNDCA.

The workload of the paper's Figs. 8-10: CO oxidation with hex <-> 1x1
surface reconstruction produces self-sustained coverage oscillations.
We run the exact DMC (RSM) and the approximate, parallelisable
L-PNDCA (five chunks, all visited once per step in random order at
maximal L — the paper's full-parallelisation configuration) and
compare the oscillations.

Run:  python examples/pt100_oscillations.py          (~1-2 minutes)
"""

import numpy as np

from repro import CoverageObserver, Lattice, LPNDCA, RSM, five_chunk_partition
from repro.analysis import analyze_oscillations, curve_rmse
from repro.models import hex_surface, pt100_model


def ascii_plot(times: np.ndarray, values: np.ndarray, width: int = 72, height: int = 14) -> str:
    """Tiny ASCII line plot (values in [0, 1])."""
    idx = np.linspace(0, len(times) - 1, width).astype(int)
    cols = np.clip((values[idx] * (height - 1)).astype(int), 0, height - 1)
    canvas = [[" "] * width for _ in range(height)]
    for x, y in enumerate(cols):
        canvas[height - 1 - y][x] = "*"
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    model = pt100_model()
    lattice = Lattice((40, 40))
    partition = five_chunk_partition(lattice)
    partition.validate_conflict_free(model)
    horizon = 80.0

    def observer():
        return CoverageObserver(0.25, species=("hC", "sC", "sO"))

    print("running RSM (exact DMC)...")
    r_rsm = RSM(
        model, lattice, seed=3, initial=hex_surface(lattice, model),
        observers=[observer()],
    ).run(until=horizon)

    print("running L-PNDCA (five chunks, random order, L = N/m)...")
    r_ca = LPNDCA(
        model, lattice, seed=4, initial=hex_surface(lattice, model),
        partition=partition, L="chunk", chunk_selection="random-order",
        observers=[observer()],
    ).run(until=horizon)

    for label, res in (("RSM", r_rsm), ("L-PNDCA", r_ca)):
        co = res.coverage["hC"] + res.coverage["sC"]
        s = analyze_oscillations(res.times, co)
        print()
        print(f"--- {label}: CO coverage over time ---")
        print(ascii_plot(res.times, co))
        print(
            f"period ~ {s.period:.1f}, amplitude ~ {s.amplitude:.2f}, "
            f"oscillating: {s.oscillating}, "
            f"throughput {res.n_trials / res.wall_time / 1e6:.2f} Mtrials/s"
        )

    co1 = r_rsm.coverage["hC"] + r_rsm.coverage["sC"]
    co2 = r_ca.coverage["hC"] + r_ca.coverage["sC"]
    print()
    print(
        "RMS deviation between the CO curves: "
        f"{curve_rmse(r_rsm.times, co1, r_ca.times, co2):.3f} "
        "(independent stochastic runs dephase; compare the periods/amplitudes)"
    )


if __name__ == "__main__":
    main()
