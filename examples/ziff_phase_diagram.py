#!/usr/bin/env python3
"""The ZGB kinetic phase diagram, scanned with the partitioned CA.

The Ziff-Gulari-Barshad model has two famous kinetic phase
transitions over the CO mole fraction y: O poisoning below y1 ~ 0.39
and CO poisoning above y2 ~ 0.525.  Scanning y point by point is
exactly the kind of workload the paper's fast approximate algorithms
are for: PNDCA's vectorised chunks do the sweep, RSM verifies one
point in the reactive window.

Run:  python examples/ziff_phase_diagram.py          (~2 minutes)
"""

import numpy as np

from repro.experiments.phase_diagram import phase_diagram_report, run_phase_diagram


def main() -> None:
    diagram = run_phase_diagram(
        ys=np.arange(0.30, 0.60 + 1e-9, 0.025),
        side=50,
        until=150.0,
        rsm_check_ys=(0.45,),
    )
    print(phase_diagram_report(diagram))
    print()
    # a crude ASCII rendering of the diagram
    print("  y     O-coverage bar")
    for p in diagram.points:
        bar = "#" * int(round(p.theta_o * 40))
        print(f"  {p.y:.3f} |{bar:<40s}| {p.poisoned}")


if __name__ == "__main__":
    main()
