#!/usr/bin/env python3
"""Partitioned CA in action: conflict-free chunks, kernels, real processes.

Walks through the paper's central construction:

1. build the five-chunk partition of Fig. 4 and *prove* it optimal
   (clique lower bound = 5 = chunks used);
2. run PNDCA with vectorised simultaneous chunk updates and compare its
   throughput against sequential RSM;
3. run the same algorithm on a real multiprocessing shared-memory
   executor and verify the result is bit-identical to the serial run;
4. model the speedup on a 2003-era parallel machine (the Fig. 7 story).

Run:  python examples/parallel_partitions.py
"""

import time

import numpy as np

from repro import Lattice, PNDCA, RSM, five_chunk_partition
from repro.io import format_surface
from repro.models import empty_surface, ziff_model
from repro.parallel import (
    DEFAULT_2003,
    ParallelChunkExecutor,
    ParallelPNDCA,
    speedup_surface,
)
from repro.partition import clique_lower_bound, find_modular_tiling


def main() -> None:
    model = ziff_model()
    lattice = Lattice((100, 100))

    # --- 1. the partition and its optimality ---------------------------
    partition = five_chunk_partition(lattice)
    partition.validate_conflict_free(model)
    bound = clique_lower_bound(model)
    m_found, coeffs = find_modular_tiling(model)
    print(f"five-chunk partition validated; clique lower bound = {bound}; ")
    print(f"smallest modular tiling found by search: m={m_found}, coeffs={coeffs}")
    print("tile (top-left 5x5):")
    print(partition.grid_labels()[:5, :5])
    print()

    # --- 2. vectorised chunks vs sequential RSM ------------------------
    horizon = 10.0
    t0 = time.perf_counter()
    r_rsm = RSM(model, lattice, seed=1, initial=empty_surface(lattice, model)).run(
        until=horizon
    )
    t_rsm = time.perf_counter() - t0
    t0 = time.perf_counter()
    r_ca = PNDCA(
        model, lattice, seed=1, initial=empty_surface(lattice, model),
        partition=partition,
    ).run(until=horizon)
    t_ca = time.perf_counter() - t0
    print(f"RSM   : {r_rsm.n_trials / t_rsm / 1e6:5.2f} Mtrials/s "
          f"(theta_O = {r_rsm.final_state.coverage('O'):.3f})")
    print(f"PNDCA : {r_ca.n_trials / t_ca / 1e6:5.2f} Mtrials/s "
          f"(theta_O = {r_ca.final_state.coverage('O'):.3f})  "
          f"<- the chunk parallelism, expressed as numpy SIMD")
    print()

    # --- 3. real processes, bit-identical result -----------------------
    small = Lattice((20, 20))
    p_small = five_chunk_partition(small)
    p_small.validate_conflict_free(model)
    serial = PNDCA(model, small, seed=7, partition=p_small, strategy="ordered")
    rs = serial.run(until=5.0)
    with ParallelChunkExecutor(model, small, n_workers=2) as ex:
        par = ParallelPNDCA(
            model, small, seed=7, partition=p_small, strategy="ordered", executor=ex
        )
        rp = par.run(until=5.0)
    identical = np.array_equal(rs.final_state.array, rp.final_state.array)
    print(f"multiprocessing executor (2 workers) bit-identical to serial: {identical}")
    print()

    # --- 4. the modelled Fig. 7 speedup --------------------------------
    sides = [200, 600, 1000]
    ps = [2, 4, 6, 8, 10]
    surf = speedup_surface(DEFAULT_2003, sides, ps)
    print("modelled speedup T(1,N)/T(p,N) on a 2003-era cluster:")
    print(format_surface("N", sides, "p", ps, np.round(surf, 2)))


if __name__ == "__main__":
    main()
