"""Parallel execution substrates: machine model, shared-memory executor, DD."""

from .domain import DomainDecomposedRSM
from .executor import ParallelChunkExecutor, ParallelPNDCA
from .machine import DEFAULT_2003, MachineSpec, pndca_step_time, speedup, speedup_surface
from .scaling import efficiency, isoefficiency_sites, strong_scaling, weak_scaling
from .speedup import calibrated_spec, fig7_surface, measure_acceptance, measure_t_trial

__all__ = [
    "MachineSpec",
    "DEFAULT_2003",
    "pndca_step_time",
    "speedup",
    "speedup_surface",
    "ParallelChunkExecutor",
    "ParallelPNDCA",
    "DomainDecomposedRSM",
    "measure_t_trial",
    "measure_acceptance",
    "calibrated_spec",
    "fig7_surface",
    "efficiency",
    "strong_scaling",
    "weak_scaling",
    "isoefficiency_sites",
]
