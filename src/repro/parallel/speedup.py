"""Speedup experiment drivers: calibration and the Fig. 7 surface.

Bridges the real kernels and the machine model:

* :func:`measure_t_trial` times the package's actual vectorised chunk
  kernel on a representative workload, yielding the ``t_trial``
  constant of a :class:`~repro.parallel.machine.MachineSpec` (so the
  modelled speedups rest on a *measured* compute term);
* :func:`measure_acceptance` estimates the trial acceptance ratio of a
  workload (the model's update-traffic term);
* :func:`fig7_surface` produces the speedup table of the paper's
  Fig. 7 from a calibrated spec.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..backends import resolve_backend
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.rng import draw_types, make_rng
from ..partition.tilings import five_chunk_partition
from .machine import DEFAULT_2003, MachineSpec, speedup_surface

__all__ = [
    "measure_t_trial",
    "measure_acceptance",
    "calibrated_spec",
    "fig7_surface",
]


def _warmed_state(model: Model, lattice: Lattice, seed: int, warm_steps: int = 20):
    """A lightly equilibrated state (so acceptance is representative)."""
    from ..ca.pndca import PNDCA

    p = five_chunk_partition(lattice)
    p.validate_conflict_free(model)
    sim = PNDCA(model, lattice, seed=seed, partition=p, strategy="ordered")
    sim.run(until=np.inf, max_steps=warm_steps)
    return sim.state, p


def measure_t_trial(
    model: Model,
    lattice: Lattice,
    seed: int = 0,
    repeats: int = 20,
) -> float:
    """Measured seconds per trial of the vectorised chunk kernel.

    Times ``run_trials_batch`` of the *ambient* kernel backend (see
    :func:`repro.backends.use_backend`) over the chunks of the
    five-chunk partition on a lightly equilibrated state and returns
    the median per-trial time — so the modelled speedups are calibrated
    against the implementation tier a run would actually execute.
    """
    state, partition = _warmed_state(model, lattice, seed)
    kernels = resolve_backend(None).kernel_set()
    comp = model.compile(lattice)
    rng = make_rng(seed + 1)
    per_trial: list[float] = []
    scratch = state.array.copy()
    for _ in range(repeats):
        for chunk in partition.chunks:
            types = draw_types(rng, comp.type_cum, chunk.size)
            t0 = time.perf_counter()
            kernels.run_trials_batch(scratch, comp, chunk, types)
            per_trial.append((time.perf_counter() - t0) / chunk.size)
    return float(np.median(per_trial))


def measure_acceptance(
    model: Model,
    lattice: Lattice,
    seed: int = 0,
    steps: int = 50,
) -> float:
    """Empirical acceptance ratio of PNDCA trials on a warmed state."""
    from ..ca.pndca import PNDCA

    p = five_chunk_partition(lattice)
    p.validate_conflict_free(model)
    sim = PNDCA(model, lattice, seed=seed, partition=p, strategy="ordered")
    sim.run(until=np.inf, max_steps=steps)
    return sim.n_executed / sim.n_trials if sim.n_trials else 0.0


def calibrated_spec(
    model: Model,
    lattice: Lattice,
    seed: int = 0,
    base: MachineSpec = DEFAULT_2003,
) -> MachineSpec:
    """A machine spec with measured ``t_trial``/``acceptance``.

    Latency/bandwidth constants stay at the (documented) 2003-era
    values of ``base`` — they describe the *network*, which does not
    exist here; only the compute terms are measurable.
    """
    return dataclasses.replace(
        base,
        t_trial=measure_t_trial(model, lattice, seed),
        acceptance=measure_acceptance(model, lattice, seed),
    )


def fig7_surface(
    spec: MachineSpec | None = None,
    sides: list[int] | None = None,
    ps: list[int] | None = None,
    m: int = 5,
) -> tuple[list[int], list[int], np.ndarray]:
    """The Fig. 7 speedup table ``T(1,N)/T(p,N)``.

    Returns ``(sides, ps, surface)`` with ``surface[i, j]`` the modelled
    speedup at lattice side ``sides[i]`` and ``ps[j]`` processors.
    Defaults reproduce the paper's axes: sides 200..1000, p = 2..10.
    """
    spec = spec or DEFAULT_2003
    sides = sides or [200, 300, 400, 500, 600, 700, 800, 900, 1000]
    ps = ps or list(range(2, 11))
    return sides, ps, speedup_surface(spec, sides, ps, m)
