"""Scaling analysis on the modelled parallel machine.

Fig. 7 reports the raw speedup surface; this module derives the
standard parallel-computing quantities from the same cost model:

* **parallel efficiency** ``E(N, p) = S(N, p) / p``;
* **strong scaling**: speedup at fixed problem size as p grows
  (saturates — the latency/update overheads per chunk are fixed);
* **weak scaling**: efficiency at fixed work per processor
  (``N = n0 * p`` sites);
* **isoefficiency**: the lattice size needed to hold a target
  efficiency as p grows — how fast the problem must grow to keep the
  machine busy, the classical Grama/Gupta/Kumar metric.

All of it follows analytically from
:func:`repro.parallel.machine.pndca_step_time`; the functions here
evaluate and tabulate it.
"""

from __future__ import annotations


from .machine import MachineSpec, speedup

__all__ = [
    "efficiency",
    "strong_scaling",
    "weak_scaling",
    "isoefficiency_sites",
]


def efficiency(spec: MachineSpec, n_sites: int, p: int, m: int = 5) -> float:
    """Parallel efficiency ``S(N, p) / p`` in (0, 1]."""
    return speedup(spec, n_sites, p, m) / p


def strong_scaling(
    spec: MachineSpec, n_sites: int, ps: list[int], m: int = 5
) -> list[tuple[int, float, float]]:
    """(p, speedup, efficiency) rows at a fixed lattice size."""
    out = []
    for p in ps:
        s = speedup(spec, n_sites, p, m)
        out.append((p, s, s / p))
    return out


def weak_scaling(
    spec: MachineSpec, sites_per_processor: int, ps: list[int], m: int = 5
) -> list[tuple[int, int, float]]:
    """(p, N, efficiency) rows with the work per processor held fixed.

    The modelled PNDCA weak-scales well: the per-chunk compute grows
    with N/p (held constant) while only the ``log2 p`` barrier term and
    the update dissemination grow.
    """
    out = []
    for p in ps:
        n = sites_per_processor * p
        if n < m:
            raise ValueError(
                f"{sites_per_processor} sites/processor x {p} < {m} chunks"
            )
        out.append((p, n, efficiency(spec, n, p, m)))
    return out


def isoefficiency_sites(
    spec: MachineSpec,
    target_efficiency: float,
    ps: list[int],
    m: int = 5,
    max_sites: int = 10**9,
) -> list[tuple[int, int | None]]:
    """Smallest lattice size reaching a target efficiency, per p.

    Returns (p, N) rows; ``N`` is None when even ``max_sites`` cannot
    reach the target (the efficiency ceiling
    ``1 / (1 + p * acceptance * t_update / t_trial)`` lies below it).
    Found by bisection on N — efficiency is monotone in N.
    """
    if not 0.0 < target_efficiency < 1.0:
        raise ValueError("target efficiency must be in (0, 1)")
    out: list[tuple[int, int | None]] = []
    for p in ps:
        lo, hi = m, max_sites
        if efficiency(spec, hi, p, m) < target_efficiency:
            out.append((p, None))
            continue
        if efficiency(spec, lo, p, m) >= target_efficiency:
            out.append((p, lo))
            continue
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if efficiency(spec, mid, p, m) >= target_efficiency:
                hi = mid
            else:
                lo = mid
        out.append((p, hi))
    return out
