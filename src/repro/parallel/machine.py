"""A simulated parallel machine: the cost model behind Fig. 7.

The paper reports wall-clock speedups ``T(1,N)/T(p,N)`` of PNDCA on a
real parallel computer with ``p = 2..10`` processors.  No such machine
exists in this environment (single CPU, GIL), so — per the
reproduction's substitution policy — the *structure* of the parallel
execution is modelled explicitly and the speedup surface is generated
from the model (see DESIGN.md, "Substitutions").

The model contains exactly the cost terms of the partitioned
algorithm; per simulation step, each chunk ``P_i`` costs::

    t_chunk = ceil(|P_i| / p) * t_trial     -- perfectly parallel trials
            + (p > 1) * (t_latency * ceil(log2 p)   -- barrier/sync rounds
            + t_update * a * |P_i|)          -- propagating the executed
                                                updates to all processors
                                                (allgather volume; a is the
                                                trial acceptance ratio)

and a step costs the sum over chunks.  There is **no chunk-boundary
halo exchange** — that is the point of conflict-free partitions; the
only communication is the state-update dissemination after each chunk
plus the synchronisation barrier.

Calibration: ``t_trial`` should be *measured* from this package's real
kernels (:func:`repro.parallel.speedup.measure_t_trial`);
``t_latency``/``t_update`` default to values typical of the 2003-era
Beowulf clusters the paper targets (tens of microseconds message
latency, ~10 MB/s effective per-site update dissemination), chosen so
the surface reproduces the paper's *shape*: speedup growing with both
``N`` and ``p``, saturating around 7-8 at ``p = 10`` for the largest
lattices (1000 x 1000).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MachineSpec", "DEFAULT_2003", "pndca_step_time", "speedup", "speedup_surface"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost constants of the modelled parallel machine.

    All times in seconds.
    """

    #: time of one site trial (selection + match + execute) on one processor
    t_trial: float = 1.2e-6
    #: per-message latency of a synchronisation round
    t_latency: float = 4.0e-4
    #: per-updated-site cost of disseminating state updates to the peers
    t_update: float = 2.6e-7
    #: expected fraction of trials that execute a reaction
    acceptance: float = 0.15

    def __post_init__(self) -> None:
        for name in ("t_trial", "t_latency", "t_update"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.acceptance <= 1.0:
            raise ValueError("acceptance must be in [0, 1]")


#: Constants calibrated to the paper's Fig. 7 regime (see module docstring).
DEFAULT_2003 = MachineSpec()


def pndca_step_time(
    spec: MachineSpec, chunk_sizes: np.ndarray | list[int], p: int
) -> float:
    """Modelled wall-clock time of one PNDCA step on ``p`` processors."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    total = 0.0
    for size in np.asarray(chunk_sizes, dtype=np.int64):
        work = math.ceil(int(size) / p) * spec.t_trial
        if p > 1:
            sync = spec.t_latency * math.ceil(math.log2(p))
            comm = spec.t_update * spec.acceptance * int(size)
        else:
            sync = comm = 0.0
        total += work + sync + comm
    return total


def speedup(spec: MachineSpec, n_sites: int, p: int, m: int = 5) -> float:
    """Modelled speedup ``T(1, N) / T(p, N)`` for equal chunks.

    ``n_sites`` is the total lattice size ``N = L0 * L1``; ``m`` the
    number of chunks of the partition (5 for the Fig. 4 partition).
    The number of steps cancels in the ratio.
    """
    if n_sites < m:
        raise ValueError(f"lattice of {n_sites} sites cannot have {m} chunks")
    sizes = _equal_chunks(n_sites, m)
    return pndca_step_time(spec, sizes, 1) / pndca_step_time(spec, sizes, p)


def speedup_surface(
    spec: MachineSpec,
    sides: list[int],
    ps: list[int],
    m: int = 5,
) -> np.ndarray:
    """Speedup ``T(1,N)/T(p,N)`` over a grid of lattice sides and ``p``.

    Returns an array of shape ``(len(sides), len(ps))`` — the Fig. 7
    surface (the paper's axis ``N`` is the lattice side; the lattice is
    ``N x N``).
    """
    out = np.empty((len(sides), len(ps)))
    for i, side in enumerate(sides):
        for j, p in enumerate(ps):
            out[i, j] = speedup(spec, side * side, p, m)
    return out


def _equal_chunks(n_sites: int, m: int) -> np.ndarray:
    """Chunk sizes as equal as possible (sum = n_sites)."""
    base = n_sites // m
    sizes = np.full(m, base, dtype=np.int64)
    sizes[: n_sites - base * m] += 1
    return sizes
