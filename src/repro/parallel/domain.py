"""Segers-style domain decomposition — the paper's comparison point.

Section 3 recounts the earlier parallelisation route of Segers et al.:
assign *coherent* (contiguous) lattice chunks to processors, run RSM
inside each, and exchange state for reactions that cross chunk
boundaries.  The overhead of that boundary communication is what the
paper's partition approach eliminates; "the trade-off is given by the
volume/boundary ratio of the blocks".

This module emulates the decomposed algorithm sequentially (strip
by strip in time windows) while *counting* every event that would
require communication — a reaction whose pattern touches a site owned
by another strip.  Combined with a :class:`~repro.parallel.machine.MachineSpec`
it yields the modelled parallel time of the domain-decomposition
method, so the volume/boundary trade-off can be quantified against
PNDCA (see ``benchmarks/bench_fig7_speedup.py``).

Accuracy note: within one exchange window each strip simulates with a
frozen halo, so the kinetics deviate from exact RSM as the window
grows — the same accuracy-for-performance trade the paper discusses
for its own methods.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.rng import draw_sites, draw_types
from ..dmc.base import SimulatorBase
from .machine import MachineSpec

__all__ = ["DomainDecomposedRSM"]


class DomainDecomposedRSM(SimulatorBase):
    """RSM over ``p`` contiguous strips with per-window halo exchange.

    Parameters (beyond :class:`~repro.dmc.base.SimulatorBase`)
    ----------
    n_strips:
        Number of processors / contiguous row strips.
    window:
        Trials per strip between exchanges (the exchange window); the
        default of one MC step per strip (``N/p`` trials) matches a
        bulk-synchronous implementation.

    After a run, ``boundary_events`` and ``interior_events`` hold the
    executed-reaction counts that would/would not require
    communication, and :meth:`modelled_parallel_time` converts them
    into a wall-clock estimate on a modelled machine.
    """

    algorithm = "DD-RSM"

    def __init__(self, *args, n_strips: int = 4, window: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        if self.lattice.ndim != 2:
            raise ValueError("domain decomposition is implemented for 2-d lattices")
        l0 = self.lattice.shape[0]
        if not 1 <= n_strips <= l0:
            raise ValueError(f"cannot cut {l0} rows into {n_strips} strips")
        self.n_strips = n_strips
        self.window = window or max(1, self.lattice.n_sites // n_strips)
        rows = np.array_split(np.arange(l0), n_strips)
        l1 = self.lattice.shape[1]
        self.strips = [
            (np.repeat(r, l1) * l1 + np.tile(np.arange(l1), len(r))).astype(np.intp)
            for r in rows
        ]
        self._strip_of_row = np.empty(l0, dtype=np.intp)
        for i, r in enumerate(rows):
            self._strip_of_row[r] = i
        # an anchor is a *boundary anchor* if any reaction pattern
        # anchored there can touch a row owned by another strip
        offs = self.model.union_neighborhood()
        row_reach = max(abs(o[0]) for o in offs)
        # an anchor row is boundary iff a row within the pattern reach
        # (periodically) belongs to a different strip
        self._boundary_anchor = np.zeros(self.lattice.n_sites, dtype=bool)
        for row in range(l0):
            own = self._strip_of_row[row]
            for dr in range(-row_reach, row_reach + 1):
                if self._strip_of_row[(row + dr) % l0] != own:
                    self._boundary_anchor[row * l1 : (row + 1) * l1] = True
                    break
        self.boundary_events = 0
        self.interior_events = 0
        self.exchanges = 0
        self.algorithm = f"DD-RSM[p={n_strips},window={self.window}]"

    # ------------------------------------------------------------------
    def _step_block(self, until: float) -> int:
        """One exchange window on every strip (random strip order)."""
        comp = self.compiled
        total = 0
        for i in self.rng.permutation(self.n_strips):
            strip = self.strips[int(i)]
            n = self.window
            sites = strip[draw_sites(self.rng, strip.size, n)]
            types = draw_types(self.rng, comp.type_cum, n)
            record: list = []
            self.kernels.run_trials_sequential(
                self.state.array, comp, sites, types,
                counts=self.executed_per_type, record=record,
            )
            for _, _, s in record:
                if self._boundary_anchor[s]:
                    self.boundary_events += 1
                else:
                    self.interior_events += 1
            total += n
        self.exchanges += 1
        self.n_trials += total
        self.time += self.time_increment(total)
        self._notify()
        return total

    # ------------------------------------------------------------------
    def volume_boundary_ratio(self) -> float:
        """Interior / boundary anchor-site ratio of the decomposition."""
        b = int(self._boundary_anchor.sum())
        if b == 0:
            return math.inf
        return (self.lattice.n_sites - b) / b

    def modelled_parallel_time(self, spec: MachineSpec) -> float:
        """Wall-clock estimate of the run on a modelled machine.

        Per exchange window: the strips compute concurrently
        (``window * t_trial`` each), then exchange halos — modelled as
        one latency round plus per-boundary-event update traffic.
        """
        compute = self.exchanges * self.window * spec.t_trial
        comm = 0.0
        if self.n_strips > 1:
            comm = self.exchanges * spec.t_latency * math.ceil(
                math.log2(self.n_strips)
            ) + self.boundary_events * spec.t_update
        return compute + comm
