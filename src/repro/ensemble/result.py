"""The outcome of an ensemble run: stacked per-replica trajectories."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.lattice import Lattice
from ..core.species import SpeciesRegistry
from ..core.state import Configuration
from ..dmc.base import SimulationResult
from ..obs.metrics import RunMetrics

__all__ = ["EnsembleRunResult"]


@dataclass
class EnsembleRunResult:
    """Stacked results of R independent replicas of one simulation.

    ``coverage[sp]`` has shape ``(R, G)``: one coverage series per
    replica on the shared grid ``sample_times``.  Use
    :meth:`statistics` for the mean/stderr reduction, or
    :meth:`replica_result` to view a single replica as an ordinary
    :class:`~repro.dmc.base.SimulationResult` (the representation the
    differential tests compare against sequential runs).
    """

    algorithm: str
    model_name: str
    lattice_shape: tuple[int, ...]
    seeds: tuple[int | None, ...]
    final_times: np.ndarray          # (R,)
    n_trials: np.ndarray             # (R,) int64
    executed_per_type: np.ndarray    # (R, T) int64
    wall_time: float
    states: np.ndarray               # (R, N) uint8
    lattice: Lattice
    species: SpeciesRegistry
    sample_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    coverage: dict[str, np.ndarray] = field(default_factory=dict)
    metrics: RunMetrics | None = None

    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        """Number of replicas R."""
        return self.states.shape[0]

    @property
    def total_trials(self) -> int:
        """Trials summed over all replicas (the throughput numerator)."""
        return int(self.n_trials.sum())

    def replica_state(self, r: int) -> Configuration:
        """Replica ``r``'s final state as a :class:`Configuration`."""
        return Configuration(self.lattice, self.species, self.states[r].copy())

    def replica_result(self, r: int) -> SimulationResult:
        """Replica ``r`` viewed as a sequential-run result."""
        return SimulationResult(
            algorithm=self.algorithm,
            model_name=self.model_name,
            lattice_shape=self.lattice_shape,
            seed=self.seeds[r],
            final_time=float(self.final_times[r]),
            n_trials=int(self.n_trials[r]),
            n_executed=int(self.executed_per_type[r].sum()),
            executed_per_type=self.executed_per_type[r].copy(),
            wall_time=self.wall_time / self.n_replicas,
            final_state=self.replica_state(r),
            times=self.sample_times.copy(),
            coverage={sp: c[r].copy() for sp, c in self.coverage.items()},
        )

    def statistics(self):
        """Mean/stderr reduction to an :class:`~repro.analysis.statistics.EnsembleResult`."""
        from ..analysis.statistics import stack_statistics

        return stack_statistics(self.sample_times, self.coverage)

    def mean_final_coverages(self) -> dict[str, float]:
        """Species coverages of the final states, averaged over replicas."""
        n = self.lattice.n_sites
        hist = np.stack(
            [np.bincount(row, minlength=len(self.species.names)) for row in self.states]
        )
        frac = hist.mean(axis=0) / n
        return {nm: float(frac[self.species.code(nm)]) for nm in self.species.names}

    def stderr_final_coverages(self) -> dict[str, float]:
        """Standard error of the mean final coverage per species."""
        n = self.lattice.n_sites
        hist = np.stack(
            [np.bincount(row, minlength=len(self.species.names)) for row in self.states]
        )
        frac = hist / n
        r = self.n_replicas
        std = frac.std(axis=0, ddof=1 if r > 1 else 0)
        sem = std / np.sqrt(r)
        return {nm: float(sem[self.species.code(nm)]) for nm in self.species.names}

    def summary(self) -> str:
        """One-paragraph human-readable summary of the ensemble run."""
        mean_cov = self.mean_final_coverages()
        sem = self.stderr_final_coverages()
        cov_text = ", ".join(
            f"{k}={v:.3f}±{sem[k]:.3f}" for k, v in mean_cov.items()
        )
        return (
            f"{self.algorithm} ensemble on {self.model_name} "
            f"{self.lattice_shape}, R={self.n_replicas}: "
            f"t={self.final_times.mean():g}, {self.total_trials} trials total, "
            f"wall {self.wall_time:.2f}s\n"
            f"mean final coverages: {cov_text}"
        )
