"""Vectorized multi-replica NDCA.

Replica ``r`` mirrors :class:`repro.ca.ndca.NDCA` bit-for-bit: per
step it draws the same site order (a fresh permutation for
``order="random"``; the raster sweep draws nothing), the same N
rate-weighted types, executes the sweep with strict sequential
semantics and advances time by one Gamma(N) increment.

For ``order="random"`` the R sweeps run concurrently through the
interleaved conflict-free-prefix kernel.  The raster order is the one
stream the trick cannot help: consecutive raster sites are lattice
neighbours, whose footprints always overlap for multi-site models, so
every conflict-free prefix has length one.  Raster replicas therefore
fall back to the scalar kernel per replica (same results, loop-over-
replicas speed) — one more datapoint for the paper's argument that
fixed sweep orders resist parallelisation.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_types
from ..lint.contracts import kernel
from .base import EnsembleBase

__all__ = ["EnsembleNDCA"]


class EnsembleNDCA(EnsembleBase):
    """Stacked non-deterministic CA: one trial per site per step, R replicas."""

    algorithm = "NDCA"

    def __init__(self, *args, order: str = "raster", window: int = 16, **kwargs):
        super().__init__(*args, **kwargs)
        if order not in ("raster", "random"):
            raise ValueError(f"unknown site order {order!r}")
        self.order = order
        self.window = int(window)

    @kernel(
        reads=("self", "until", "active"),
        writes=(
            "self.states",
            "self.executed_per_type",
            "self.times",
            "self.n_trials",
            "self._attempted_per_type",
        ),
        caches=("self.compiled",),
        disjoint=("active",),
        shapes={
            "active": ("A",),
            "self.states": ("R", "N"),
            "self.times": ("R",),
            "self.n_trials": ("R",),
            "self.executed_per_type": ("R", "T"),
        },
        dtypes={
            "self.states": "uint8",
            "self.times": "float64",
            "self.n_trials": "int64",
            "self.executed_per_type": "int64",
        },
    )
    def _step_block(self, until: float, active: np.ndarray) -> int:
        comp = self.compiled
        n = comp.n_sites
        r_total = self.n_replicas
        sites_blk = np.zeros((r_total, n), dtype=np.intp)
        types_blk = np.zeros((r_total, n), dtype=np.intp)
        for r in active:
            rng = self.rngs[r]
            if self.order == "raster":
                sites_blk[r] = np.arange(n, dtype=np.intp)
            else:
                sites_blk[r] = rng.permutation(n).astype(np.intp)
            types_blk[r] = draw_types(rng, comp.type_cum, n)
            if self.metrics.enabled:
                self._record_attempts(types_blk[r])
        if self.order == "raster":
            for r in active:
                self.kernels.run_trials_sequential(
                    self.states[r],
                    comp,
                    sites_blk[r],
                    types_blk[r],
                    counts=self.executed_per_type[r],
                )
        else:
            stops = np.zeros(r_total, dtype=np.intp)
            stops[active] = n
            self.kernels.run_trials_interleaved(
                self.states,
                comp,
                sites_blk,
                types_blk,
                np.zeros(r_total, dtype=np.intp),
                stops,
                counts=self.executed_per_type,
                window=self.window,
            )
        for r in active:
            self.n_trials[r] += n
            self.times[r] = self.times[r] + self.time_increment(r, n)
            self._sample_crossed(r)
        return n * active.size
