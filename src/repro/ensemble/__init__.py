"""Stacked multi-replica execution: R independent lattices, one array.

The paper's third parallelisation route — "averaging of a large number
of small, independent simulations" — implemented as SIMD: replicas
live in a stacked ``(R, N)`` state, trial generation draws per-replica
blocks, and state mutation runs through the cross-replica kernels of
:mod:`repro.core.kernels`.  Every supported algorithm is bit-identical
per replica to its sequential counterpart under the documented RNG
stream-splitting contract (see :mod:`repro.ensemble.base`).

Use :func:`run_replicated` as the loop-over-replicas reference that
the benchmarks measure the ensemble engine against.
"""

from __future__ import annotations

from .base import EnsembleBase
from .ndca import EnsembleNDCA
from .pndca import ENSEMBLE_STRATEGIES, EnsemblePNDCA
from .result import EnsembleRunResult
from .rsm import EnsembleRSM

__all__ = [
    "EnsembleBase",
    "EnsembleRSM",
    "EnsembleNDCA",
    "EnsemblePNDCA",
    "EnsembleRunResult",
    "ENSEMBLE_STRATEGIES",
    "run_replicated",
]


def run_replicated(factory, seeds, until: float) -> list:
    """Loop-over-replicas baseline: one sequential run per seed.

    ``factory(seed)`` must build a fresh simulator; returns the list of
    :class:`~repro.dmc.base.SimulationResult`.  This is the reference
    implementation the ensemble engine is benchmarked against and
    differentially tested to match bit-for-bit.
    """
    return [factory(s).run(until=until) for s in seeds]
