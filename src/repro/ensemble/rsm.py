"""Vectorized multi-replica RSM.

Replica ``r`` reproduces :class:`repro.dmc.rsm.RSM` bit-for-bit: per
block it draws the same ``block`` sites, types and waiting times from
its private generator, uses the same ``searchsorted`` trial-count /
end-time arithmetic, and samples coverages at exactly the grid
crossings the sequential observer machinery would.  Only the state
mutation differs mechanically: the R per-replica trial streams run
concurrently through :func:`repro.core.kernels.run_trials_interleaved`,
which cuts each stream into conflict-free prefixes and executes the
union across replicas as simultaneous batches — bit-identical to the
scalar loop because footprint-disjoint reactions commute.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_sites, draw_types
from ..lint.contracts import kernel
from .base import EnsembleBase

__all__ = ["EnsembleRSM"]


class EnsembleRSM(EnsembleBase):
    """Stacked Random Selection Method over R replicas.

    Extra parameters: ``block`` (trials drawn per random block, must
    match the sequential simulator's for bit-identity) and ``window``
    (conflict-scan lookahead of the interleaved kernel; a pure
    performance knob with no effect on results).
    """

    algorithm = "RSM"

    def __init__(self, *args, block: int = 8192, window: int = 16, **kwargs):
        super().__init__(*args, **kwargs)
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.block = int(block)
        self.window = int(window)

    @kernel(
        reads=("self", "until", "active"),
        writes=(
            "self.states",
            "self.executed_per_type",
            "self.times",
            "self.n_trials",
            "self._attempted_per_type",
        ),
        caches=("self.compiled",),
        disjoint=("active",),
        shapes={
            "active": ("A",),
            "self.states": ("R", "N"),
            "self.times": ("R",),
            "self.n_trials": ("R",),
            "self.executed_per_type": ("R", "T"),
        },
        dtypes={
            "self.states": "uint8",
            "self.times": "float64",
            "self.n_trials": "int64",
            "self.executed_per_type": "int64",
        },
    )
    def _step_block(self, until: float, active: np.ndarray) -> int:
        comp = self.compiled
        n = self.block
        r_total = self.n_replicas
        # zero-filled so inactive rows hold valid site indices: the
        # interleaved kernel's lookahead reads (and discards) them
        sites_blk = np.zeros((r_total, n), dtype=np.intp)
        types_blk = np.zeros((r_total, n), dtype=np.intp)
        n_use = np.zeros(r_total, dtype=np.intp)
        end_time = self.times.copy()
        # per replica: positions where the stream pauses for a coverage
        # sample (the sequential observer's grid crossings)
        cuts: list[list[int]] = [[] for _ in range(r_total)]
        for r in active:
            rng = self.rngs[r]
            sites_blk[r] = draw_sites(rng, comp.n_sites, n)
            types_blk[r] = draw_types(rng, comp.type_cum, n)
            if self.time_mode == "stochastic":
                dts = rng.exponential(scale=1.0 / self.nk_rate, size=n)
            else:
                dts = np.full(n, 1.0 / self.nk_rate)
            times_r = self.times[r] + np.cumsum(dts)
            # only trials occurring strictly before `until` happen
            k_use = int(np.searchsorted(times_r, until, side="left"))
            n_use[r] = k_use
            end_time[r] = until if k_use < n else float(times_r[-1])
            if self.metrics.enabled and k_use:
                self._record_attempts(types_blk[r][:k_use])
            if self.sample_interval is not None:
                k = int(self._sample_k[r])
                while k * self.sample_interval <= end_time[r]:
                    due = k * self.sample_interval
                    cuts[r].append(
                        min(k_use, int(np.searchsorted(times_r, due, side="left")))
                    )
                    k += 1

        # execute in rounds split at the sample cuts: round j runs every
        # replica up to its j-th cut (or to its end), then samples
        starts = np.zeros(r_total, dtype=np.intp)
        n_rounds = max(len(c) for c in cuts) + 1 if cuts else 1
        for j in range(n_rounds):
            stops = np.array(
                [
                    cuts[r][j] if j < len(cuts[r]) else n_use[r]
                    for r in range(r_total)
                ],
                dtype=np.intp,
            )
            self.kernels.run_trials_interleaved(
                self.states,
                comp,
                sites_blk,
                types_blk,
                starts,
                stops,
                counts=self.executed_per_type,
                window=self.window,
            )
            for r in active:
                if j < len(cuts[r]):
                    self._sample_replica(r)
            starts = stops

        self.times[active] = end_time[active]
        self.n_trials[active] += n_use[active]
        return int(n_use.sum())
