"""Vectorized multi-replica PNDCA — the natural fit for stacking.

A PNDCA chunk visit is already a conflict-free simultaneous batch;
with R replicas sharing the *same chunk schedule* the batches simply
stack: one :func:`repro.core.kernels.run_trials_stacked` call executes
``R * |chunk|`` trials at once.  This is where the ensemble engine's
speedup is largest — no conflict scanning at all, the partition's
non-overlap rule already guarantees commutation.

The schedule is shared across replicas by construction; randomness in
the schedule (``"random-order"``/``"random"`` strategies, the
``"random"`` partition schedule) therefore comes from a *dedicated*
schedule generator, not from the replicas' streams.  With
``strategy="ordered"`` and ``partition_schedule="cycle"`` the schedule
is deterministic and consumes no randomness, making replica ``r``
bit-identical to a sequential :class:`repro.ca.pndca.PNDCA` with the
same configuration and seed (the differential tests assert this).
The ``"weighted"`` strategy is intentionally unsupported: its chunk
choice depends on per-replica state, so no shared schedule exists.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import make_rng, types_from_uniforms
from ..lint.contracts import kernel
from ..partition.partition import Partition
from .base import EnsembleBase

__all__ = ["EnsemblePNDCA", "ENSEMBLE_STRATEGIES"]

ENSEMBLE_STRATEGIES = ("ordered", "random-order", "random")


class EnsemblePNDCA(EnsembleBase):
    """Stacked partitioned NDCA: R replicas per conflict-free chunk batch.

    Parameters (beyond :class:`~repro.ensemble.base.EnsembleBase`)
    ----------
    partition:
        A :class:`Partition` (or list rotated per step).  Must be — or
        validate as — conflict-free for the model: unlike the
        sequential PNDCA there is no sequential fallback, the stacked
        kernel is only correct on conflict-free chunks.
    strategy:
        Chunk-selection strategy, one of :data:`ENSEMBLE_STRATEGIES`
        (``"weighted"`` has no shared-schedule analogue).
    partition_schedule:
        ``"cycle"`` or ``"random"`` over multiple partitions.
    schedule_seed:
        Seed of the dedicated schedule generator (shared by all
        replicas; irrelevant for the deterministic
        ordered/cycle configuration).
    """

    algorithm = "PNDCA"

    def __init__(
        self,
        *args,
        partition: Partition | list[Partition],
        strategy: str = "ordered",
        partition_schedule: str = "cycle",
        schedule_seed: int | None = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if strategy not in ENSEMBLE_STRATEGIES:
            raise ValueError(
                f"unknown ensemble strategy {strategy!r}; choose from "
                f"{ENSEMBLE_STRATEGIES} ('weighted' depends on per-replica "
                f"state and cannot share a schedule)"
            )
        if partition_schedule not in ("cycle", "random"):
            raise ValueError(f"unknown partition schedule {partition_schedule!r}")
        partitions = (
            [partition] if isinstance(partition, Partition) else list(partition)
        )
        if not partitions:
            raise ValueError("need at least one partition")
        from ..lint.engine import preflight_partition

        for p in partitions:
            if p.lattice != self.lattice:
                raise ValueError("partition belongs to a different lattice")
            preflight_partition(p, self.model)
        self.partitions = partitions
        self.partition = partitions[0]
        self.strategy = strategy
        self.partition_schedule = partition_schedule
        self.schedule_rng = make_rng(schedule_seed)
        self._step_no = 0
        self._stream_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.algorithm = f"PNDCA[{strategy},m={self.partition.m}]"
        if len(partitions) > 1:
            self.algorithm = (
                f"PNDCA[{strategy},m={self.partition.m},"
                f"{len(partitions)} partitions/{partition_schedule}]"
            )

    def _extra_checkpoint_state(self) -> dict:
        """Cycle counter plus the shared schedule generator's state."""
        from ..resilience.checkpoint import rng_state

        return {
            "step_no": self._step_no,
            "schedule_rng": rng_state(self.schedule_rng),
        }

    def _restore_extra(self, extra: dict) -> None:
        """Restore the cycle counter and the schedule generator."""
        from ..resilience.checkpoint import restore_rng_state

        self._step_no = int(extra.get("step_no", 0))
        if "schedule_rng" in extra:
            restore_rng_state(self.schedule_rng, extra["schedule_rng"])

    @kernel(reads=("self",), writes=("self.partition",))
    def _choose_partition(self) -> Partition:
        """Shared 'choose a partition P' step (one choice for all replicas)."""
        if len(self.partitions) == 1:
            return self.partitions[0]
        if self.partition_schedule == "cycle":
            p = self.partitions[self._step_no % len(self.partitions)]
        else:
            p = self.partitions[
                int(self.schedule_rng.integers(0, len(self.partitions)))
            ]
        self.partition = p
        return p

    # ------------------------------------------------------------------
    @kernel(
        reads=("self", "chunk", "active"),
        caches=("self._stream_cache",),
        disjoint=("chunk", "active"),
        shapes={"chunk": ("C",), "active": ("A",)},
    )
    def _chunk_streams(
        self, chunk: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Constant (reps, sites) streams of one chunk visit, cached.

        For the common all-replicas-active case the replica/site columns
        of a chunk batch never change between visits; rebuilding them
        (repeat + tile) per visit is measurable overhead at small chunk
        sizes.
        """
        if active.size != self.n_replicas:
            return np.repeat(active.astype(np.intp), chunk.size), np.tile(
                chunk, active.size
            )
        key = id(chunk)  # chunks are read-only arrays owned by the partition
        cached = self._stream_cache.get(key)
        if cached is None:
            cached = (
                np.repeat(np.arange(self.n_replicas, dtype=np.intp), chunk.size),
                np.tile(chunk, self.n_replicas),
            )
            self._stream_cache[key] = cached
        return cached

    @kernel(
        reads=("self", "chunk", "active", "index"),
        writes=(
            "self.states",
            "self.executed_per_type",
            "self.n_trials",
            "self.times",
            "self._attempted_per_type",
        ),
        caches=("self.compiled", "self._stream_cache"),
        disjoint=("chunk", "active"),
        shapes={
            "chunk": ("C",),
            "active": ("A",),
            "self.states": ("R", "N"),
            "self.times": ("R",),
            "self.n_trials": ("R",),
            "self.executed_per_type": ("R", "T"),
        },
        dtypes={
            "self.states": "uint8",
            "self.times": "float64",
            "self.n_trials": "int64",
            "self.executed_per_type": "int64",
        },
    )
    def _visit_chunk(
        self, chunk: np.ndarray, active: np.ndarray, index: int = -1
    ) -> None:
        """One trial per chunk site per active replica, in one batch."""
        comp = self.compiled
        m = self.metrics
        c = chunk.size
        a = active.size
        # one uniform block per replica (the sequential draw order),
        # one shared searchsorted for the rate-weighted type selection
        u = np.empty(a * c)
        for i, r in enumerate(active):
            u[i * c : (i + 1) * c] = self.rngs[r].random(c)
        btypes = types_from_uniforms(comp.type_cum, u)
        if m.enabled:
            executed0 = int(self.executed_per_type.sum())
            self._record_attempts(btypes)
        reps, bsites = self._chunk_streams(chunk, active)
        self.kernels.run_trials_stacked(
            self.states, comp, reps, bsites, btypes,
            counts=self.executed_per_type,
        )
        for r in active:
            self.n_trials[r] += c
            self.times[r] += self.time_increment(r, c)
            self._sample_crossed(r)
        if m.enabled:
            executed = int(self.executed_per_type.sum()) - executed0
            m.inc("pndca.chunk.visits")
            m.observe("pndca.chunk.size", c)
            m.observe("pndca.chunk.occupancy", c / self.lattice.n_sites)
            if a * c:
                m.observe("pndca.chunk.utilisation", executed / (a * c))
        self.tracer.on_chunk(index, c, float(self.times.min()))

    @kernel(
        reads=("self", "until", "active"),
        writes=(
            "self.states",
            "self.executed_per_type",
            "self.n_trials",
            "self.times",
            "self.partition",
            "self._step_no",
            "self._attempted_per_type",
        ),
        caches=("self.compiled", "self._stream_cache"),
        disjoint=("active",),
        shapes={"active": ("A",)},
    )
    def _step_block(self, until: float, active: np.ndarray) -> int:
        p = self._choose_partition()
        self._step_no += 1
        m = p.m
        if self.strategy == "ordered":
            schedule = range(m)
        elif self.strategy == "random-order":
            schedule = self.schedule_rng.permutation(m)
        else:  # random
            schedule = self.schedule_rng.integers(0, m, size=m)
        for i in schedule:
            self._visit_chunk(p.chunks[int(i)], active, int(i))
        return self.lattice.n_sites * active.size
