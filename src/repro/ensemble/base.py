"""The ensemble engine base: R independent replicas, one state array.

"The necessary statistics may be obtained from the averaging of a
large number of small, independent simulations" (paper, section 1).
The classes in this package execute that averaging *vectorised*: R
independent replicas of one model/lattice pair live side by side in a
stacked ``(R, N)`` ``uint8`` array, random draws are made in blocks
per replica, and state mutation runs through the cross-replica kernels
of :mod:`repro.core.kernels` (:func:`~repro.core.kernels.run_trials_stacked`
for conflict-free chunk batches, :func:`~repro.core.kernels.run_trials_interleaved`
for strictly sequential streams).

The contract that makes the ensemble *testable* is bit-identity: for
every supported algorithm, replica ``r`` of an ensemble run produces
exactly the trajectory of the corresponding sequential simulator
seeded with the same generator — state, times, trial counts and
sampled coverages all match to the last bit (asserted in
``tests/test_ensemble.py``).

RNG stream-splitting contract
-----------------------------
Each replica owns a private ``numpy.random.Generator`` and consumes
draws in exactly the order of the sequential algorithm it mirrors.
Streams come from one of two places:

* ``seeds=[s0, s1, ...]`` — one generator ``default_rng(s_r)`` per
  entry (entries may also be ``Generator`` instances), so replica
  ``r`` is bit-identical to the sequential simulator built with
  ``seed=s_r``;
* ``n_replicas=R, seed=s`` — generators spawned from
  ``SeedSequence(s)`` via :func:`repro.core.rng.spawn_rngs`, the
  standard recipe for statistically independent parallel streams.

Time accounting, trial counts and observer sampling are all
per-replica; coverages are recorded on one shared uniform grid
(``sample_interval``), which is what makes the stacked series directly
reducible to mean/stderr bands (:func:`repro.analysis.statistics.stack_statistics`).
"""

from __future__ import annotations

import time as _wall
from abc import ABC, abstractmethod

import numpy as np

from ..core.compiled import CompiledModel
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.rng import make_rng, spawn_rngs
from ..core.state import Configuration
from ..obs.metrics import (
    CountingGenerator,
    MetricsCollector,
    RunMetrics,
    current_metrics,
)
from ..obs.trace import NULL_TRACER, Tracer
from .result import EnsembleRunResult

__all__ = ["EnsembleBase"]


class EnsembleBase(ABC):
    """Base class for stacked multi-replica simulators.

    Parameters
    ----------
    model, lattice:
        The model and the lattice; all replicas share them.
    seeds:
        Per-replica seeds (ints, ``None`` or Generators).  Mutually
        exclusive with ``n_replicas``/``seed``.
    n_replicas, seed:
        Spawn this many independent streams from one ``SeedSequence``.
    initial:
        Starting configuration, shared by all replicas; defaults to the
        same convention as :class:`~repro.dmc.base.SimulatorBase`
        (all-vacant, or the first species for models without ``"*"``).
    time_mode:
        ``"stochastic"`` (exponential waiting times) or
        ``"deterministic"`` (fixed ``1/(N K)`` per trial), as in the
        sequential simulators.
    sample_interval:
        When given, per-replica coverages are sampled on the uniform
        grid ``k * sample_interval`` exactly as a
        :class:`~repro.dmc.base.CoverageObserver` would.
    species:
        Species names to sample (default: all).
    metrics:
        A :class:`~repro.obs.metrics.MetricsCollector`; defaults to
        the ambient collector (normally the zero-overhead null
        object).  When enabled, every replica stream is wrapped in the
        transparent draw-counting proxy — streams are unchanged, so
        replicas stay bit-identical to their sequential twins.
    tracer:
        A :class:`~repro.obs.trace.Tracer` receiving ``on_step`` /
        ``on_chunk`` hooks; defaults to the no-op null tracer.
    backend:
        Kernel backend for the execution hot paths (name, Backend, or
        ``None`` for the ambient default) — an execution detail only:
        trajectories, RNG streams and checkpoints are bit-identical
        across backends.
    """

    #: short algorithm label, set by subclasses
    algorithm: str = "?"

    def __init__(
        self,
        model: Model,
        lattice: Lattice,
        seeds: list | tuple | None = None,
        n_replicas: int | None = None,
        seed: int | None = None,
        initial: Configuration | None = None,
        time_mode: str = "stochastic",
        sample_interval: float | None = None,
        species: tuple[str, ...] | None = None,
        metrics: MetricsCollector | None = None,
        tracer: Tracer | None = None,
        backend=None,
    ):
        if time_mode not in ("stochastic", "deterministic"):
            raise ValueError(f"unknown time mode {time_mode!r}")
        from ..backends import resolve_backend

        self.model = model
        self.lattice = lattice
        self.backend = resolve_backend(backend)
        #: the backend's resolved kernel table (execution hot paths)
        self.kernels = self.backend.kernel_set()
        self.compiled: CompiledModel = model.compile(lattice)
        if seeds is not None:
            if n_replicas is not None and n_replicas != len(seeds):
                raise ValueError(
                    f"n_replicas={n_replicas} disagrees with {len(seeds)} seeds"
                )
            self.rngs = [make_rng(s) for s in seeds]
            self.seeds = tuple(s if isinstance(s, int) else None for s in seeds)
        else:
            if n_replicas is None:
                raise ValueError("need either seeds or n_replicas")
            self.rngs = spawn_rngs(seed, n_replicas)
            self.seeds = (None,) * n_replicas
        if not self.rngs:
            raise ValueError("need at least one replica")
        self.metrics = metrics if metrics is not None else current_metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.metrics.enabled:
            # transparent wrappers: same streams, counted draws
            self.rngs = [
                CountingGenerator(rng, self.metrics) for rng in self.rngs  # type: ignore[misc]
            ]
        r = len(self.rngs)
        self.n_replicas = r

        if initial is None:
            from ..core.species import EMPTY

            if EMPTY in model.species:
                base = Configuration.empty(lattice, model.species)
            else:
                base = Configuration.filled(
                    lattice, model.species, model.species.names[0]
                )
        else:
            if initial.lattice != lattice:
                raise ValueError("initial configuration is on a different lattice")
            base = initial
        #: stacked replica states, shape (R, N)
        self.states = np.ascontiguousarray(np.tile(base.array, (r, 1)))

        self.time_mode = time_mode
        self.nk_rate = lattice.n_sites * self.compiled.total_rate
        #: per-replica simulation times / trial counts
        self.times = np.zeros(r, dtype=np.float64)
        self.n_trials = np.zeros(r, dtype=np.int64)
        self.executed_per_type = np.zeros((r, model.n_types), dtype=np.int64)
        #: per-type attempted totals summed over replicas (metrics only)
        self._attempted_per_type = np.zeros(model.n_types, dtype=np.int64)

        # coverage sampling on a shared uniform grid (one CoverageObserver
        # state machine per replica, vectorised storage)
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sampling interval must be positive, got {sample_interval}"
            )
        self.sample_interval = (
            float(sample_interval) if sample_interval is not None else None
        )
        names = model.species.names
        self._sample_names = tuple(species) if species is not None else names
        self._sample_codes = np.array(
            [model.species.code(nm) for nm in self._sample_names], dtype=np.intp
        )
        self._n_species = len(names)
        self._sample_k = np.zeros(r, dtype=np.intp)
        self._sample_rows: list[list[np.ndarray]] = [[] for _ in range(r)]

    # ------------------------------------------------------------------
    @property
    def n_executed(self) -> np.ndarray:
        """Executed reactions per replica."""
        return self.executed_per_type.sum(axis=1)

    def _record_attempts(self, types: np.ndarray) -> None:
        """Accumulate per-type attempted-trial counts (metrics path only)."""
        self._attempted_per_type += np.bincount(
            types, minlength=self.model.n_types
        )

    def time_increment(self, r: int, n_trials: int) -> float:
        """Elapsed time for ``n_trials`` of replica ``r`` (cf. SimulatorBase)."""
        if n_trials <= 0:
            return 0.0
        if self.time_mode == "stochastic":
            return float(
                self.rngs[r].gamma(shape=n_trials, scale=1.0 / self.nk_rate)
            )
        return n_trials / self.nk_rate

    # ------------------------------------------------------------------
    # per-replica coverage sampling (CoverageObserver semantics)
    # ------------------------------------------------------------------
    def _next_due(self, r: int) -> float:
        """Next grid time of replica ``r`` (inf when not sampling)."""
        if self.sample_interval is None:
            return np.inf
        return self._sample_k[r] * self.sample_interval

    def _sample_replica(self, r: int) -> None:
        """Record one coverage row for replica ``r`` at its next grid time."""
        counts = np.bincount(self.states[r], minlength=self._n_species)
        self._sample_rows[r].append(
            counts[self._sample_codes] / self.lattice.n_sites
        )
        self._sample_k[r] += 1

    def _sample_crossed(self, r: int) -> None:
        """Sample every grid point of replica ``r`` up to its current time."""
        if self.sample_interval is None:
            return
        while self._next_due(r) <= self.times[r]:
            self._sample_replica(r)

    # ------------------------------------------------------------------
    # checkpoint / resume (see repro.resilience.checkpoint, DESIGN.md §10)
    # ------------------------------------------------------------------
    def _extra_checkpoint_state(self) -> dict:
        """Algorithm-specific mutable state (JSON-safe); default none."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Restore the dict produced by :meth:`_extra_checkpoint_state`."""

    def checkpoint_payload(self) -> dict:
        """Everything ``run()`` mutates, as a JSON-safe ``repro.ckpt/1`` payload."""
        from ..resilience.checkpoint import (
            encode_array,
            engine_fingerprint,
            rng_state,
        )

        return {
            "kind": "ensemble",
            "algorithm": self.algorithm,
            "model": self.model.name,
            "lattice": list(self.lattice.shape),
            "time_mode": self.time_mode,
            "fingerprint": engine_fingerprint(self),
            "n_replicas": self.n_replicas,
            "times": [float(t) for t in self.times],
            "n_trials": [int(x) for x in self.n_trials],
            "executed_per_type": encode_array(self.executed_per_type),
            "attempted_per_type": [int(x) for x in self._attempted_per_type],
            "states": encode_array(self.states),
            "rngs": [rng_state(rng) for rng in self.rngs],
            "sample_k": [int(k) for k in self._sample_k],
            "sample_rows": [
                [row.tolist() for row in rows] for rows in self._sample_rows
            ],
            "extra": self._extra_checkpoint_state(),
        }

    def restore_payload(self, payload: dict) -> None:
        """Restore a checkpoint payload into this (matching) engine."""
        from ..resilience.checkpoint import (
            CheckpointMismatchError,
            decode_array,
            engine_fingerprint,
            restore_rng_state,
        )

        if payload.get("kind") != "ensemble":
            raise CheckpointMismatchError(
                f"checkpoint kind {payload.get('kind')!r} cannot restore "
                f"into an ensemble engine"
            )
        fp = engine_fingerprint(self)
        if payload.get("fingerprint") != fp:
            raise CheckpointMismatchError(
                f"checkpoint fingerprint {payload.get('fingerprint')!r} does "
                f"not match this engine ({fp}: {self.algorithm} / "
                f"{self.model.name} / {self.lattice.shape}, "
                f"R={self.n_replicas}) — it was taken from a different "
                f"model, lattice, algorithm or replica-count configuration"
            )
        self.states[:] = decode_array(payload["states"])
        self.times[:] = payload["times"]
        self.n_trials[:] = payload["n_trials"]
        self.executed_per_type[:] = decode_array(payload["executed_per_type"])
        self._attempted_per_type[:] = payload["attempted_per_type"]
        for rng, record in zip(self.rngs, payload["rngs"]):
            restore_rng_state(rng, record)
        self._sample_k[:] = payload["sample_k"]
        self._sample_rows = [
            [np.asarray(row, dtype=np.float64) for row in rows]
            for rows in payload["sample_rows"]
        ]
        self._restore_extra(payload.get("extra", {}))

    def resume(self, path) -> "EnsembleBase":
        """Restore from a checkpoint file; returns ``self``.

        Construct the engine exactly as for the original run, then
        resume and continue with ``run(until=...)``: the continuation
        is bit-identical to the uninterrupted run.
        """
        from ..resilience.checkpoint import load_checkpoint

        self.restore_payload(load_checkpoint(path))
        return self

    # ------------------------------------------------------------------
    @abstractmethod
    def _step_block(self, until: float, active: np.ndarray) -> int:
        """Advance the ``active`` replicas by one unit of work.

        Must update ``self.times``, ``self.n_trials``,
        ``self.executed_per_type``, the states and the samples for the
        given replica indices; returns total trials attempted (0
        signals that no progress is possible).
        """

    def run(self, until: float, checkpoint=None) -> EnsembleRunResult:
        """Simulate every replica until the given simulation time.

        ``checkpoint`` is an optional
        :class:`~repro.resilience.checkpoint.Checkpointer`; when omitted
        the ambient one installed by
        :func:`~repro.resilience.checkpoint.use_checkpoints` (if any)
        is used.
        """
        if until <= float(self.times.min()):
            raise ValueError(
                f"until={until} is not beyond current time {self.times.min()}"
            )
        from ..resilience.checkpoint import current_checkpointer

        ckpt = checkpoint if checkpoint is not None else current_checkpointer()
        m = self.metrics
        tracer = self.tracer
        wall0 = _wall.perf_counter()
        steps = 0
        executed0 = 0
        if ckpt is not None:
            ckpt.start(self)
        try:
            with m.phase("run"):
                for r in range(self.n_replicas):
                    self._sample_crossed(r)
                while True:
                    active = np.flatnonzero(self.times < until)
                    if active.size == 0:
                        break
                    if m.enabled:
                        executed0 = int(self.executed_per_type.sum())
                    n = self._step_block(until, active)
                    steps += 1
                    if m.enabled:
                        m.inc("steps")
                        m.inc("trials.attempted", n)
                        m.inc(
                            "trials.executed",
                            int(self.executed_per_type.sum()) - executed0,
                        )
                        m.observe("ensemble.active_replicas", active.size)
                    tracer.on_step(steps, float(self.times.min()))
                    if ckpt is not None:
                        ckpt.after_step(self)
                    if n == 0:
                        break  # absorbing state or no work possible
        finally:
            if ckpt is not None:
                ckpt.finish(self)
        wall = _wall.perf_counter() - wall0
        return self._result(wall)

    def _finalize_metrics(self) -> RunMetrics | None:
        """Write derived totals/rates as gauges; return the snapshot."""
        m = self.metrics
        if not m.enabled:
            return None
        trials = int(self.n_trials.sum())
        executed = int(self.executed_per_type.sum())
        m.set_gauge("acceptance", executed / trials if trials else 0.0)
        m.set_gauge("ensemble.n_replicas", self.n_replicas)
        per_type_exec = self.executed_per_type.sum(axis=0)
        for i, rt in enumerate(self.model.reaction_types):
            attempted = int(self._attempted_per_type[i])
            exec_i = int(per_type_exec[i])
            m.set_gauge(f"executed.{rt.name}", exec_i)
            if attempted:
                m.set_gauge(f"attempted.{rt.name}", attempted)
                m.set_gauge(f"acceptance.{rt.name}", exec_i / attempted)
        return m.snapshot()

    def _result(self, wall: float) -> EnsembleRunResult:
        if self.sample_interval is not None:
            n_keep = min(len(rows) for rows in self._sample_rows)
            sample_times = np.arange(n_keep) * self.sample_interval
            if n_keep:
                block = np.array(
                    [rows[:n_keep] for rows in self._sample_rows]
                )  # (R, G, S)
            else:
                block = np.empty(
                    (self.n_replicas, 0, len(self._sample_names))
                )
            coverage = {
                nm: block[:, :, i] for i, nm in enumerate(self._sample_names)
            }
        else:
            sample_times = np.empty(0)
            coverage = {}
        return EnsembleRunResult(
            algorithm=self.algorithm,
            model_name=self.model.name,
            lattice_shape=self.lattice.shape,
            seeds=self.seeds,
            final_times=self.times.copy(),
            n_trials=self.n_trials.copy(),
            executed_per_type=self.executed_per_type.copy(),
            wall_time=wall,
            states=self.states.copy(),
            lattice=self.lattice,
            species=self.model.species,
            sample_times=sample_times,
            coverage=coverage,
            metrics=self._finalize_metrics(),
        )
