"""Surface diffusion models — the conflict example of Fig. 2.

A particle at site ``n`` can hop to a neighbouring vacant site.  Under
a naive synchronous update two particles flanking the same vacancy may
both jump into it (paper, Fig. 2) — executing both violates particle
conservation.  The diffusion model is therefore the canonical
demonstration of why partitioned CA needs the non-overlap rule, and a
sharp correctness probe: the particle number must be conserved by
*every* simulator.
"""

from __future__ import annotations

import numpy as np

from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import ORIENTATIONS_4, ReactionType, oriented
from ..core.state import Configuration

__all__ = ["diffusion_model_1d", "diffusion_model_2d", "random_gas"]


def diffusion_model_1d(k_hop: float = 1.0) -> Model:
    """1-d hop model: ``(A, *) -> (*, A)`` in both directions."""
    rts = [
        ReactionType(
            "hop_right", [((0,), "A", "*"), ((1,), "*", "A")], k_hop, group="hop"
        ),
        ReactionType(
            "hop_left", [((0,), "A", "*"), ((-1,), "*", "A")], k_hop, group="hop"
        ),
    ]
    return Model(["*", "A"], rts, name="diffusion-1d")


def diffusion_model_2d(k_hop: float = 1.0) -> Model:
    """2-d hop model: a particle jumps to any vacant von-Neumann neighbour."""
    rts = oriented(
        "hop",
        [((0, 0), "A", "*"), ((1, 0), "*", "A")],
        rate=k_hop,
        directions=ORIENTATIONS_4,
        group="hop",
    )
    return Model(["*", "A"], rts, name="diffusion-2d")


def random_gas(
    lattice: Lattice, model: Model, density: float, rng: np.random.Generator
) -> Configuration:
    """Random configuration with the given particle density."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    return Configuration.random(lattice, model.species, {"A": density}, rng)
