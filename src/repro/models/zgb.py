"""The CO-oxidation / Ziff-Gulari-Barshad (ZGB) model — the paper's example.

The system (paper, section 2 and Fig. 1; Ziff, Gulari and Barshad,
PRL 56, 2553 (1986)):

* CO adsorbs on a vacant site with rate constant ``k_CO``;
* O2 adsorbs dissociatively on a pair of adjacent vacant sites with
  rate constant ``k_O2`` (two orientations);
* adjacent adsorbed CO and O react, form CO2 and desorb immediately,
  with rate constant ``k_CO2`` (four orientations).

Seven reaction types in total — Table I of the paper, generated here
verbatim (including the paper's orientation numbering; the printed
``Rt^(3)_{CO+O}`` row of Table I has a ``CO``/``O`` typo which this
implementation corrects, see :mod:`repro.core.reaction`).

:func:`ziff_model` exposes the three rate constants directly.
:func:`zgb_model` parameterises by the classic ZGB mole fraction
``y = k_CO / (k_CO + k_O2)`` with a (large but finite) reaction rate —
sweeping ``y`` reproduces the famous kinetic phase transitions:
O-poisoning below ``y1 ~ 0.39`` and CO-poisoning above ``y2 ~ 0.53``.
"""

from __future__ import annotations

from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import ORIENTATIONS_2, ORIENTATIONS_4, ReactionType, oriented
from ..core.state import Configuration

__all__ = ["ziff_model", "zgb_model", "empty_surface", "SPECIES"]

#: The domain D of the CO-oxidation model.
SPECIES = ("*", "CO", "O")


def ziff_model(k_co: float = 1.0, k_o2: float = 1.0, k_co2: float = 1.0) -> Model:
    """The paper's Table I model with explicit rate constants.

    Reaction types, in Table I order within each group:

    ====================  =======================================  =====
    name                  transformation                            rate
    ====================  =======================================  =====
    ``CO+O(0..3)``        {(s,CO,*), (s±e,O,*)}  (4 orientations)  k_co2
    ``O2_ads(0..1)``      {(s,*,O), (s+e,*,O)}   (2 orientations)  k_o2
    ``CO_ads``            {(s,*,CO)}                               k_co
    ====================  =======================================  =====
    """
    rts: list[ReactionType] = []
    rts += oriented(
        "CO+O",
        [((0, 0), "CO", "*"), ((1, 0), "O", "*")],
        rate=k_co2,
        directions=ORIENTATIONS_4,
    )
    rts += oriented(
        "O2_ads",
        [((0, 0), "*", "O"), ((1, 0), "*", "O")],
        rate=k_o2,
        directions=ORIENTATIONS_2,
    )
    rts.append(ReactionType("CO_ads", [((0, 0), "*", "CO")], rate=k_co))
    return Model(SPECIES, rts, name="ziff")


def zgb_model(y: float, k_reaction: float = 100.0) -> Model:
    """ZGB parameterisation by CO mole fraction ``y`` in (0, 1).

    Adsorption attempts arrive with total rate 1 per site, split
    ``y : (1 - y)`` between CO and O2 (the classic adsorption-limited
    setting).  The original model reacts adjacent CO/O *instantly*;
    a finite but large ``k_reaction`` approximates this while staying
    within the rate-constant framework of the paper.
    """
    if not 0.0 < y < 1.0:
        raise ValueError(f"y must be in (0, 1), got {y}")
    if k_reaction <= 0:
        raise ValueError(f"k_reaction must be positive, got {k_reaction}")
    m = ziff_model(k_co=y, k_o2=(1.0 - y) / 2.0, k_co2=k_reaction / 4.0)
    # note: k_o2 is halved because two orientations share the O2 flux,
    # and k_co2 is quartered across the four CO+O orientations, so the
    # *per-event* total rates are y, (1-y) and k_reaction.
    return Model(m.species, m.reaction_types, name=f"zgb(y={y:g})")


def empty_surface(lattice: Lattice, model: Model | None = None) -> Configuration:
    """The standard initial condition: an entirely vacant lattice."""
    m = model or ziff_model()
    return Configuration.empty(lattice, m.species)
