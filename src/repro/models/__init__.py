"""Surface-reaction models: ZGB/Ziff, Pt(100) reconstruction, and probes."""

from .diffusion import diffusion_model_1d, diffusion_model_2d, random_gas
from .ising import ising_model_2d, magnetization, random_spins
from .majority import FIG3_INITIAL, zero_spreads_block_rule, zero_spreads_global
from .pt100 import OSCILLATING, hex_surface, mean_field_rhs, pt100_model
from .single_file import equally_spaced, single_file_model, tracer_displacements
from .zgb import empty_surface, zgb_model, ziff_model

__all__ = [
    "ziff_model",
    "zgb_model",
    "empty_surface",
    "pt100_model",
    "hex_surface",
    "mean_field_rhs",
    "OSCILLATING",
    "diffusion_model_1d",
    "diffusion_model_2d",
    "random_gas",
    "ising_model_2d",
    "magnetization",
    "random_spins",
    "single_file_model",
    "equally_spaced",
    "tracer_displacements",
    "zero_spreads_block_rule",
    "zero_spreads_global",
    "FIG3_INITIAL",
]
