"""CO oxidation on reconstructing Pt(100) — the oscillatory workload.

The paper compares RSM and L-PNDCA on the model of Kuzovkov, Kortlüke
and von Niessen (J. Chem. Phys. 108, 5571 (1998)): CO oxidation on a
Pt(100) face whose top layer switches between a *hexagonal* (hex)
reconstruction and a *square* (1x1) structure.  CO adsorbs on both
phases; O2 dissociates **only on the square phase**; adsorbed CO lifts
the reconstruction (hex -> square); emptied square-phase sites
reconstruct back (square -> hex).  The resulting feedback loop

    hex surface -> CO adsorbs -> surface squares -> O2 adsorbs ->
    CO2 produced, surface empties -> surface re-hexes -> CO builds up

produces the oscillatory coverages used for Figs. 8-10.

The original papers do not publish a complete rate table usable here
(and this paper gives none), so the model is re-parameterised: every
site carries a combined (phase, adsorbate) species from

    D = { h, hC, s, sC, sO }

(``h``/``s`` empty hex/square site, ``hC``/``sC`` CO on hex/square,
``sO`` O on square — O on hex does not exist since O2 only adsorbs on
the square phase), and the processes become ordinary two-site reaction
types, so the whole partitioned-CA machinery applies unchanged.  The
default rate constants (``OSCILLATING``) were located with the
mean-field system (:func:`mean_field_rhs`) and verified to give
sustained coverage oscillations on the lattice; CO diffusion provides
the spatial synchronisation (as in the Kortlüke model, where large
diffusion rates synchronise the oscillations globally).

All patterns involve at most nearest-neighbour pairs, so the Fig. 4
five-chunk partition is conflict-free for this model — exactly the
setting of the paper's experiments.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import ORIENTATIONS_2, ORIENTATIONS_4, ReactionType, oriented
from ..core.state import Configuration

__all__ = [
    "SPECIES",
    "OSCILLATING",
    "pt100_model",
    "hex_surface",
    "mean_field_rhs",
]

#: The domain D: (phase, adsorbate) combinations.
SPECIES = ("h", "hC", "s", "sC", "sO")

#: Rate constants giving sustained oscillations.  Located by scanning the
#: mean-field system for a stable limit cycle and then verified directly
#: on the lattice (RSM, 40x40 and 50x50, several seeds): coverage
#: oscillations with period ~13 time units and CO amplitude ~0.6.
OSCILLATING: dict[str, float] = {
    "k_co_ads": 1.758,    # CO adsorption (both phases)
    "k_co_des": 0.064,    # CO desorption (both phases)
    "k_o2_ads": 3.674,    # dissociative O2 adsorption (square pairs)
    "k_react": 9.779,     # CO + O -> CO2 (all adjacent CO/O pairs)
    "k_lift": 0.095,      # hex+CO -> square+CO (nucleation)
    "k_lift_front": 0.219,  # ... next to an already-square site (front growth)
    "k_rec": 0.03,        # empty square -> hex (nucleation)
    "k_rec_front": 0.843,   # ... next to an already-hex site (front shrink)
    "k_diff": 6.0,        # CO hop to an empty neighbour (synchronisation)
}


def pt100_model(rates: Mapping[str, float] | None = None) -> Model:
    """Build the reconstruction model; ``rates`` overrides ``OSCILLATING``.

    Reaction-type groups (each expanded into its lattice orientations):

    ================  ==========================================  ==============
    group             transformation                               rate key
    ================  ==========================================  ==============
    ``COads_h/s``     h -> hC,  s -> sC                            k_co_ads
    ``COdes_h/s``     hC -> h,  sC -> s                            k_co_des
    ``O2ads``         (s, s) -> (sO, sO)                           k_o2_ads
    ``react_ss/hs``   (sC|hC, sO) -> (s|h, s)                      k_react
    ``lift``          hC -> sC                                     k_lift
    ``lift_front``    (hC, sq) -> (sC, sq), sq in {s, sC, sO}      k_lift_front
    ``rec``           s -> h                                       k_rec
    ``rec_front``     (s, hx) -> (h, hx),  hx in {h, hC}           k_rec_front
    ``diff_**``       CO hop between neighbouring empty sites      k_diff
    ================  ==========================================  ==============
    """
    k = dict(OSCILLATING)
    if rates:
        unknown = set(rates) - set(k)
        if unknown:
            raise KeyError(f"unknown rate keys: {sorted(unknown)}")
        k.update(rates)
    rts: list[ReactionType] = []

    # --- adsorption / desorption (single-site) -------------------------
    rts.append(ReactionType("COads_h", [((0, 0), "h", "hC")], k["k_co_ads"], group="COads"))
    rts.append(ReactionType("COads_s", [((0, 0), "s", "sC")], k["k_co_ads"], group="COads"))
    rts.append(ReactionType("COdes_h", [((0, 0), "hC", "h")], k["k_co_des"], group="COdes"))
    rts.append(ReactionType("COdes_s", [((0, 0), "sC", "s")], k["k_co_des"], group="COdes"))

    # --- O2 adsorption on square pairs ---------------------------------
    rts += oriented(
        "O2ads", [((0, 0), "s", "sO"), ((1, 0), "s", "sO")],
        rate=k["k_o2_ads"], directions=ORIENTATIONS_2,
    )

    # --- surface reaction CO + O -> CO2 (products desorb) --------------
    rts += oriented(
        "react_ss", [((0, 0), "sC", "s"), ((1, 0), "sO", "s")],
        rate=k["k_react"], directions=ORIENTATIONS_4, group="react",
    )
    rts += oriented(
        "react_hs", [((0, 0), "hC", "h"), ((1, 0), "sO", "s")],
        rate=k["k_react"], directions=ORIENTATIONS_4, group="react",
    )

    # --- phase dynamics -------------------------------------------------
    rts.append(ReactionType("lift", [((0, 0), "hC", "sC")], k["k_lift"], group="lift"))
    for sq in ("s", "sC", "sO"):
        rts += oriented(
            f"lift_front[{sq}]",
            [((0, 0), "hC", "sC"), ((1, 0), sq, sq)],
            rate=k["k_lift_front"], directions=ORIENTATIONS_4, group="lift_front",
        )
    rts.append(ReactionType("rec", [((0, 0), "s", "h")], k["k_rec"], group="rec"))
    for hx in ("h", "hC"):
        rts += oriented(
            f"rec_front[{hx}]",
            [((0, 0), "s", "h"), ((1, 0), hx, hx)],
            rate=k["k_rec_front"], directions=ORIENTATIONS_4, group="rec_front",
        )

    # --- CO diffusion (phase of each site is preserved) -----------------
    for src_occ, src_empty in (("hC", "h"), ("sC", "s")):
        for dst_empty, dst_occ in (("h", "hC"), ("s", "sC")):
            rts += oriented(
                f"diff_{src_occ}>{dst_empty}",
                [((0, 0), src_occ, src_empty), ((1, 0), dst_empty, dst_occ)],
                rate=k["k_diff"], directions=ORIENTATIONS_4, group="diff",
            )

    return Model(SPECIES, rts, name="pt100")


def hex_surface(lattice: Lattice, model: Model | None = None) -> Configuration:
    """The standard initial condition: a clean hexagonal surface."""
    m = model or pt100_model()
    return Configuration.filled(lattice, m.species, "h")


def mean_field_rhs(theta: np.ndarray, k: Mapping[str, float]) -> np.ndarray:
    """Mean-field (site-approximation) ODE right-hand side.

    ``theta = (h, hC, s, sC, sO)`` coverages.  Pair densities are
    approximated as products of coverages; front terms use the
    4-neighbour coordination ``z = 4``.  Used to locate the oscillatory
    parameter regime (a Hopf cycle of this ODE system) before running
    lattice simulations.

    Same-phase CO hops conserve all five coverages, but *cross-phase*
    hops (``hC + s -> h + sC`` and ``sC + h -> s + hC``) transfer CO
    between the phase-labelled species and therefore do enter the
    equations (net term ``z * k_diff * (sC*h - hC*s)`` into the hex
    pair).  This function agrees exactly with the generator
    :func:`repro.analysis.meanfield.mean_field_rhs_for` applied to
    :func:`pt100_model` (tested).
    """
    h, hC, s, sC, sO = theta
    z = 4.0
    # net CO transfer square -> hex by cross-phase diffusion
    cross = z * k["k_diff"] * (sC * h - hC * s)
    sq = s + sC + sO
    hx = h + hC
    ads_h = k["k_co_ads"] * h
    ads_s = k["k_co_ads"] * s
    des_h = k["k_co_des"] * hC
    des_s = k["k_co_des"] * sC
    # two orientations of O2 adsorption, each consuming an (s, s) pair:
    # per-site pair density ~ z/2 * s^2; with the two-orientation rate
    # convention the total O production rate is 2 * 2 * k_o2 * s^2
    o2 = 2.0 * k["k_o2_ads"] * s * s
    rx_s = z * k["k_react"] * sC * sO
    rx_h = z * k["k_react"] * hC * sO
    lift = k["k_lift"] * hC + z * k["k_lift_front"] * hC * sq
    rec = k["k_rec"] * s + z * k["k_rec_front"] * s * hx
    dh = -ads_h + des_h + rec + rx_h - cross
    dhC = ads_h - des_h - lift - rx_h + cross
    ds = -ads_s + des_s - rec - 2.0 * o2 + 2.0 * rx_s + rx_h + cross
    dsC = ads_s - des_s + lift - rx_s - cross
    dsO = 2.0 * o2 - rx_s - rx_h
    return np.array([dh, dhC, ds, dsC, dsO])
