"""Kinetic Ising model as a reaction system (NDCA-degeneracy example).

Section 4 of the paper notes that the site-selection difference
between NDCA (every site exactly once per step) and RSM (independent
uniform choices) "introduces biases in the rates of the reactions and
causes NDCA to give degenerate results for some systems (Ising models,
Single-File models, etc.)" citing Vichniac's observation that
synchronous Ising CA dynamics misbehaves.

Here spin-flip (Glauber-type) dynamics is expressed in the
reaction-type formalism: one reaction type per local field
configuration — a 5-site pattern (site + 4 neighbours) per
neighbourhood occupation, with a flip rate satisfying detailed balance
at inverse temperature ``beta``::

    k(flip) = nu * exp(-beta * dE) / (1 + exp(-beta * dE)),
    dE = 2 J s_i sum_nbr s_j

This doubles as a stress test for the partition machinery: the 5-site
patterns make the union neighborhood large, so conflict-free
partitions need many chunks (found automatically by the colouring
module — compare the five chunks of the pair-pattern models).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import Change, ReactionType
from ..core.state import Configuration

__all__ = ["ising_model_2d", "magnetization", "random_spins"]

_NBR_OFFSETS = ((1, 0), (0, 1), (-1, 0), (0, -1))
_SPIN = {"-": -1, "+": +1}


def ising_model_2d(beta: float, coupling: float = 1.0, nu: float = 1.0) -> Model:
    """2-d Glauber Ising model with 32 flip reaction types.

    Species are ``"+"`` and ``"-"``.  For every centre spin and every
    neighbour configuration (16 of them) a flip reaction type is
    generated whose rate is the Glauber rate for the corresponding
    energy change — so detailed balance w.r.t. the Ising Hamiltonian
    ``H = -J sum s_i s_j`` holds by construction.
    """
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    rts: list[ReactionType] = []
    for centre in ("+", "-"):
        s_i = _SPIN[centre]
        flipped = "-" if centre == "+" else "+"
        for nbrs in itertools.product("+-", repeat=4):
            field = sum(_SPIN[n] for n in nbrs)
            d_e = 2.0 * coupling * s_i * field
            rate = nu * math.exp(-beta * d_e) / (1.0 + math.exp(-beta * d_e))
            changes = [Change((0, 0), centre, flipped)]
            changes += [
                Change(off, n, n) for off, n in zip(_NBR_OFFSETS, nbrs)
            ]
            name = f"flip[{centre}|{''.join(nbrs)}]"
            rts.append(ReactionType(name, tuple(changes), rate, group=f"flip{centre}"))
    return Model(["-", "+"], rts, name=f"ising(beta={beta:g})")


def magnetization(state: Configuration) -> float:
    """Mean spin ``<s>`` of a configuration (+1/-1 coding)."""
    plus = state.coverage("+")
    return 2.0 * plus - 1.0


def random_spins(
    lattice: Lattice, model: Model, rng: np.random.Generator, p_up: float = 0.5
) -> Configuration:
    """Random spin configuration with up-probability ``p_up``."""
    if not 0.0 <= p_up <= 1.0:
        raise ValueError(f"p_up must be in [0, 1], got {p_up}")
    draw = rng.random(lattice.n_sites) < p_up
    codes = np.where(draw, model.species.code("+"), model.species.code("-"))
    return Configuration(lattice, model.species, codes.astype(np.uint8))
