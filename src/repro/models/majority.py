"""The 1-d "zero spreads" rule of the paper's Block-CA example (Fig. 3).

The rule: the state of a site (0 or 1) becomes 0 if at least one of its
neighbours is 0, otherwise it stays the same.  Fig. 3 demonstrates a
Block CA applying this rule *within* 3-site blocks, alternating the
block boundaries between steps so the zeros can spread across block
edges over time.

Two forms are provided:

* :func:`zero_spreads_block_rule` — the block rule for
  :class:`repro.ca.bca.BlockCA` (neighbours restricted to the block,
  exactly as in Fig. 3);
* :func:`zero_spreads_global` — the plain synchronous CA rule on the
  whole (periodic) lattice, the reference dynamics the BCA
  approximates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zero_spreads_block_rule",
    "zero_spreads_global",
    "FIG3_INITIAL",
]

#: The initial 9-site configuration of the paper's Fig. 3 (top row).
FIG3_INITIAL = np.array([0, 1, 1, 1, 1, 1, 0, 1, 1], dtype=np.uint8)


def zero_spreads_block_rule(blocks: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply "becomes 0 if a neighbour in the block is 0" within each block.

    ``blocks`` has shape ``(n_blocks, block_len)``.  Neighbours outside
    the block are invisible (that is the point of the BCA); boundary
    sites of a block only see their single in-block neighbour.
    """
    if blocks.ndim != 2:
        raise ValueError("the zero-spreads rule is 1-d (blocks of shape (n, b))")
    b = blocks.shape[1]
    out = blocks.copy()
    if b == 1:
        return out  # no in-block neighbours: nothing can change
    left_zero = np.zeros_like(blocks, dtype=bool)
    right_zero = np.zeros_like(blocks, dtype=bool)
    left_zero[:, 1:] = blocks[:, :-1] == 0
    right_zero[:, :-1] = blocks[:, 1:] == 0
    out[left_zero | right_zero] = 0
    return out


def zero_spreads_global(state: np.ndarray) -> np.ndarray:
    """One synchronous step of the rule on the full periodic 1-d lattice."""
    state = np.asarray(state)
    if state.ndim != 1:
        raise ValueError("expected a 1-d state")
    zero_nbr = (np.roll(state, 1) == 0) | (np.roll(state, -1) == 0)
    out = state.copy()
    out[zero_nbr] = 0
    return out
