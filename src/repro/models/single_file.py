"""Single-file diffusion — the second NDCA-degeneracy example.

Particles hop on a 1-d lattice and cannot pass each other (hard-core
exclusion): in a narrow pore the particle *order* is conserved, which
makes the tracer (tagged-particle) dynamics anomalously slow
(mean-squared displacement ~ sqrt(t) instead of ~ t).  The model is
just 1-d hard-core hopping — the single-file property is automatic —
but the observable of interest is the *tracer* MSD, computed here by
following the displacement of each particle identity through the hop
events.

The paper cites single-file systems (with Ising models) as cases where
the NDCA's once-per-site sweep biases the kinetics; the bias benchmark
compares tracer MSD and density correlations between RSM and NDCA.
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventTrace
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.state import Configuration
from .diffusion import diffusion_model_1d

__all__ = ["single_file_model", "equally_spaced", "tracer_displacements"]


def single_file_model(k_hop: float = 1.0) -> Model:
    """1-d hard-core hop model (hop blocked by an occupied target site)."""
    m = diffusion_model_1d(k_hop)
    return Model(m.species, m.reaction_types, name="single-file")


def equally_spaced(lattice: Lattice, model: Model, n_particles: int) -> Configuration:
    """``n_particles`` particles placed at (approximately) equal spacing."""
    n = lattice.n_sites
    if not 0 < n_particles <= n:
        raise ValueError(f"cannot place {n_particles} particles on {n} sites")
    cfg = Configuration.empty(lattice, model.species)
    positions = (np.arange(n_particles) * n) // n_particles
    cfg.array[positions] = model.species.code("A")
    return cfg


def tracer_displacements(
    initial: Configuration, trace: EventTrace, model: Model
) -> np.ndarray:
    """Per-particle net displacement replayed from a 1-d hop event trace.

    Relies on the single-file property: particle order is conserved, so
    identities can be tracked by replaying hops.  Returns signed
    displacements (one per particle, in initial-position order).
    Events must come from a simulator run with ``record_events=True``
    on the ``single_file_model`` (types ``hop_right``/``hop_left``).
    """
    lat = initial.lattice
    if lat.ndim != 1:
        raise ValueError("tracer analysis is 1-d only")
    right = model.type_index("hop_right")
    left = model.type_index("hop_left")
    occupied = initial.array == model.species.code("A")
    # particle id per site (-1 = vacant)
    ids = np.full(lat.n_sites, -1, dtype=np.int64)
    order = np.flatnonzero(occupied)
    ids[order] = np.arange(order.size)
    disp = np.zeros(order.size, dtype=np.int64)
    n = lat.n_sites
    for t_idx, s in zip(trace.type_indices.tolist(), trace.sites.tolist()):
        if t_idx == right:
            dst, step = (s + 1) % n, +1
        elif t_idx == left:
            dst, step = (s - 1) % n, -1
        else:
            continue
        pid = ids[s]
        if pid < 0:
            raise ValueError(f"event trace is inconsistent: hop from vacant site {s}")
        ids[dst] = pid
        ids[s] = -1
        disp[pid] += step
    return disp
