"""Contract-driven property fuzzing for the dispatchable kernels.

The ``@kernel`` contracts and the lint IR already describe every
kernel's argument space — symbolic shapes (``("R", "N")``), dtypes,
and the index preconditions (``disjoint`` sites, per-replica streams).
This module turns those declarations into *generators of random valid
inputs* and a differential checker, so backend bit-identity is
established property-style over seeded random cases instead of
hand-picked ones:

* :func:`argument_grid` resolves a kernel's declared symbolic
  shapes/dtypes against concrete dimension bindings via
  :func:`repro.lint.ir.build_ir` — the same facts the static analyzer
  seeds its dataflow with drive the fuzzer's allocations.
* :func:`conflict_free_sites` samples a random *pairwise conflict-free*
  site set for any model/lattice — including degenerate shapes where
  the library partitions don't apply — by greedy footprint exclusion
  over the compiled neighbour maps.  This realises the ``disjoint``
  precondition the batch contracts declare.
* :func:`fuzz_case` builds one random valid argument dict for a named
  dispatch kernel; :func:`compare_backends` runs the same case through
  several backends on fresh copies of every contract-declared written
  argument and reports any divergence (return value, written arrays,
  the ``record`` list) as human-readable mismatch strings.

An empty :func:`compare_backends` result *is* the bit-identity claim
for that case; the suite in ``tests/test_backends.py`` asserts it over
models × shapes × seeds, and asserts the converse on seeded mutant
backends (the harness must catch a deliberately wrong twin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..core.compiled import CompiledModel
from ..lint.contracts import contract_of
from ..lint.ir import build_ir
from .registry import DISPATCH_KERNELS, resolve_backend

__all__ = [
    "ArgSpec",
    "argument_grid",
    "compare_backends",
    "conflict_free_sites",
    "fuzz_case",
    "fuzz_cases",
]


@dataclass(frozen=True)
class ArgSpec:
    """Resolved allocation facts for one kernel parameter."""

    name: str
    shape: tuple[int, ...] | None  # None: undeclared (scalar/object)
    dtype: np.dtype | None


def argument_grid(
    fn: Callable[..., Any], bindings: Mapping[str, int]
) -> dict[str, ArgSpec]:
    """Concrete per-parameter shapes/dtypes from the kernel's contract.

    ``bindings`` maps the contract's symbolic dimension names (``"R"``,
    ``"N"``, ``"B"``, ``"T"``) to concrete sizes; parameters without a
    declared shape/dtype resolve to ``None`` entries.  Built on the
    lint IR so the fuzzer consumes exactly the facts the static
    analyzer does — a contract typo breaks both loudly.
    """
    ir = build_ir(fn)
    grid: dict[str, ArgSpec] = {}
    for p in ir.params:
        sym = ir.contract.shapes.get(p)
        dtype = ir.contract.dtypes.get(p)
        shape: tuple[int, ...] | None = None
        if sym is not None:
            resolved = []
            for dim in sym:
                if isinstance(dim, int):
                    resolved.append(dim)
                elif dim in bindings:
                    resolved.append(int(bindings[dim]))
                else:
                    resolved = None  # type: ignore[assignment]
                    break
            if resolved is not None:
                shape = tuple(resolved)
        grid[p] = ArgSpec(
            name=p,
            shape=shape,
            dtype=np.dtype(dtype) if dtype is not None else None,
        )
    return grid


# ----------------------------------------------------------------------
# valid-input generators
# ----------------------------------------------------------------------

def _footprints(compiled: CompiledModel) -> np.ndarray:
    """Stacked ``(K, N)`` union footprint maps over all reaction types.

    Column ``s`` is the set of flat sites any reaction anchored at
    ``s`` may read or write.  Two anchors with disjoint columns are
    conflict-free for *every* type assignment — the same guarantee a
    validated partition chunk provides.
    """
    cols = [m for ct in compiled.types for m in ct.maps]
    return np.stack(cols, axis=0)


def conflict_free_sites(
    compiled: CompiledModel,
    rng: np.random.Generator,
    max_n: int | None = None,
) -> np.ndarray:
    """A random pairwise conflict-free anchor set (greedy exclusion).

    Visits the lattice sites in a random order and keeps each site
    whose union reaction footprint does not intersect the footprints
    of the sites already kept.  Works on any lattice the model
    compiles against, degenerate shapes included; the result is valid
    for the ``disjoint`` precondition of ``run_trials_batch`` /
    ``run_trials_stacked`` under arbitrary type assignments.
    """
    fp = _footprints(compiled)
    n = compiled.n_sites
    order = rng.permutation(n)
    used = np.zeros(n, dtype=bool)
    keep: list[int] = []
    limit = n if max_n is None else int(max_n)
    for s in order.tolist():
        cells = fp[:, s]
        if used[cells].any():
            continue
        used[cells] = True
        keep.append(s)
        if len(keep) >= limit:
            break
    return np.array(keep, dtype=np.intp)


def _draw_types(
    compiled: CompiledModel, rng: np.random.Generator, size: int
) -> np.ndarray:
    return rng.integers(0, len(compiled.types), size=size, dtype=np.intp)


def _random_state(
    compiled: CompiledModel, rng: np.random.Generator
) -> np.ndarray:
    n_species = 1 + int(
        max(max(ct.src_arr.max(), ct.tgt_arr.max()) for ct in compiled.types)
    )
    return rng.integers(0, n_species, compiled.n_sites, dtype=np.uint8)


def fuzz_case(
    compiled: CompiledModel,
    kernel_name: str,
    rng: np.random.Generator,
    *,
    n_replicas: int = 3,
    with_counts: bool = True,
    with_record: bool = False,
) -> dict[str, Any]:
    """One random *contract-valid* argument dict for a dispatch kernel.

    The allocation shapes/dtypes come from :func:`argument_grid`; the
    index preconditions (conflict-free anchors, per-replica streams,
    in-range half-open windows) come from the generators above.
    Returned arrays are fresh — callers may mutate them freely.
    """
    if kernel_name not in DISPATCH_KERNELS:
        raise ValueError(f"not a dispatch kernel: {kernel_name!r}")
    from ..core import kernels as _ref

    fn = getattr(_ref, kernel_name)
    n = compiled.n_sites
    n_types = len(compiled.types)
    grid = argument_grid(
        fn, {"R": n_replicas, "N": n, "T": n_types, "B": max(2 * n, 8)}
    )

    def counts_for(param: str, default_shape: tuple[int, ...]) -> np.ndarray:
        spec = grid.get(param)
        shape = spec.shape if spec and spec.shape else default_shape
        dtype = spec.dtype if spec and spec.dtype else np.dtype(np.int64)
        return np.zeros(shape, dtype=dtype)

    state_spec = grid.get("state") or grid.get("states")
    state_dtype = (
        state_spec.dtype if state_spec and state_spec.dtype else np.uint8
    )
    kwargs: dict[str, Any] = {"compiled": compiled}

    if kernel_name == "run_trials_sequential":
        # no precondition: arbitrary streams, repeats and all
        n_trials = int(rng.integers(0, 3 * n + 1))
        kwargs["state"] = _random_state(compiled, rng).astype(state_dtype)
        kwargs["sites"] = rng.integers(0, n, n_trials, dtype=np.intp)
        kwargs["types"] = _draw_types(compiled, rng, n_trials)
        if with_counts:
            kwargs["counts"] = counts_for("counts", (n_types,))
        if with_record:
            kwargs["record"] = []
    elif kernel_name == "run_trials_batch_with_duplicates":
        # valid streams repeat sites, but the *distinct* sites must be
        # conflict-free (the L-PNDCA with-replacement sampling shape)
        pool = conflict_free_sites(compiled, rng)
        n_trials = int(rng.integers(0, 3 * pool.size + 1))
        kwargs["state"] = _random_state(compiled, rng).astype(state_dtype)
        kwargs["sites"] = pool[rng.integers(0, pool.size, n_trials)]
        kwargs["types"] = _draw_types(compiled, rng, n_trials)
        if with_counts:
            kwargs["counts"] = counts_for("counts", (n_types,))
    elif kernel_name == "run_trials_batch":
        sites = conflict_free_sites(compiled, rng)
        kwargs["state"] = _random_state(compiled, rng).astype(state_dtype)
        kwargs["sites"] = sites
        kwargs["types"] = _draw_types(compiled, rng, sites.size)
        if with_counts:
            kwargs["counts"] = counts_for("counts", (n_types,))
    elif kernel_name == "execute_type_everywhere":
        kwargs["state"] = _random_state(compiled, rng).astype(state_dtype)
        kwargs["type_index"] = int(rng.integers(0, n_types))
        kwargs["sites"] = conflict_free_sites(compiled, rng)
    elif kernel_name == "run_trials_stacked":
        reps, sites = [], []
        for r in range(n_replicas):
            chunk = conflict_free_sites(compiled, rng)
            reps.append(np.full(chunk.size, r, dtype=np.intp))
            sites.append(chunk)
        reps_arr = np.concatenate(reps)
        sites_arr = np.concatenate(sites)
        states = np.ascontiguousarray(
            np.stack(
                [_random_state(compiled, rng) for _ in range(n_replicas)]
            ).astype(state_dtype)
        )
        kwargs["states"] = states
        kwargs["reps"] = reps_arr
        kwargs["sites"] = sites_arr
        kwargs["types"] = _draw_types(compiled, rng, sites_arr.size)
        if with_counts:
            kwargs["counts"] = counts_for("counts", (n_replicas, n_types))
    elif kernel_name == "run_trials_interleaved":
        spec = grid["sites"]
        n_blk = spec.shape[1] if spec.shape else max(2 * n, 8)
        states = np.ascontiguousarray(
            np.stack(
                [_random_state(compiled, rng) for _ in range(n_replicas)]
            ).astype(state_dtype)
        )
        starts = rng.integers(0, n_blk // 2, n_replicas).astype(np.intp)
        stops = starts + rng.integers(
            0, n_blk - n_blk // 2 + 1, n_replicas
        ).astype(np.intp)
        kwargs["states"] = states
        kwargs["sites"] = rng.integers(0, n, (n_replicas, n_blk), dtype=np.intp)
        kwargs["types"] = _draw_types(compiled, rng, (n_replicas, n_blk))
        kwargs["starts"] = starts
        kwargs["stops"] = stops
        if with_counts:
            kwargs["counts"] = counts_for("counts", (n_replicas, n_types))
    return kwargs


def fuzz_cases(
    compiled: CompiledModel,
    kernel_name: str,
    rng: np.random.Generator,
    n_cases: int,
    **opts: Any,
) -> Iterator[dict[str, Any]]:
    """``n_cases`` independent random cases for one dispatch kernel."""
    for _ in range(n_cases):
        yield fuzz_case(compiled, kernel_name, rng, **opts)


# ----------------------------------------------------------------------
# the differential checker
# ----------------------------------------------------------------------

def _written_params(kernel_name: str) -> tuple[str, ...]:
    """The reference contract's write set (what each backend may mutate)."""
    from ..core import kernels as _ref

    contract = contract_of(getattr(_ref, kernel_name))
    assert contract is not None
    return contract.writes


def _fresh(kwargs: Mapping[str, Any], written: tuple[str, ...]) -> dict[str, Any]:
    out = dict(kwargs)
    for p in written:
        v = out.get(p)
        if isinstance(v, np.ndarray):
            out[p] = v.copy()
        elif isinstance(v, list):
            out[p] = list(v)
    return out


def compare_backends(
    kernel_name: str,
    kwargs: Mapping[str, Any],
    backends: "tuple[Any, ...]" = ("numpy", "cnative"),
    *,
    label: str = "",
) -> list[str]:
    """Run one case through several backends; report every divergence.

    Each backend executes on fresh copies of the contract-declared
    written arguments.  The first backend is the oracle; mismatch
    strings name the kernel, the diverging output and the backend pair.
    An empty list is the bit-identity verdict for this case.
    """
    written = _written_params(kernel_name)
    runs: list[tuple[str, int, dict[str, Any]]] = []
    for spec in backends:
        backend = resolve_backend(spec, warn=False)
        impl = getattr(backend.kernel_set(), kernel_name)
        local = _fresh(kwargs, written)
        ret = impl(**local)
        runs.append((backend.name, int(ret), local))

    mismatches: list[str] = []
    base_name, base_ret, base_kwargs = runs[0]
    where = f"{kernel_name}{f' [{label}]' if label else ''}"
    for name, ret, local in runs[1:]:
        pair = f"{base_name} vs {name}"
        if ret != base_ret:
            mismatches.append(
                f"{where}: return value diverged ({pair}): "
                f"{base_ret} != {ret}"
            )
        for p in written:
            a, b = base_kwargs.get(p), local.get(p)
            if a is None and b is None:
                continue
            if isinstance(a, np.ndarray):
                if not np.array_equal(a, b):
                    bad = int(np.count_nonzero(np.asarray(a) != np.asarray(b)))
                    mismatches.append(
                        f"{where}: output {p!r} diverged ({pair}): "
                        f"{bad} element(s) differ"
                    )
            elif a != b:
                mismatches.append(
                    f"{where}: output {p!r} diverged ({pair}): {a!r} != {b!r}"
                )
    return mismatches
