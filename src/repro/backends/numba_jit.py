"""The ``numba`` backend: ``@njit`` twins of the trial-execution loops.

This is the highest tier of the registry: when numba is importable the
kernels below JIT-compile the same strict-order trial loop the
``cnative`` tier implements in C (both consume the packed tables of
:func:`repro.backends.cnative.cnative_tables`, so the two compiled
tiers share one table cache and one bit-identity argument — see the
``cnative`` module docstring for why sequential execution reproduces
every reference kernel exactly on contract-valid inputs).

When numba is *not* importable the backend reports itself unavailable
and :func:`repro.backends.registry.resolve_backend` degrades down the
declared chain ``numba -> cnative -> numpy`` with a warning — requesting
``--backend numba`` on a host without numba still runs, on the best
compiled tier present.  The wrappers themselves also degrade per call
(numba -> cnative -> reference), so even a direct call cannot fail for
lack of a JIT.

The module imports cleanly without numba: compilation is deferred to
the first kernel call, and ``@kernel`` registration is metadata-only.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.compiled import CompiledModel
from ..lint.contracts import kernel
from . import cnative as _cn
from .registry import Backend, register_backend

__all__ = [
    "NumbaBackend",
    "nb_execute_type_everywhere",
    "nb_run_trials_batch",
    "nb_run_trials_batch_with_duplicates",
    "nb_run_trials_interleaved",
    "nb_run_trials_sequential",
    "nb_run_trials_stacked",
    "numba_available",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)

# lazily-compiled jit entry points: None until first successful build
_jit_cache: "dict[str, Callable] | None" = None
_jit_failed = False


def numba_available() -> bool:
    """Is the numba JIT importable on this host?"""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _jit() -> "dict[str, Callable] | None":
    """Compile the jit loops on first use; None when numba is absent."""
    global _jit_cache, _jit_failed
    if _jit_cache is not None or _jit_failed:
        return _jit_cache
    try:
        from numba import njit
    except Exception:
        _jit_failed = True
        return None

    @njit(cache=True)
    def run_trials(
        state, maps, srcs, tgts, nch, sites, types, counts, use_counts,
        rec, use_rec,
    ):  # pragma: no cover - exercised only where numba is installed
        c_max = maps.shape[1]
        n_exec = 0
        for i in range(sites.size):
            s = sites[i]
            t = types[i]
            nc = nch[t]
            ok = True
            for c in range(nc):
                if state[maps[t, c, s]] != srcs[t, c]:
                    ok = False
                    break
            if not ok:
                continue
            for c in range(nc):
                state[maps[t, c, s]] = tgts[t, c]
            if use_counts:
                counts[t] += 1
            if use_rec:
                rec[3 * n_exec] = i
                rec[3 * n_exec + 1] = t
                rec[3 * n_exec + 2] = s
            n_exec += 1
        return n_exec

    @njit(cache=True)
    def run_trials_stacked(
        states, maps, srcs, tgts, nch, reps, sites, types, counts,
        use_counts,
    ):  # pragma: no cover - exercised only where numba is installed
        n_exec = 0
        for i in range(sites.size):
            r = reps[i]
            s = sites[i]
            t = types[i]
            nc = nch[t]
            ok = True
            for c in range(nc):
                if states[r, maps[t, c, s]] != srcs[t, c]:
                    ok = False
                    break
            if not ok:
                continue
            for c in range(nc):
                states[r, maps[t, c, s]] = tgts[t, c]
            if use_counts:
                counts[r, t] += 1
            n_exec += 1
        return n_exec

    @njit(cache=True)
    def run_interleaved(
        states, maps, srcs, tgts, nch, sites, types, starts, stops,
        counts, use_counts,
    ):  # pragma: no cover - exercised only where numba is installed
        n_exec = 0
        for r in range(states.shape[0]):
            for i in range(starts[r], stops[r]):
                s = sites[r, i]
                t = types[r, i]
                nc = nch[t]
                ok = True
                for c in range(nc):
                    if states[r, maps[t, c, s]] != srcs[t, c]:
                        ok = False
                        break
                if not ok:
                    continue
                for c in range(nc):
                    states[r, maps[t, c, s]] = tgts[t, c]
                if use_counts:
                    counts[r, t] += 1
                n_exec += 1
        return n_exec

    _jit_cache = {
        "run_trials": run_trials,
        "run_trials_stacked": run_trials_stacked,
        "run_interleaved": run_interleaved,
    }
    return _jit_cache


def _run_stream_jit(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None",
    record: "list | None",
) -> int:
    jit = _jit()
    assert jit is not None  # callers guard with numba_available()
    maps, srcs, tgts, nch = _cn.cnative_tables(compiled)
    cbuf, direct = _cn._counts_buffer(counts)
    use_counts = cbuf is not None
    use_rec = record is not None
    rec = np.empty(3 * sites.size, dtype=np.int64) if use_rec else _EMPTY_I64
    n_exec = int(
        jit["run_trials"](
            state, maps, srcs, tgts, nch, sites, types,
            cbuf if use_counts else _EMPTY_I64, use_counts, rec, use_rec,
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    if record is not None and n_exec:
        flat = rec[: 3 * n_exec].tolist()
        record.extend(
            (flat[3 * k], flat[3 * k + 1], flat[3 * k + 2])
            for k in range(n_exec)
        )
    return n_exec


def _usable(state: np.ndarray, *streams: np.ndarray) -> bool:
    if _jit() is None:
        return False
    if state.dtype != np.uint8 or not state.flags.c_contiguous:
        return False
    return all(s.flags.c_contiguous for s in streams)


# ----------------------------------------------------------------------
# the jitted kernels (each a declared twin of its NumPy reference)
# ----------------------------------------------------------------------

@kernel(
    reads=("sites", "types"),
    writes=("state", "counts", "record"),
    caches=("compiled",),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_sequential",
)
def nb_run_trials_sequential(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: "np.ndarray | Sequence[int]",
    types: "np.ndarray | Sequence[int]",
    counts: "np.ndarray | None" = None,
    record: "list | None" = None,
) -> int:
    """Numba twin of :func:`repro.core.kernels.run_trials_sequential`."""
    s_arr = _cn._as_stream(sites)
    t_arr = _cn._as_stream(types)
    if s_arr.size != t_arr.size:
        raise ValueError("sites and types must have equal length")
    if not _usable(state, s_arr, t_arr) or not _cn._stream_valid(
        compiled, s_arr, t_arr
    ):
        return _cn.c_run_trials_sequential(
            state, compiled, sites, types, counts=counts, record=record
        )
    return _run_stream_jit(state, compiled, s_arr, t_arr, counts, record)


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    disjoint=("sites",),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_batch",
)
def nb_run_trials_batch(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """Numba twin of :func:`repro.core.kernels.run_trials_batch`."""
    s_arr = _cn._as_stream(sites)
    t_arr = _cn._as_stream(types)
    if np.asarray(sites).shape != np.asarray(types).shape:
        raise ValueError("sites and types must have equal length")
    if s_arr.size == 0:
        return 0
    if not _usable(state, s_arr, t_arr) or not _cn._stream_valid(
        compiled, s_arr, t_arr
    ):
        return _cn.c_run_trials_batch(state, compiled, sites, types, counts)
    return _run_stream_jit(state, compiled, s_arr, t_arr, counts, None)


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_batch_with_duplicates",
)
def nb_run_trials_batch_with_duplicates(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """Numba twin of occurrence-batched execution (equals sequential)."""
    s_arr = _cn._as_stream(sites)
    t_arr = _cn._as_stream(types)
    if s_arr.size == 0:
        return 0
    if s_arr.size != t_arr.size or not _usable(
        state, s_arr, t_arr
    ) or not _cn._stream_valid(compiled, s_arr, t_arr):
        return _cn.c_run_trials_batch_with_duplicates(
            state, compiled, sites, types, counts
        )
    return _run_stream_jit(state, compiled, s_arr, t_arr, counts, None)


@kernel(
    reads=("reps", "sites", "types"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={"states": ("R", "N"), "counts": ("R", "T")},
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_stacked",
)
def nb_run_trials_stacked(
    states: np.ndarray,
    compiled: CompiledModel,
    reps: np.ndarray,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """Numba twin of :func:`repro.core.kernels.run_trials_stacked`."""
    r_arr = _cn._as_stream(reps)
    s_arr = _cn._as_stream(sites)
    t_arr = _cn._as_stream(types)
    if s_arr.size == 0:
        return 0
    n_reps = states.shape[0] if states.ndim == 2 else 0
    ok = (
        r_arr.size == s_arr.size == t_arr.size
        and states.ndim == 2
        and _usable(states, r_arr, s_arr, t_arr)
        and _cn._stream_valid(compiled, s_arr, t_arr)
        and bool((r_arr >= 0).all() and (r_arr < n_reps).all())
    )
    if not ok:
        return _cn.c_run_trials_stacked(
            states, compiled, reps, sites, types, counts
        )
    jit = _jit()
    assert jit is not None
    maps, srcs, tgts, nch = _cn.cnative_tables(compiled)
    cbuf, direct = _cn._counts_buffer(counts)
    use_counts = cbuf is not None
    n_exec = int(
        jit["run_trials_stacked"](
            states, maps, srcs, tgts, nch, r_arr, s_arr, t_arr,
            cbuf if use_counts else np.empty((0, 0), dtype=np.int64),
            use_counts,
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    return n_exec


@kernel(
    reads=("sites", "types", "starts", "stops"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={
        "states": ("R", "N"),
        "sites": ("R", "B"),
        "types": ("R", "B"),
        "counts": ("R", "T"),
    },
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_interleaved",
)
def nb_run_trials_interleaved(
    states: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    counts: "np.ndarray | None" = None,
    window: int = 16,
) -> int:
    """Numba twin of :func:`repro.core.kernels.run_trials_interleaved`."""
    s_arr = _cn._as_stream(sites)
    t_arr = _cn._as_stream(types)
    start_arr = _cn._as_stream(starts)
    stop_arr = _cn._as_stream(stops)
    ok = (
        states.ndim == 2
        and s_arr.ndim == 2
        and s_arr.shape == t_arr.shape
        and s_arr.shape[0] == states.shape[0]
        and start_arr.size == stop_arr.size == states.shape[0]
        and _usable(states, s_arr, t_arr, start_arr, stop_arr)
        and _cn._stream_valid(compiled, s_arr.ravel(), t_arr.ravel())
        and bool(
            (start_arr >= 0).all() and (stop_arr <= s_arr.shape[1]).all()
        )
    )
    if not ok:
        return _cn.c_run_trials_interleaved(
            states, compiled, sites, types, starts, stops,
            counts=counts, window=window,
        )
    jit = _jit()
    assert jit is not None
    maps, srcs, tgts, nch = _cn.cnative_tables(compiled)
    cbuf, direct = _cn._counts_buffer(counts)
    use_counts = cbuf is not None
    n_exec = int(
        jit["run_interleaved"](
            states, maps, srcs, tgts, nch, s_arr, t_arr, start_arr,
            stop_arr,
            cbuf if use_counts else np.empty((0, 0), dtype=np.int64),
            use_counts,
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    return n_exec


@kernel(
    reads=("type_index", "sites"),
    writes=("state",),
    dtypes={"state": "uint8"},
    twin="execute_type_everywhere",
)
def nb_execute_type_everywhere(
    state: np.ndarray,
    compiled: CompiledModel,
    type_index: int,
    sites: np.ndarray,
) -> int:
    """Numba twin of :func:`repro.core.kernels.execute_type_everywhere`."""
    compiled.types[type_index]  # mirror the reference's IndexError
    s_arr = _cn._as_stream(sites)
    t_arr = np.full(s_arr.size, int(type_index), dtype=np.int64)
    if not _usable(state, s_arr) or not _cn._stream_valid(
        compiled, s_arr, t_arr
    ):
        return _cn.c_execute_type_everywhere(
            state, compiled, type_index, sites
        )
    return _run_stream_jit(state, compiled, s_arr, t_arr, None, None)


class NumbaBackend(Backend):
    """Tier-2 JIT backend; degrades to cnative, then numpy."""

    name = "numba"
    tier = 2
    fallback = ("cnative",)

    def available(self) -> bool:
        return numba_available()

    def kernels(self) -> Mapping[str, Callable]:
        return {
            "run_trials_sequential": nb_run_trials_sequential,
            "run_trials_batch": nb_run_trials_batch,
            "run_trials_batch_with_duplicates": (
                nb_run_trials_batch_with_duplicates
            ),
            "run_trials_stacked": nb_run_trials_stacked,
            "run_trials_interleaved": nb_run_trials_interleaved,
            "execute_type_everywhere": nb_execute_type_everywhere,
        }


register_backend(NumbaBackend())
