"""The compiled-kernel backend registry: per-run kernel selection.

Every simulation engine ultimately mutates state through the six
public execution kernels of :mod:`repro.core.kernels`
(:data:`DISPATCH_KERNELS`).  Those kernels are *deterministic state
transforms* — all randomness is drawn by the engines — so a compiled
re-implementation can (and must) be **bit-identical**: exact array
equality at every call, not statistical agreement.  That property is
what makes a backend swappable per run without touching the engines'
RNG accounting, checkpoints or results, and it is asserted by the
differential suite in ``tests/test_backends.py``.

Backends
--------
``numpy``
    The reference implementation — the contract-decorated kernels of
    :mod:`repro.core.kernels` themselves.  Always available.
``cnative``
    C translations of the trial-execution kernels, compiled once per
    source digest with the system C compiler and loaded through
    ``ctypes`` (:mod:`repro.backends.cnative`).  Available wherever a
    C compiler is (build artifacts are cached on disk, so the
    compile cost is paid once per machine, not per process).
``numba``
    ``@njit`` twins of the same loops (:mod:`repro.backends.numba_jit`).
    Registered always; available only when numba is importable.  When
    it is not, resolution *degrades gracefully* down the backend's
    fallback chain (``numba -> cnative -> numpy``) with a warning
    instead of failing the run.

Selection order
---------------
:func:`resolve_backend` accepts a backend name, a :class:`Backend`
instance, or ``None``:

* ``None`` — the ambient backend installed by :func:`use_backend`
  (default ``numpy``);
* ``"auto"`` — the highest-tier available backend
  (``numba`` > ``cnative`` > ``numpy``);
* a name — that backend if available, else the first available entry
  of its declared ``fallback`` chain (with a ``BackendFallbackWarning``),
  else ``numpy``.

The backend is an *execution detail*: it never enters the engine
fingerprint, so checkpoints written under one backend restore into any
other (asserted in the differential suite).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

__all__ = [
    "DISPATCH_KERNELS",
    "Backend",
    "BackendFallbackWarning",
    "KernelSet",
    "available_backends",
    "backend_names",
    "current_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_backend",
]

#: the dispatchable kernels — the state-mutation hot paths every
#: engine funnels through (see repro.core.kernels)
DISPATCH_KERNELS: tuple[str, ...] = (
    "run_trials_sequential",
    "run_trials_batch",
    "run_trials_batch_with_duplicates",
    "run_trials_stacked",
    "run_trials_interleaved",
    "execute_type_everywhere",
)


class BackendFallbackWarning(UserWarning):
    """A requested backend is unavailable; a fallback was selected."""


class KernelSet:
    """The resolved kernel table of one backend.

    One attribute per :data:`DISPATCH_KERNELS` entry; kernels the
    backend does not override fall back to the NumPy reference, so a
    partial backend is always safe to run.
    """

    __slots__ = DISPATCH_KERNELS + ("backend_name",)

    def __init__(self, backend_name: str, overrides: Mapping[str, Callable]):
        from ..core import kernels as _reference

        unknown = set(overrides) - set(DISPATCH_KERNELS)
        if unknown:
            raise ValueError(
                f"backend {backend_name!r} overrides unknown kernels "
                f"{sorted(unknown)}; dispatchable: {list(DISPATCH_KERNELS)}"
            )
        self.backend_name = backend_name
        for name in DISPATCH_KERNELS:
            setattr(self, name, overrides.get(name, getattr(_reference, name)))

    def __repr__(self) -> str:
        return f"KernelSet({self.backend_name!r})"


class Backend:
    """One kernel implementation tier.

    Subclasses set :attr:`name`, :attr:`tier` (selection priority for
    ``"auto"``; higher wins) and :attr:`fallback` (names tried in order
    when this backend is unavailable), and override :meth:`available`
    and :meth:`kernels`.
    """

    name: str = "?"
    tier: int = 0
    #: names tried, in order, when this backend is unavailable
    fallback: tuple[str, ...] = ()

    def available(self) -> bool:
        """Can this backend actually execute on this host?"""
        return True

    def kernels(self) -> Mapping[str, Callable]:
        """Kernel-name -> implementation overrides (empty = reference)."""
        return {}

    def kernel_set(self) -> KernelSet:
        """The resolved kernel table (built once, then cached)."""
        cached = getattr(self, "_kernel_set", None)
        if cached is None:
            cached = KernelSet(self.name, self.kernels())
            self._kernel_set = cached
        return cached

    def __repr__(self) -> str:
        return f"<Backend {self.name} tier={self.tier}>"


class NumpyBackend(Backend):
    """The reference tier: the contract-decorated kernels themselves."""

    name = "numpy"
    tier = 0


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register (or replace) a backend under its name; returns it."""
    if not backend.name or backend.name in ("auto",):
        raise ValueError(f"invalid backend name {backend.name!r}")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """The registered backend of that name (KeyError-free lookup)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {backend_names()}"
        ) from None


def backend_names() -> list[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def available_backends() -> list[str]:
    """Names of the backends that can execute on this host, by tier."""
    usable = [b for b in _REGISTRY.values() if b.available()]
    return [b.name for b in sorted(usable, key=lambda b: (-b.tier, b.name))]


def resolve_backend(
    spec: "str | Backend | None" = None, *, warn: bool = True
) -> Backend:
    """Resolve a backend request to an *available* backend.

    See the module docstring for the selection order.  ``warn=False``
    silences the fallback warning (worker processes re-resolving the
    master's choice should not repeat it).
    """
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        return current_backend()
    if spec == "auto":
        names = available_backends()
        return _REGISTRY[names[0]] if names else _REGISTRY["numpy"]
    backend = get_backend(spec)
    if backend.available():
        return backend
    for fb_name in (*backend.fallback, "numpy"):
        fb = _REGISTRY.get(fb_name)
        if fb is not None and fb.available():
            if warn:
                warnings.warn(
                    f"backend {spec!r} is not available on this host; "
                    f"falling back to {fb.name!r}",
                    BackendFallbackWarning,
                    stacklevel=2,
                )
            return fb
    raise RuntimeError(
        f"backend {spec!r} is unavailable and no fallback resolved"
    )  # pragma: no cover - numpy is always available


# ----------------------------------------------------------------------
# ambient backend (mirrors repro.obs.metrics.use_metrics)
# ----------------------------------------------------------------------
_AMBIENT: list[Backend] = []


def current_backend() -> Backend:
    """The innermost :func:`use_backend` backend, or ``numpy``."""
    return _AMBIENT[-1] if _AMBIENT else _REGISTRY["numpy"]


@contextmanager
def use_backend(spec: "str | Backend | None") -> Iterator[Backend]:
    """Install a backend as the ambient default within a ``with`` block.

    Engines constructed inside the block (without an explicit
    ``backend=`` argument) pick it up — this is how the CLI's
    ``--backend`` flag reaches the experiment drivers without
    threading a parameter through every registry function.
    """
    backend = resolve_backend(spec)
    _AMBIENT.append(backend)
    try:
        yield backend
    finally:
        _AMBIENT.pop()


register_backend(NumpyBackend())
