"""Pluggable compiled-kernel backends (``numpy`` / ``cnative`` / ``numba``).

See :mod:`repro.backends.registry` for the selection model and the
bit-identity guarantee, :mod:`repro.backends.cnative` and
:mod:`repro.backends.numba_jit` for the compiled tiers, and
:mod:`repro.backends.fuzz` for the contract-driven differential
harness that enforces the guarantee.
"""

from .registry import (
    DISPATCH_KERNELS,
    Backend,
    BackendFallbackWarning,
    KernelSet,
    available_backends,
    backend_names,
    current_backend,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)

# importing the tiers registers them
from . import cnative as _cnative  # noqa: E402,F401
from . import numba_jit as _numba_jit  # noqa: E402,F401

__all__ = [
    "DISPATCH_KERNELS",
    "Backend",
    "BackendFallbackWarning",
    "KernelSet",
    "available_backends",
    "backend_names",
    "current_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_backend",
]
