"""The ``cnative`` backend: C translations of the trial-execution kernels.

The reference hot path (:func:`repro.core.kernels.run_trials_sequential`)
is an interpreted python loop over a ``memoryview``; this module
translates that loop — byte for byte the same state transitions — into
a small C library compiled once per source digest with the system C
compiler and loaded through ``ctypes``.  No third-party build machinery
is involved: the build is ``cc -O3 -shared -fPIC`` on a single
translation unit, cached on disk under a sha256 of the source, so the
compile cost is paid once per machine.

Bit-identity
------------
Each wrapper is declared (via ``@kernel(twin=...)``) a twin of its
NumPy reference and must be **bit-identical** to it on contract-valid
inputs — the differential suite in ``tests/test_backends.py`` enforces
this with exact array equality.  The C core executes trials strictly
one at a time, which reproduces every reference kernel exactly:

* ``run_trials_sequential`` — same semantics by construction (the C
  loop mirrors the python loop over :func:`seq_tables`).
* ``run_trials_batch`` / ``execute_type_everywhere`` — their contracts
  require pairwise conflict-free sites, under which the simultaneous
  scatter is *defined* to equal sequential execution in any order
  (disjoint footprints commute — the partition non-overlap theorem).
* ``run_trials_batch_with_duplicates`` — documented to equal
  sequential execution on its valid inputs (occurrence rounds preserve
  per-site order; distinct sites commute).
* ``run_trials_stacked`` — per-replica conflict-free batches on
  disjoint replica rows; sequential execution with a per-trial row
  offset is an admissible ordering.
* ``run_trials_interleaved`` — documented bit-identical to running
  each replica through ``run_trials_sequential``; the C twin does
  exactly that (``window`` is a performance knob only and is ignored).

All randomness is drawn by the engines *before* these kernels run, so
the backend cannot perturb RNG streams (draw-parity is asserted
through ``CountingGenerator`` in the differential suite).

Safety
------
The wrappers validate everything the C code would otherwise trust:
dtype/contiguity of the state and table arrays, equal stream lengths,
and site/type bounds.  Inputs the C core cannot represent (e.g. a
non-contiguous state view) fall back to the NumPy reference rather
than fail — per-call graceful degradation, mirroring the registry's
per-backend fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core import kernels as _ref
from ..core.compiled import CompiledModel
from ..core.kernels import _table_key
from ..lint.contracts import kernel
from .registry import Backend, register_backend

__all__ = [
    "CNativeBackend",
    "c_execute_type_everywhere",
    "c_run_trials_batch",
    "c_run_trials_batch_with_duplicates",
    "c_run_trials_interleaved",
    "c_run_trials_sequential",
    "c_run_trials_stacked",
    "cnative_available",
    "cnative_tables",
    "library_path",
]

#: cache-dir override for the compiled shared object
CACHE_ENV = "REPRO_CNATIVE_CACHE"

_C_SOURCE = r"""
#include <stdint.h>

/* Execute a trial stream strictly one trial at a time against a flat
 * uint8 state.  Tables are padded per-type: maps (T, C, N) int64,
 * srcs/tgts (T, C) uint8, nch (T,) int32 actual change counts.
 * counts (T,) int64 and rec (n_trials * 3) int64 may be NULL.
 * Returns the number of executed trials. */
int64_t repro_run_trials(
    uint8_t *state,
    const int64_t *maps,
    const uint8_t *srcs,
    const uint8_t *tgts,
    const int32_t *nch,
    int64_t c_max,
    int64_t n_sites,
    const int64_t *sites,
    const int64_t *types,
    int64_t n_trials,
    int64_t *counts,
    int64_t *rec)
{
    int64_t n_exec = 0;
    for (int64_t i = 0; i < n_trials; ++i) {
        const int64_t s = sites[i];
        const int64_t t = types[i];
        const int64_t *tm = maps + t * c_max * n_sites;
        const uint8_t *ts = srcs + t * c_max;
        const int32_t nc = nch[t];
        int32_t c = 0;
        for (; c < nc; ++c)
            if (state[tm[c * n_sites + s]] != ts[c])
                break;
        if (c != nc)
            continue;
        const uint8_t *tt = tgts + t * c_max;
        for (c = 0; c < nc; ++c)
            state[tm[c * n_sites + s]] = tt[c];
        if (counts)
            counts[t] += 1;
        if (rec) {
            int64_t *r = rec + 3 * n_exec;
            r[0] = i;
            r[1] = t;
            r[2] = s;
        }
        ++n_exec;
    }
    return n_exec;
}

/* Stacked variant: states is (R, N) flattened; each trial carries a
 * replica row, counts is (R, T) int64 or NULL. */
int64_t repro_run_trials_stacked(
    uint8_t *states,
    const int64_t *maps,
    const uint8_t *srcs,
    const uint8_t *tgts,
    const int32_t *nch,
    int64_t c_max,
    int64_t n_sites,
    const int64_t *reps,
    const int64_t *sites,
    const int64_t *types,
    int64_t n_trials,
    int64_t *counts,
    int64_t n_types)
{
    int64_t n_exec = 0;
    for (int64_t i = 0; i < n_trials; ++i) {
        uint8_t *state = states + reps[i] * n_sites;
        const int64_t s = sites[i];
        const int64_t t = types[i];
        const int64_t *tm = maps + t * c_max * n_sites;
        const uint8_t *ts = srcs + t * c_max;
        const int32_t nc = nch[t];
        int32_t c = 0;
        for (; c < nc; ++c)
            if (state[tm[c * n_sites + s]] != ts[c])
                break;
        if (c != nc)
            continue;
        const uint8_t *tt = tgts + t * c_max;
        for (c = 0; c < nc; ++c)
            state[tm[c * n_sites + s]] = tt[c];
        if (counts)
            counts[reps[i] * n_types + t] += 1;
        ++n_exec;
    }
    return n_exec;
}

/* Interleaved variant: per-replica streams sites/types (R, n_blk),
 * half-open ranges [starts[r], stops[r]).  Exact sequential semantics
 * per replica (replica rows are disjoint, so replica order is free). */
int64_t repro_run_interleaved(
    uint8_t *states,
    const int64_t *maps,
    const uint8_t *srcs,
    const uint8_t *tgts,
    const int32_t *nch,
    int64_t c_max,
    int64_t n_sites,
    const int64_t *sites,
    const int64_t *types,
    const int64_t *starts,
    const int64_t *stops,
    int64_t n_reps,
    int64_t n_blk,
    int64_t *counts,
    int64_t n_types)
{
    int64_t n_exec = 0;
    for (int64_t r = 0; r < n_reps; ++r) {
        uint8_t *state = states + r * n_sites;
        const int64_t *rsites = sites + r * n_blk;
        const int64_t *rtypes = types + r * n_blk;
        int64_t *rcounts = counts ? counts + r * n_types : (int64_t *)0;
        for (int64_t i = starts[r]; i < stops[r]; ++i) {
            const int64_t s = rsites[i];
            const int64_t t = rtypes[i];
            const int64_t *tm = maps + t * c_max * n_sites;
            const uint8_t *ts = srcs + t * c_max;
            const int32_t nc = nch[t];
            int32_t c = 0;
            for (; c < nc; ++c)
                if (state[tm[c * n_sites + s]] != ts[c])
                    break;
            if (c != nc)
                continue;
            const uint8_t *tt = tgts + t * c_max;
            for (c = 0; c < nc; ++c)
                state[tm[c * n_sites + s]] = tt[c];
            if (rcounts)
                rcounts[t] += 1;
            ++n_exec;
        }
    }
    return n_exec;
}
"""


# ----------------------------------------------------------------------
# build + load
# ----------------------------------------------------------------------
_LIB_SENTINEL = object()
_lib_cache: "ctypes.CDLL | None | object" = _LIB_SENTINEL


def _cache_dir() -> str:
    override = os.environ.get(CACHE_ENV)
    if override:
        return override
    uid = f"-{os.getuid()}" if hasattr(os, "getuid") else ""
    return os.path.join(tempfile.gettempdir(), f"repro-cnative{uid}")


def _find_compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


_compiler_id_cache: "str | None" = None


def _compiler_identity() -> str:
    """First line of ``cc --version`` for the compiler we would use.

    Folded into the ``.so`` cache digest so a toolchain upgrade (same
    source, new compiler) rebuilds instead of serving a stale binary.
    A host with no compiler still gets a stable identity, so a cached
    artifact built elsewhere remains loadable.
    """
    global _compiler_id_cache
    if _compiler_id_cache is None:
        cc = _find_compiler()
        ident = "no-cc"
        if cc is not None:
            try:
                proc = subprocess.run(
                    [cc, "--version"], capture_output=True, timeout=10
                )
                first = proc.stdout.decode(errors="replace").splitlines()
                ident = f"{cc} {first[0].strip()}" if first else cc
            except (OSError, subprocess.SubprocessError):
                ident = cc
        _compiler_id_cache = ident
    return _compiler_id_cache


def library_path() -> str:
    """Where the compiled shared object lives (may not exist yet)."""
    payload = _C_SOURCE + "\0" + _compiler_identity()
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return os.path.join(_cache_dir(), f"repro_cnative_{digest}.so")


#: entry point -> (parameter kinds, return kind); the single source of
#: truth for the ctypes declarations, and what the native lint pass
#: (``repro lint --native``) proves consistent with the parsed C
#: signatures and the kernel specs (SR060/SR061).
CTYPES_SIGNATURES: "dict[str, tuple[tuple[str, ...], str]]" = {
    "repro_run_trials": (
        ("ptr", "ptr", "ptr", "ptr", "ptr", "i64", "i64", "ptr", "ptr",
         "i64", "ptr", "ptr"),
        "i64",
    ),
    "repro_run_trials_stacked": (
        ("ptr", "ptr", "ptr", "ptr", "ptr", "i64", "i64", "ptr", "ptr",
         "ptr", "i64", "ptr", "i64"),
        "i64",
    ),
    "repro_run_interleaved": (
        ("ptr", "ptr", "ptr", "ptr", "ptr", "i64", "i64", "ptr", "ptr",
         "ptr", "ptr", "i64", "i64", "ptr", "i64"),
        "i64",
    ),
}

_CTYPES_KINDS = {"ptr": ctypes.c_void_p, "i64": ctypes.c_int64}


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    for name, (kinds, ret) in CTYPES_SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = [_CTYPES_KINDS[k] for k in kinds]
        fn.restype = _CTYPES_KINDS[ret]
    return lib


def _build() -> "ctypes.CDLL | None":
    lib_path = library_path()
    if os.path.exists(lib_path):
        try:
            return _declare(ctypes.CDLL(lib_path))
        except OSError:
            pass  # stale/corrupt artifact: rebuild below
    cc = _find_compiler()
    if cc is None:
        return None
    cache = os.path.dirname(lib_path)
    try:
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, f"repro_cnative_{os.getpid()}.c")
        tmp_path = lib_path + f".{os.getpid()}.tmp"
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        proc = subprocess.run(
            [cc, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return None
        # atomic publish: concurrent builders race benignly
        os.replace(tmp_path, lib_path)
        _evict_stale(cache, os.path.basename(lib_path))
        return _declare(ctypes.CDLL(lib_path))
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        for leftover in (locals().get("src_path"), locals().get("tmp_path")):
            if leftover and os.path.exists(leftover):
                try:
                    os.remove(leftover)
                except OSError:
                    pass


def _evict_stale(cache: str, keep: str) -> None:
    """Drop superseded artifacts (old source or old toolchain) —
    best-effort: a shared cache dir may race, and that is fine."""
    try:
        for entry in os.listdir(cache):
            if (
                entry.startswith("repro_cnative_")
                and entry.endswith(".so")
                and entry != keep
            ):
                try:
                    os.remove(os.path.join(cache, entry))
                except OSError:
                    pass
    except OSError:
        pass


def _lib() -> "ctypes.CDLL | None":
    """The loaded C library, building it on first use (memoised)."""
    global _lib_cache
    if _lib_cache is _LIB_SENTINEL:
        _lib_cache = _build()
    return _lib_cache  # type: ignore[return-value]


def cnative_available() -> bool:
    """Can the C tier run here (compiler or cached artifact present)?"""
    return _lib() is not None


# ----------------------------------------------------------------------
# packed tables
# ----------------------------------------------------------------------

@kernel(reads=("compiled",), caches=("compiled",))
def cnative_tables(
    compiled: CompiledModel,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Padded per-type ``(maps, srcs, tgts, nch)`` in C layout.

    ``maps`` is ``(T, C, N)`` int64, ``srcs``/``tgts`` are ``(T, C)``
    uint8 and ``nch`` is ``(T,)`` int32 with the *actual* change count
    per type — the C loops execute exactly ``nch[t]`` changes in
    declaration order, so padding never enters the semantics.  Cached
    on the compiled model, keyed like
    :func:`repro.core.kernels.seq_tables`.
    """
    key = _table_key(compiled)
    cached = getattr(compiled, "_cnative_tables", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    n_types = len(compiled.types)
    c_max = max(len(ct.maps) for ct in compiled.types)
    n = compiled.n_sites
    maps = np.zeros((n_types, c_max, n), dtype=np.int64)
    srcs = np.zeros((n_types, c_max), dtype=np.uint8)
    tgts = np.zeros((n_types, c_max), dtype=np.uint8)
    nch = np.zeros(n_types, dtype=np.int32)
    for t, ct in enumerate(compiled.types):
        nch[t] = len(ct.maps)
        for c, m in enumerate(ct.maps):
            maps[t, c] = m
            srcs[t, c] = ct.srcs[c]
            tgts[t, c] = ct.tgts[c]
    tables = (maps, srcs, tgts, nch)
    compiled._cnative_tables = (key, tables)  # type: ignore[attr-defined]
    return tables


# ----------------------------------------------------------------------
# call helpers
# ----------------------------------------------------------------------

def _as_stream(values: "np.ndarray | Sequence[int]") -> np.ndarray:
    return np.ascontiguousarray(np.asarray(values), dtype=np.int64)


def _stream_valid(
    compiled: CompiledModel, sites: np.ndarray, types: np.ndarray
) -> bool:
    """Are all trial indices within table bounds (C trusts them)?"""
    if sites.size == 0:
        return True
    n_types = len(compiled.types)
    return bool(
        (sites >= 0).all()
        and (sites < compiled.n_sites).all()
        and (types >= 0).all()
        and (types < n_types).all()
    )


def _counts_buffer(
    counts: "np.ndarray | None",
) -> "tuple[np.ndarray | None, bool]":
    """A C-compatible int64 accumulator for ``counts``.

    Returns ``(buffer, direct)``: when ``direct`` the caller's array is
    written in place; otherwise the buffer must be added back after the
    call (non-contiguous or non-int64 caller arrays).
    """
    if counts is None:
        return None, True
    if counts.dtype == np.int64 and counts.flags.c_contiguous:
        return counts, True
    return np.zeros(counts.shape, dtype=np.int64), False


def _ptr(arr: "np.ndarray | None") -> "int | None":
    return None if arr is None else arr.ctypes.data


def _run_stream(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None",
    record: "list | None",
) -> int:
    """Shared driver: one trial stream against one flat state, in C."""
    lib = _lib()
    assert lib is not None  # callers guard with _c_usable
    maps, srcs, tgts, nch = cnative_tables(compiled)
    cbuf, direct = _counts_buffer(counts)
    rec = None if record is None else np.empty((sites.size, 3), dtype=np.int64)
    n_exec = int(
        lib.repro_run_trials(
            state.ctypes.data,
            maps.ctypes.data,
            srcs.ctypes.data,
            tgts.ctypes.data,
            nch.ctypes.data,
            maps.shape[1],
            compiled.n_sites,
            sites.ctypes.data,
            types.ctypes.data,
            sites.size,
            _ptr(cbuf),
            _ptr(rec),
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    if record is not None and rec is not None and n_exec:
        record.extend(
            (int(i), int(t), int(s)) for i, t, s in rec[:n_exec].tolist()
        )
    return n_exec


def _c_usable(state: np.ndarray, *streams: np.ndarray) -> bool:
    """Can the C core act directly on these arrays?"""
    if _lib() is None:
        return False
    if state.dtype != np.uint8 or not state.flags.c_contiguous:
        return False
    return all(s.flags.c_contiguous for s in streams)


# ----------------------------------------------------------------------
# the compiled kernels (each a declared twin of its NumPy reference)
# ----------------------------------------------------------------------

@kernel(
    reads=("sites", "types"),
    writes=("state", "counts", "record"),
    caches=("compiled",),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_sequential",
)
def c_run_trials_sequential(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: "np.ndarray | Sequence[int]",
    types: "np.ndarray | Sequence[int]",
    counts: "np.ndarray | None" = None,
    record: "list | None" = None,
) -> int:
    """C twin of :func:`repro.core.kernels.run_trials_sequential`."""
    s_arr = _as_stream(sites)
    t_arr = _as_stream(types)
    if s_arr.size != t_arr.size:
        raise ValueError("sites and types must have equal length")
    if not _c_usable(state, s_arr, t_arr) or not _stream_valid(
        compiled, s_arr, t_arr
    ):
        return _ref.run_trials_sequential(
            state, compiled, sites, types, counts=counts, record=record
        )
    return _run_stream(state, compiled, s_arr, t_arr, counts, record)


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    disjoint=("sites",),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_batch",
)
def c_run_trials_batch(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """C twin of :func:`repro.core.kernels.run_trials_batch`.

    On the contract's conflict-free inputs the simultaneous batch
    equals sequential execution in any order, so the C sequential loop
    is bit-identical to the vectorised reference.
    """
    s_arr = _as_stream(sites)
    t_arr = _as_stream(types)
    if np.asarray(sites).shape != np.asarray(types).shape:
        raise ValueError("sites and types must have equal length")
    if s_arr.size == 0:
        return 0
    if not _c_usable(state, s_arr, t_arr) or not _stream_valid(
        compiled, s_arr, t_arr
    ):
        return _ref.run_trials_batch(state, compiled, sites, types, counts)
    return _run_stream(state, compiled, s_arr, t_arr, counts, None)


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    dtypes={"state": "uint8", "counts": "int64"},
    twin="run_trials_batch_with_duplicates",
)
def c_run_trials_batch_with_duplicates(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """C twin of occurrence-batched execution (equals sequential)."""
    s_arr = _as_stream(sites)
    t_arr = _as_stream(types)
    if s_arr.size == 0:
        return 0
    if s_arr.size != t_arr.size or not _c_usable(
        state, s_arr, t_arr
    ) or not _stream_valid(compiled, s_arr, t_arr):
        return _ref.run_trials_batch_with_duplicates(
            state, compiled, sites, types, counts
        )
    return _run_stream(state, compiled, s_arr, t_arr, counts, None)


@kernel(
    reads=("reps", "sites", "types"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={"states": ("R", "N"), "counts": ("R", "T")},
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_stacked",
)
def c_run_trials_stacked(
    states: np.ndarray,
    compiled: CompiledModel,
    reps: np.ndarray,
    sites: np.ndarray,
    types: np.ndarray,
    counts: "np.ndarray | None" = None,
) -> int:
    """C twin of :func:`repro.core.kernels.run_trials_stacked`.

    Replica rows are disjoint and within-replica sites conflict-free,
    so strict trial order (with a per-trial row offset) is one of the
    equivalent orderings the batch contract admits.
    """
    r_arr = _as_stream(reps)
    s_arr = _as_stream(sites)
    t_arr = _as_stream(types)
    if s_arr.size == 0:
        return 0
    n_reps = states.shape[0] if states.ndim == 2 else 0
    ok = (
        r_arr.size == s_arr.size == t_arr.size
        and states.ndim == 2
        and _c_usable(states, r_arr, s_arr, t_arr)
        and _stream_valid(compiled, s_arr, t_arr)
        and bool((r_arr >= 0).all() and (r_arr < n_reps).all())
    )
    if not ok:
        return _ref.run_trials_stacked(
            states, compiled, reps, sites, types, counts
        )
    lib = _lib()
    assert lib is not None
    maps, srcs, tgts, nch = cnative_tables(compiled)
    cbuf, direct = _counts_buffer(counts)
    n_exec = int(
        lib.repro_run_trials_stacked(
            states.ctypes.data,
            maps.ctypes.data,
            srcs.ctypes.data,
            tgts.ctypes.data,
            nch.ctypes.data,
            maps.shape[1],
            compiled.n_sites,
            r_arr.ctypes.data,
            s_arr.ctypes.data,
            t_arr.ctypes.data,
            s_arr.size,
            _ptr(cbuf),
            len(compiled.types),
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    return n_exec


@kernel(
    reads=("sites", "types", "starts", "stops"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={
        "states": ("R", "N"),
        "sites": ("R", "B"),
        "types": ("R", "B"),
        "counts": ("R", "T"),
    },
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_interleaved",
)
def c_run_trials_interleaved(
    states: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    counts: "np.ndarray | None" = None,
    window: int = 16,
) -> int:
    """C twin of :func:`repro.core.kernels.run_trials_interleaved`.

    The reference is bit-identical to per-replica sequential execution
    (its windowing only controls concurrency); the C twin runs each
    replica's ``[starts[r], stops[r])`` range sequentially.  ``window``
    is accepted for signature parity and ignored.
    """
    del window  # concurrency knob of the vectorised reference only
    s_arr = _as_stream(sites)
    t_arr = _as_stream(types)
    start_arr = _as_stream(starts)
    stop_arr = _as_stream(stops)
    ok = (
        states.ndim == 2
        and s_arr.ndim == 2
        and s_arr.shape == t_arr.shape
        and s_arr.shape[0] == states.shape[0]
        and start_arr.size == stop_arr.size == states.shape[0]
        and _c_usable(states, s_arr, t_arr, start_arr, stop_arr)
        and _stream_valid(compiled, s_arr.ravel(), t_arr.ravel())
        and bool(
            (start_arr >= 0).all()
            and (stop_arr <= s_arr.shape[1]).all()
        )
    )
    if not ok:
        return _ref.run_trials_interleaved(
            states, compiled, sites, types, starts, stops, counts=counts
        )
    lib = _lib()
    assert lib is not None
    maps, srcs, tgts, nch = cnative_tables(compiled)
    cbuf, direct = _counts_buffer(counts)
    n_exec = int(
        lib.repro_run_interleaved(
            states.ctypes.data,
            maps.ctypes.data,
            srcs.ctypes.data,
            tgts.ctypes.data,
            nch.ctypes.data,
            maps.shape[1],
            compiled.n_sites,
            s_arr.ctypes.data,
            t_arr.ctypes.data,
            start_arr.ctypes.data,
            stop_arr.ctypes.data,
            states.shape[0],
            s_arr.shape[1],
            _ptr(cbuf),
            len(compiled.types),
        )
    )
    if not direct and counts is not None and cbuf is not None:
        counts += cbuf
    return n_exec


@kernel(
    reads=("type_index", "sites"),
    writes=("state",),
    dtypes={"state": "uint8"},
    twin="execute_type_everywhere",
)
def c_execute_type_everywhere(
    state: np.ndarray,
    compiled: CompiledModel,
    type_index: int,
    sites: np.ndarray,
) -> int:
    """C twin of :func:`repro.core.kernels.execute_type_everywhere`."""
    compiled.types[type_index]  # mirror the reference's IndexError
    s_arr = _as_stream(sites)
    t_arr = np.full(s_arr.size, int(type_index), dtype=np.int64)
    if not _c_usable(state, s_arr) or not _stream_valid(
        compiled, s_arr, t_arr
    ):
        return _ref.execute_type_everywhere(state, compiled, type_index, sites)
    return _run_stream(state, compiled, s_arr, t_arr, None, None)


class CNativeBackend(Backend):
    """Tier-1 compiled backend: C via the system compiler + ctypes."""

    name = "cnative"
    tier = 1

    def available(self) -> bool:
        return cnative_available()

    def kernels(self) -> Mapping[str, Callable]:
        return {
            "run_trials_sequential": c_run_trials_sequential,
            "run_trials_batch": c_run_trials_batch,
            "run_trials_batch_with_duplicates": (
                c_run_trials_batch_with_duplicates
            ),
            "run_trials_stacked": c_run_trials_stacked,
            "run_trials_interleaved": c_run_trials_interleaved,
            "execute_type_everywhere": c_execute_type_everywhere,
        }


#: escape hatch: skip the registration self-check (emergencies only)
LINT_SKIP_ENV = "REPRO_NATIVE_LINT_SKIP"


def cnative_self_check() -> "list[str]":
    """Statically verify this module's own C source before registering.

    Runs the native lint pass (``repro.lint.native``) over
    ``_C_SOURCE`` and ``CTYPES_SIGNATURES``; returns the error messages
    (empty when the translation unit is proven safe).  A crash in the
    verifier itself is not a verdict — the backend then registers as
    usual and the full ``repro lint --native`` run surfaces the
    problem.
    """
    try:
        from ..lint.native.verify import verify_c_translation_unit
        report = verify_c_translation_unit(_C_SOURCE, CTYPES_SIGNATURES)
        return [d.render() for d in report.errors]
    except Exception:  # verifier bug must not take the backend down
        return []


if os.environ.get(LINT_SKIP_ENV):
    import warnings

    warnings.warn(
        f"{LINT_SKIP_ENV} is set: registering the cnative backend "
        f"WITHOUT its native lint self-check — kernels run unverified",
        RuntimeWarning,
        stacklevel=2,
    )
    register_backend(CNativeBackend())
else:
    _lint_errors = cnative_self_check()
    if _lint_errors:
        import warnings

        warnings.warn(
            "cnative backend refused to register: its C source fails "
            "the native lint self-check (set "
            f"{LINT_SKIP_ENV}=1 to override):\n  "
            + "\n  ".join(_lint_errors),
            RuntimeWarning,
            stacklevel=2,
        )
    else:
        register_backend(CNativeBackend())
