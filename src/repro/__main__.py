"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproduction experiments (tables/figures) and algorithms.
``run <experiment-id|run-id|scenario> [--metrics] [--backend NAME]``
    Run one experiment by registry id and print its report
    (e.g. ``python -m repro run fig4``); ``--metrics`` appends the
    run's collected counters/histograms (see :mod:`repro.obs`);
    ``--backend`` selects the kernel backend (numpy/cnative/numba/auto,
    see :mod:`repro.backends`) — an execution detail only, results are
    bit-identical across backends.  The argument may also name a
    resilience run (``zgb-rsm`` ...), a zoo scenario (``zgb``,
    ``no-co`` ... — see ``scenarios``) or a scenario file
    (``path/to/scenario.toml``); scenario runs accept ``--sweep`` and
    the checkpoint/resume options.
``sweep <scenario>... [--jobs N] [--journal DIR] [--resume]``
    Crash-safe batch orchestration of scenario sweeps: expand the
    declared ``[sweep]`` grids into a job set, execute it on supervised
    worker processes with per-job deadlines and a retry/backoff/
    respawn/serial recovery ladder, and journal every state transition
    write-ahead (``repro.jobs/1``) so a killed campaign resumes with
    ``--resume`` — completed points are cache hits (see
    :mod:`repro.jobs`).
``scenarios [--check] [--gates [NAME ...]]``
    List the shipped scenario zoo; ``--check`` preflight-lints every
    shipped scenario file, ``--gates`` runs the declared acceptance
    gates (lint, fingerprint, mean-field) — both CI gates.
``algorithms``
    Print the algorithm taxonomy table.
``bench [--engines ...] [--backend NAME] [--json] [--check FILE ...]``
    Small instrumented benchmark runs with machine-readable telemetry:
    ``--json`` writes schema-validated ``BENCH_<engine>.json`` reports
    (``BENCH_<engine>-<backend>.json`` for non-numpy backends),
    ``--check`` validates existing report files (the CI gate).
``lint [--model NAME] [--tiling M:C0,C1] [--shape LxM] [--kernels] [--native] [--json] [--strict]``
    Static verification: model sanity, symbolic partition race proofs,
    RNG draw audit, the kernel-level scatter-aliasing/effect-contract
    pass (``--kernels``) and the native-tier C/numba verifier
    (``--native``, SR060-SR064) — see :mod:`repro.lint`;
    ``--list-codes`` prints the full SR registry.  Exit code 1 on
    findings — the CI gate.
``info``
    Package/version/paper information.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    import repro.experiments as experiments
    from repro.resilience.runs import RUNS
    from repro.scenario import scenario_registry

    print("experiments (python -m repro run <id>):")
    for key in sorted(experiments.REGISTRY):
        module, _ = experiments.REGISTRY[key]
        # docstring-less modules get an empty summary, not a crash
        doc_lines = (module.__doc__ or "").strip().splitlines()
        doc = doc_lines[0] if doc_lines else ""
        print(f"  {key:<22s} {doc}")
    print()
    print("resilience runs (checkpoint/resume-capable):")
    for key in sorted(RUNS):
        _, doc = RUNS[key]
        print(f"  {key:<22s} {doc}")
    print()
    print("scenarios (declarative TOML; details: python -m repro scenarios):")
    for key, spec in sorted(scenario_registry().items()):
        print(f"  {key:<22s} {spec.description}")
    return 0


def _cmd_run(args) -> int:
    from contextlib import ExitStack

    import repro.experiments as experiments
    from repro.resilience.runs import RUNS, run_resilience

    with ExitStack() as stack:
        if args.backend is not None:
            from repro.backends import backend_names, resolve_backend, use_backend

            if args.backend != "auto" and args.backend not in backend_names():
                print(
                    f"unknown backend {args.backend!r}; "
                    f"known: {sorted(backend_names()) + ['auto']}",
                    file=sys.stderr,
                )
                return 2
            stack.enter_context(use_backend(resolve_backend(args.backend)))
        return _cmd_run_inner(args, experiments, RUNS, run_resilience)


def _cmd_run_inner(args, experiments, RUNS, run_resilience) -> int:

    if args.experiment in RUNS:
        from repro.resilience.checkpoint import ResilienceError
        from repro.resilience.runs import DEFAULT_UNTIL

        if args.sweep:
            print(
                f"--sweep only applies to scenario runs, not resilience run "
                f"{args.experiment!r}",
                file=sys.stderr,
            )
            return 2
        try:
            return run_resilience(
                args.experiment,
                seed=args.seed if args.seed is not None else 0,
                until=args.until if args.until is not None else DEFAULT_UNTIL,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                checkpoint_seconds=args.checkpoint_seconds,
                resume=args.resume,
            )
        except ResilienceError as exc:
            print(exc, file=sys.stderr)
            return 2

    from repro.scenario import ScenarioError, is_scenario_ref

    if is_scenario_ref(args.experiment):
        from repro.lint.engine import LintError
        from repro.resilience.checkpoint import ResilienceError
        from repro.scenario import find_scenario, run_scenario

        try:
            spec = find_scenario(args.experiment)
            return run_scenario(
                spec,
                seed=args.seed,
                until=args.until,
                backend=args.backend,  # explicit CLI choice wins over the spec
                sweep=args.sweep,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                checkpoint_seconds=args.checkpoint_seconds,
                resume=args.resume,
            )
        except (ScenarioError, LintError, ResilienceError) as exc:
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2

    # all four checkpoint/resume flags are meaningless for the report
    # experiments — reject each of them consistently instead of
    # silently ignoring the cadence flags
    checkpoint_flags = {
        "--checkpoint-dir": args.checkpoint_dir,
        "--checkpoint-every": args.checkpoint_every,
        "--checkpoint-seconds": args.checkpoint_seconds,
        "--resume": args.resume,
    }
    offending = sorted(k for k, v in checkpoint_flags.items() if v is not None)
    if offending:
        print(
            f"{', '.join(offending)} only apply to resilience runs "
            f"({', '.join(sorted(RUNS))}) and scenario runs, not experiment "
            f"{args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    if args.sweep:
        print(
            f"--sweep only applies to scenario runs, not experiment "
            f"{args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    if args.metrics:
        from repro.obs import MetricsCollector, format_metrics, use_metrics

        collector = MetricsCollector()
        try:
            with use_metrics(collector):
                print(experiments.report(args.experiment))
        except KeyError as exc:
            # exc.args[0] is the clean message; printing the KeyError
            # itself would wrap it in stray quotes (repr)
            print(exc.args[0], file=sys.stderr)
            return 2
        print()
        print(format_metrics(collector.snapshot()))
        return 0
    try:
        print(experiments.report(args.experiment))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return 0


def _cmd_scenarios(args) -> int:
    from repro.lint.engine import LintError
    from repro.scenario import (
        ScenarioError,
        lint_scenario,
        run_gates,
        scenario_registry,
    )

    registry = scenario_registry()
    if args.check:
        status = 0
        for name in sorted(registry):
            spec = registry[name]
            try:
                lint_scenario(spec)
            except (LintError, ScenarioError) as exc:
                msg = exc.args[0] if exc.args else exc
                print(f"FAIL {name}: {msg}", file=sys.stderr)
                status = 1
            else:
                print(f"ok   {name} ({spec.source}) digest {spec.short_digest()}")
        return status
    if args.gates is not None:
        names = args.gates or sorted(registry)
        unknown = sorted(set(names) - set(registry))
        if unknown:
            print(
                f"unknown scenario(s) {unknown}; known: {sorted(registry)}",
                file=sys.stderr,
            )
            return 2
        status = 0
        for name in names:
            for result in run_gates(registry[name]):
                print(f"{name:<20s} {result.render()}")
                if not result.ok:
                    status = 1
        return status
    print("scenarios (python -m repro run <name|file.toml>):")
    for name in sorted(registry):
        spec = registry[name]
        lattice = "x".join(str(s) for s in spec.lattice_shape)
        print(
            f"  {name:<20s} {spec.engine.kind:<15s} {lattice:<8s} "
            f"digest {spec.short_digest()}  {spec.description}"
        )
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import run

    return run(args)


def _cmd_sweep(args) -> int:
    from repro.jobs.cli import run

    return run(args)


def _cmd_algorithms(_args) -> int:
    from repro.taxonomy import describe_all

    print(describe_all())
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run

    return run(args)


def _cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__}")
    print(
        "reproduction of: Nedea, Lukkien, Jansen, Hilbers — "
        "'Methods for parallel simulations of surface reactions', "
        "IPPS 2003 (arXiv:physics/0209017)"
    )
    print("see DESIGN.md / EXPERIMENTS.md in the repository root")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="parallel simulation of surface reactions (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduction experiments").set_defaults(
        fn=_cmd_list
    )
    p_run = sub.add_parser("run", help="run one experiment and print its report")
    p_run.add_argument("experiment", help="experiment or resilience run id (see 'list')")
    p_run.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print run metrics (counters/gauges/histograms)",
    )
    p_run.add_argument(
        "--until", type=float, default=None,
        help="simulated-time horizon (resilience/scenario runs only; "
        "default 5, or the scenario's declared horizon)",
    )
    p_run.add_argument(
        "--seed", type=int, default=None,
        help="engine seed (resilience/scenario runs only; default 0, or "
        "the scenario's declared seed)",
    )
    p_run.add_argument(
        "--sweep", action="store_true",
        help="run the scenario's declared [sweep] grid instead of the "
        "base configuration (scenario runs only)",
    )
    p_run.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write repro.ckpt/1 checkpoints into DIR (resilience runs only)",
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, metavar="N",
        help="checkpoint every N step blocks (default 10 when DIR is set)",
    )
    p_run.add_argument(
        "--checkpoint-seconds", type=float, metavar="T",
        help="checkpoint every T wall seconds instead of (or besides) every N steps",
    )
    p_run.add_argument(
        "--resume", nargs="?", const="", metavar="PATH",
        help="resume from a checkpoint file, a directory's newest good "
        "checkpoint, or (bare) from --checkpoint-dir",
    )
    p_run.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend for the run (numpy, cnative, numba, auto); "
        "default: the ambient selection.  Backends are an execution "
        "detail — trajectories and checkpoints are bit-identical across "
        "them, so a run checkpointed under one backend resumes under "
        "another",
    )
    p_run.set_defaults(fn=_cmd_run)
    from repro.jobs.cli import add_sweep_arguments

    p_sweep = sub.add_parser(
        "sweep",
        help="crash-safe batch sweeps: journaled jobs on supervised workers",
    )
    add_sweep_arguments(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)
    p_scenarios = sub.add_parser(
        "scenarios", help="list/lint/gate the declarative scenario zoo"
    )
    p_scenarios.add_argument(
        "--check",
        action="store_true",
        help="preflight-lint every shipped scenario file (the CI gate)",
    )
    p_scenarios.add_argument(
        "--gates",
        nargs="*",
        metavar="NAME",
        default=None,
        help="run the declared acceptance gates (lint, fingerprint, "
        "mean-field) for the named scenarios (default: all)",
    )
    p_scenarios.set_defaults(fn=_cmd_scenarios)
    sub.add_parser("algorithms", help="print the algorithm taxonomy").set_defaults(
        fn=_cmd_algorithms
    )
    from repro.lint.cli import add_lint_arguments

    p_lint = sub.add_parser(
        "lint", help="static conflict/race proofs (models, partitions, kernels)"
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=_cmd_lint)
    from repro.obs.bench import add_bench_arguments

    p_bench = sub.add_parser(
        "bench", help="instrumented benchmarks with machine-readable telemetry"
    )
    add_bench_arguments(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)
    sub.add_parser("info", help="package information").set_defaults(fn=_cmd_info)
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # output piped into head/less and closed
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
