"""repro — parallel simulation of surface reactions.

A production-quality reproduction of

    S.V. Nedea, J.J. Lukkien, A.P.J. Jansen, P.A.J. Hilbers,
    "Methods for parallel simulations of surface reactions",
    IPPS 2003 (arXiv:physics/0209017).

The package implements the full stack the paper builds on:

* :mod:`repro.core` — lattices, species, reaction types, compiled
  models, execution kernels;
* :mod:`repro.dmc` — Dynamic Monte Carlo simulators (RSM — the paper's
  baseline — plus VSSM, FRM) and the exact Master Equation;
* :mod:`repro.ca` — cellular-automaton simulators: NDCA, synchronous
  CA with conflict detection, Block CA, and the paper's contributions:
  PNDCA, L-PNDCA and the reaction-type-partitioned CA;
* :mod:`repro.partition` — conflict-free partitions: validation,
  colouring, modular tilings (the five-chunk Fig. 4 partition),
  reaction-type splits (Table II);
* :mod:`repro.parallel` — the simulated parallel machine (Fig. 7), a
  real shared-memory chunk executor, and Segers-style domain
  decomposition;
* :mod:`repro.models` — ZGB/Ziff CO oxidation (Table I), the
  oscillatory Pt(100) reconstruction model (Figs. 8-10), plus
  diffusion / Ising / single-file probe models;
* :mod:`repro.analysis` — waiting-time correctness criteria,
  oscillation analysis, curve comparison, ensembles;
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart::

    from repro import Lattice, RSM, CoverageObserver
    from repro.models import ziff_model, empty_surface

    model = ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0)
    lattice = Lattice((100, 100))
    sim = RSM(model, lattice, seed=42,
              observers=[CoverageObserver(interval=1.0)])
    result = sim.run(until=50.0)
    print(result.summary())
"""

from .ca import LPNDCA, NDCA, PNDCA, BlockCA, SynchronousCA, TypePartitionedCA
from .core import (
    Change,
    CompiledModel,
    Configuration,
    EventTrace,
    Lattice,
    Model,
    ModelBuilder,
    ReactionType,
    SpeciesRegistry,
    arrhenius,
    conserved_quantities,
    oriented,
)
from .dmc import (
    FRM,
    RSM,
    VSSM,
    CoverageObserver,
    MasterEquation,
    SimulationResult,
    SnapshotObserver,
)
from .partition import (
    Partition,
    checkerboard,
    five_chunk_family,
    five_chunk_partition,
    find_modular_tiling,
    greedy_partition,
    split_by_orientation,
)
from .taxonomy import list_algorithms, make_simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Lattice",
    "SpeciesRegistry",
    "Change",
    "ReactionType",
    "oriented",
    "Model",
    "CompiledModel",
    "Configuration",
    "EventTrace",
    "arrhenius",
    # dmc
    "RSM",
    "VSSM",
    "FRM",
    "MasterEquation",
    "CoverageObserver",
    "SnapshotObserver",
    "SimulationResult",
    # ca
    "NDCA",
    "SynchronousCA",
    "BlockCA",
    "PNDCA",
    "LPNDCA",
    "TypePartitionedCA",
    # partition
    "Partition",
    "five_chunk_partition",
    "five_chunk_family",
    "checkerboard",
    "greedy_partition",
    "find_modular_tiling",
    "split_by_orientation",
    # extras
    "ModelBuilder",
    "conserved_quantities",
    "make_simulator",
    "list_algorithms",
]
