"""The ``repro.jobs/1`` write-ahead journal: append-only, CRC-checked JSONL.

Every state transition of a batch campaign (submit, start, done, fail,
degrade, drain) is one JSON line appended to ``journal.jsonl`` *before*
the orchestrator acts on it — the write-ahead discipline that makes a
killed campaign resumable.  Each line is a small envelope::

    {"crc32": <int>, "payload": {...}, "schema": "repro.jobs/1"}

with the CRC-32 computed over the canonical (sorted, compact) payload
JSON, exactly as ``repro.ckpt/1`` does for checkpoints.  Lines are
serialised *before* the file is touched and written with a single
``write`` call plus flush (and, under the default fsync policy, an
``fsync``), so a crash can damage at most the final line — the *torn
tail*.

Reload (:func:`replay_journal`) distinguishes the two damage shapes:

* a torn **tail** — the last non-empty line fails to parse or
  CRC-validate (a write cut short by the crash).  It is dropped, the
  replay is marked ``torn`` and the last good entry is named, and the
  campaign resumes from the preceding record;
* damage **before** the tail — a flipped byte or truncation inside the
  settled prefix.  That is never a torn write; it raises
  :class:`JournalCorruptError` naming the line, because silently
  dropping settled history would re-run completed (or worse, skip
  incomplete) jobs.

Job identity is :func:`job_key`: a SHA-256/16 over the scenario's
content digest plus the canonical override pairs of one sweep point —
the ``(digest, params, seed)`` cache key of the scenario layer in file
-name-safe form.  Determinism makes every ``done`` record a perfect
cache hit: resuming replays the journal and re-prints the recorded
digest lines bit for bit instead of re-running the points.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "JOBS_SCHEMA",
    "JOURNAL_NAME",
    "JournalError",
    "JournalCorruptError",
    "JournalWriter",
    "JournalReplay",
    "job_key",
    "encode_record",
    "decode_record",
    "replay_journal",
]

#: schema identifier stamped into every journal line
JOBS_SCHEMA = "repro.jobs/1"

#: file name of the journal inside a ``--journal`` directory
JOURNAL_NAME = "journal.jsonl"


class JournalError(RuntimeError):
    """Base class for journal failures (CLI exit code 2)."""


class JournalCorruptError(JournalError):
    """A settled (non-tail) journal line is damaged or malformed."""


def job_key(digest: str, overrides: Mapping[str, Any]) -> str:
    """Stable identity of one sweep point: sha-256/16 of (digest, overrides).

    The same function keys journal records, per-job checkpoint
    subdirectories and the resume cache, so every layer agrees on what
    "the same job" means.
    """
    blob = json.dumps(
        {"digest": digest, "overrides": dict(overrides)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _payload_crc(payload: Mapping[str, Any]) -> int:
    """CRC-32 over the canonical payload JSON (cf. ``repro.ckpt/1``)."""
    blob = json.dumps(
        dict(payload), sort_keys=True, separators=(",", ":")
    ).encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def encode_record(payload: Mapping[str, Any]) -> str:
    """One journal line (no newline): the CRC envelope around ``payload``."""
    return json.dumps(
        {
            "schema": JOBS_SCHEMA,
            "crc32": _payload_crc(payload),
            "payload": dict(payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_record(line: str) -> dict:
    """Parse and CRC-check one journal line; returns the payload.

    Raises :class:`JournalCorruptError` on any damage — JSON that does
    not parse, a missing envelope field, a schema mismatch, or a CRC
    that disagrees with the payload.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalCorruptError(f"not valid JSON: {exc}") from exc
    if not isinstance(record, dict) or not isinstance(
        record.get("payload"), dict
    ):
        raise JournalCorruptError("not a journal envelope")
    if record.get("schema") != JOBS_SCHEMA:
        raise JournalCorruptError(
            f"unknown schema {record.get('schema')!r} (expected {JOBS_SCHEMA!r})"
        )
    crc = _payload_crc(record["payload"])
    if record.get("crc32") != crc:
        raise JournalCorruptError(
            f"CRC mismatch (stored {record.get('crc32')!r}, computed {crc})"
        )
    return record["payload"]


class JournalWriter:
    """Appends CRC-enveloped records to the journal, one line per call.

    Each record is serialised *before* the file is touched (a
    serialisation error can never leave a partial line), written with a
    single ``write`` call and flushed; with ``fsync=True`` (default,
    the WAL guarantee) every append is also fsynced, so a completed
    ``append`` survives power loss.  ``fsync=False`` trades that for
    throughput on very large campaigns — a crash may then lose the last
    few OS-buffered records, but never tears the settled prefix.

    :attr:`last_line_bytes` is the byte length (newline included) of
    the most recent line — the chaos harness uses it to confine
    ``corrupt-journal`` damage to the tail record, the only region a
    real torn write can touch.
    """

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.last_line_bytes = 0
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, payload: Mapping[str, Any]) -> None:
        """Journal one record (write + flush + fsync-per-policy)."""
        line = encode_record(payload) + "\n"
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.last_line_bytes = len(line.encode())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            fh, self._fh = self._fh, None
            fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class JournalReplay:
    """The validated content of one journal file.

    ``records`` holds every settled payload in append order; ``torn``
    is True when a damaged tail line was detected and dropped
    (``torn_reason`` says how it was damaged).
    """

    path: Path
    records: list[dict]
    torn: bool = False
    torn_reason: str | None = None
    #: byte length of the settled prefix (everything before the torn
    #: record); resume truncates the file here before appending, so the
    #: dropped tail can never end up inside settled history
    settled_bytes: int = 0

    @property
    def last_good(self) -> dict | None:
        """The final settled payload (what a resume continues from)."""
        return self.records[-1] if self.records else None

    def describe_tail(self) -> str:
        """Operator-facing one-liner about the recovery decision."""
        if not self.torn:
            return f"journal intact: {len(self.records)} record(s)"
        last = self.last_good
        if last is None:
            return (
                f"journal: dropped torn tail record ({self.torn_reason}); "
                f"no settled entries remain"
            )
        what = last.get("event", "?")
        key = last.get("key")
        where = f"{what} {key}" if key else what
        return (
            f"journal: dropped torn tail record ({self.torn_reason}); "
            f"last good entry: {where} (record {len(self.records)})"
        )

    def completed(self) -> dict[str, dict]:
        """``key -> done payload`` for every job that finished."""
        return {
            r["key"]: r
            for r in self.records
            if r.get("event") == "done" and "key" in r
        }

    def events(self, kind: str) -> Iterator[dict]:
        """The settled payloads of one event kind, in append order."""
        return (r for r in self.records if r.get("event") == kind)

    def truncate_torn_tail(self) -> None:
        """Physically drop the torn record (no-op on an intact journal).

        Appending new records *after* a damaged line would turn the
        torn tail into mid-file corruption — which the next replay
        rightly refuses — so a resume must cut the file back to the
        settled prefix first.
        """
        if not self.torn:
            return
        with open(self.path, "r+b") as fh:
            fh.truncate(self.settled_bytes)


def replay_journal(path: str | Path) -> JournalReplay:
    """Reload a journal, dropping a torn tail and refusing worse damage.

    Only the *final* non-empty line may fail validation — that is the
    signature of a write cut short by a crash, and it is dropped (the
    WAL discipline guarantees the orchestrator never acted on it).
    A bad line with settled lines after it is corruption of history and
    raises :class:`JournalCorruptError` naming the line number.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"{path}: unreadable journal: {exc}") from exc
    lines = data.split(b"\n")
    # byte offset where each split line starts (split removed the \n)
    offsets: list[int] = []
    cursor = 0
    for raw in lines:
        offsets.append(cursor)
        cursor += len(raw) + 1
    # indices of non-empty lines; trailing b"" after the final newline
    # (or blank separators) carry no records
    occupied = [i for i, raw in enumerate(lines) if raw.strip()]
    records: list[dict] = []
    torn = False
    torn_reason: str | None = None
    settled_bytes = len(data)
    for pos, i in enumerate(occupied):
        raw = lines[i]
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            text = None
            failure: JournalCorruptError | None = JournalCorruptError(
                f"not valid UTF-8: {exc}"
            )
        else:
            failure = None
        if failure is None:
            try:
                assert text is not None
                records.append(decode_record(text))
                continue
            except JournalCorruptError as exc:
                failure = exc
        if pos == len(occupied) - 1:
            # damage confined to the final record: a torn write
            torn = True
            torn_reason = str(failure)
            settled_bytes = offsets[i]
            break
        raise JournalCorruptError(
            f"{path}: line {i + 1}: {failure} — settled records follow, "
            f"so this is not a torn tail; refusing to guess at history"
        )
    return JournalReplay(
        path=path,
        records=records,
        torn=torn,
        torn_reason=torn_reason,
        settled_bytes=settled_bytes,
    )
