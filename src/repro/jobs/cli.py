"""``python -m repro sweep``: the batch-orchestrator command line.

Mirrors the structure of :mod:`repro.obs.bench` and
:mod:`repro.lint.cli`: :func:`add_sweep_arguments` wires the
subparser, :func:`run` is the dispatch target.  The chaos flags exist
for the soak gate and for reproducing field failures — a seeded
``--chaos kill-job@3`` campaign replays the identical failure scenario
every time, which is what makes the recovery paths testable in CI.
"""

from __future__ import annotations

import sys

__all__ = ["add_sweep_arguments", "run", "parse_chaos_specs"]


def add_sweep_arguments(parser) -> None:
    """CLI surface of the batch orchestrator."""
    parser.add_argument(
        "scenarios", nargs="+", metavar="SCENARIO",
        help="zoo scenario name(s) or scenario .toml path(s); each "
        "declared [sweep] grid expands to one job per point (a scenario "
        "without a grid contributes its base configuration as one job)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="supervised worker processes (default 2)",
    )
    parser.add_argument(
        "--journal", metavar="DIR",
        help="write the repro.jobs/1 write-ahead journal into DIR "
        "(required for --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay the journal in --journal and run only the jobs "
        "without a recorded completion (completed digest lines are "
        "re-printed bit for bit)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="attempts per job before the sticky in-process serial rung "
        "(default 2)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="T",
        help="per-job wall-clock deadline in seconds (default: none; "
        "worker death is still detected by liveness polling)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05, metavar="T",
        help="base of the bounded exponential retry backoff "
        "(min(backoff * 2**attempt, --backoff-max); default 0.05s)",
    )
    parser.add_argument(
        "--backoff-max", type=float, default=1.0, metavar="T",
        help="backoff ceiling in seconds (default 1.0)",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-append fsync of the journal (faster; a crash "
        "may lose the last OS-buffered records but never tears settled "
        "history)",
    )
    parser.add_argument(
        "--until", type=float, default=None, metavar="T",
        help="override the simulated-time horizon of every job",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="fallback engine seed for grid points that do not sweep it",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend for every job (numpy, cnative, numba, auto); "
        "results are bit-identical across backends",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="give every job its own repro.ckpt/1 checkpoint directory "
        "DIR/<jobkey>/",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N step blocks (default 10 when "
        "--checkpoint-dir is set)",
    )
    parser.add_argument(
        "--checkpoint-seconds", type=float, default=None, metavar="T",
        help="checkpoint every T wall seconds instead of/besides every N",
    )
    parser.add_argument(
        "--chaos", action="append", default=None, metavar="SPEC",
        help="inject a deterministic fault: kind@poll with optional "
        ":key=value details, e.g. kill-job@3, stall-job@2:delay=5, "
        "corrupt-journal@4:mode=flip; repeat or comma-separate for a "
        "schedule",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the chaos payload generator (default 0)",
    )
    parser.add_argument(
        "--workers-context", default=None, metavar="NAME",
        help="multiprocessing start method for the workers "
        "(fork/spawn/forkserver; default: platform pick)",
    )


def parse_chaos_specs(values: list[str]):
    """``kind@at[:key=value...]`` strings -> :class:`FaultSpec` schedule."""
    from ..resilience.chaos import FaultSpec

    specs = []
    for chunk in values:
        for item in chunk.split(","):
            item = item.strip()
            if not item:
                continue
            head, _, detail = item.partition(":")
            kind, at_sep, at = head.partition("@")
            if not at_sep:
                raise ValueError(
                    f"chaos spec {item!r}: expected kind@poll (e.g. kill-job@3)"
                )
            kwargs: dict = {"kind": kind, "at": int(at)}
            for pair in filter(None, detail.split(":")):
                k, eq, v = pair.partition("=")
                if not eq or k not in ("delay", "mode"):
                    raise ValueError(
                        f"chaos spec {item!r}: unknown detail {pair!r} "
                        f"(expected delay=T or mode=truncate|flip)"
                    )
                kwargs[k] = float(v) if k == "delay" else v
            specs.append(FaultSpec(**kwargs))
    return tuple(specs)


def run(args) -> int:
    """Dispatch target of the ``sweep`` subcommand."""
    from ..lint.engine import LintError
    from ..resilience.checkpoint import ResilienceError
    from ..scenario import ScenarioError, find_scenario
    from .journal import JournalError
    from .orchestrator import JobOrchestrator

    chaos = None
    if args.chaos:
        from ..resilience.chaos import ChaosMonkey

        try:
            faults = parse_chaos_specs(args.chaos)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        chaos = ChaosMonkey(seed=args.chaos_seed, faults=faults)
    try:
        specs = tuple(find_scenario(ref) for ref in args.scenarios)
        orchestrator = JobOrchestrator(
            specs,
            n_workers=args.jobs,
            journal_dir=args.journal,
            fsync=not args.no_fsync,
            max_retries=args.max_retries,
            deadline=args.deadline,
            backoff_base=args.backoff,
            backoff_max=args.backoff_max,
            seed=args.seed,
            until=args.until,
            backend=args.backend,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_seconds=args.checkpoint_seconds,
            context=args.workers_context,
            chaos=chaos,
        )
        return orchestrator.run(resume=args.resume)
    except (ScenarioError, LintError, ResilienceError, JournalError,
            ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
