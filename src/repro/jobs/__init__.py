"""Crash-safe batch orchestration: journaled sweeps on supervised workers.

The package turns a scenario sweep (or an explicit scenario list) into
a *campaign*: a job set keyed by ``(scenario digest, params, seed)``,
executed on supervised worker processes with per-job deadlines and a
retry → backoff → respawn → sticky-serial recovery ladder, every state
transition journaled write-ahead in the CRC-checked ``repro.jobs/1``
JSONL format so a killed campaign resumes with ``repro sweep --resume``
— completed points replay from the journal as perfect cache hits
(determinism makes their recorded digest lines bit-identical to a
re-run).

Layout::

    journal.py       the repro.jobs/1 WAL: envelope, writer, torn-tail
                     tolerant replay, job keys
    pool.py          supervised worker slots (Process + pipes) and the
                     spawn-safe worker entrypoint
    orchestrator.py  job expansion, the state machine, the recovery
                     ladder, graceful signal drain
    cli.py           the `repro sweep` subcommand

Quick start::

    from repro.jobs import JobOrchestrator
    from repro.scenario import find_scenario

    orch = JobOrchestrator((find_scenario("zgb"),), n_workers=4,
                           journal_dir="campaign")
    orch.run()                  # killed? run(resume=True) finishes it
"""

from .journal import (
    JOBS_SCHEMA,
    JOURNAL_NAME,
    JournalCorruptError,
    JournalError,
    JournalReplay,
    JournalWriter,
    decode_record,
    encode_record,
    job_key,
    replay_journal,
)
from .orchestrator import Job, JobOrchestrator
from .pool import JobTask, WorkerPool, job_worker

__all__ = [
    "JOBS_SCHEMA",
    "JOURNAL_NAME",
    "Job",
    "JobOrchestrator",
    "JobTask",
    "JournalCorruptError",
    "JournalError",
    "JournalReplay",
    "JournalWriter",
    "WorkerPool",
    "decode_record",
    "encode_record",
    "job_key",
    "job_worker",
    "replay_journal",
]
