"""Crash-safe batch orchestration of scenario sweeps.

:class:`JobOrchestrator` expands one or more scenarios into a job set
— one job per sweep grid point, keyed by
:func:`~repro.jobs.journal.job_key` over ``(scenario digest,
overrides)`` — and executes it on a :class:`~repro.jobs.pool.WorkerPool`
of supervised processes.  Every state transition is journaled *before*
the orchestrator acts on it (the write-ahead discipline), so a crash at
point 37 of 120 costs at most the in-flight points:

============  ========================================================
event         meaning
============  ========================================================
``campaign``  header: scenario digests, job count, knob settings
``submit``    one job exists (key, scenario, overrides, label)
``start``     a job was handed to a worker slot (or the serial rung)
``done``      a job finished; the record carries its full digest line
``fail``      an attempt died (worker death, deadline miss, error)
``degrade``   a job exhausted its retries; orchestrator goes serial
``drain``     SIGINT/SIGTERM arrived; running+pending keys journaled
``complete``  the campaign finished (done/failed tallies)
============  ========================================================

Failure ladder (mirroring the executor's PR 5 ladder): a lost attempt
is retried with bounded exponential backoff
(``min(backoff_base * 2**(attempt-1), backoff_max)``), the dead worker
slot is respawned with fresh pipes; a job that exhausts
``max_retries`` flips the orchestrator into **sticky in-process serial
degradation** — every remaining job runs in the master process, through
exactly the same :func:`~repro.scenario.runner.run_sweep_point` the
workers call, so a degraded campaign is slower but bit-identical.

Determinism is the cache: a completed job's journal record carries the
full ``sweep ... digest ...`` line, so ``--resume`` replays the journal,
re-prints completed lines bit for bit, and runs only what is missing.
The sorted digest-line set of *any* interleaving of crashes, retries
and resumes equals the serial ``repro run --sweep`` baseline — CI's
``jobs-soak`` gate asserts exactly that.
"""

from __future__ import annotations

import signal as _signal
import sys
import time as _time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from ..obs.metrics import NULL_METRICS, MetricsCollector
from ..obs.trace import NULL_TRACER, Tracer
from .journal import (
    JOURNAL_NAME,
    JournalError,
    JournalReplay,
    JournalWriter,
    job_key,
    replay_journal,
)
from .pool import JobTask, WorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.chaos import ChaosMonkey
    from ..scenario.spec import ScenarioSpec

__all__ = ["Job", "JobOrchestrator"]


@dataclass
class Job:
    """One sweep point and its retry state."""

    key: str
    spec: "ScenarioSpec"
    overrides: dict
    label: str
    order: int
    attempt: int = 0
    not_before: float = 0.0


@dataclass
class JobOrchestrator:
    """Run a scenario sweep as a supervised, journaled job set.

    Parameters mirror the executor's fault-tolerance knobs: ``deadline``
    is the per-job wall-clock budget (``None`` disables the timer and
    supervision falls back to liveness polling alone), ``max_retries``
    the attempts per job before the serial rung, ``backoff_base`` /
    ``backoff_max`` the bounded exponential delay before a failed job
    is redispatched.  ``journal_dir`` enables the write-ahead journal
    (and with it ``resume``); ``checkpoint_dir`` gives every job its
    own ``<dir>/<jobkey>/`` checkpoint subdirectory.  ``chaos`` arms
    the ``kill-job`` / ``stall-job`` / ``corrupt-journal`` channels.
    """

    specs: tuple
    n_workers: int = 2
    journal_dir: str | Path | None = None
    fsync: bool = True
    max_retries: int = 2
    deadline: float | None = None
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    seed: int | None = None
    until: float | None = None
    backend: str | None = None
    checkpoint_dir: str | Path | None = None
    checkpoint_every: int | None = None
    checkpoint_seconds: float | None = None
    context: str | None = None
    chaos: "ChaosMonkey | None" = None
    metrics: MetricsCollector = field(default_factory=lambda: NULL_METRICS)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        if not self.specs:
            raise JournalError("no scenarios to orchestrate")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        self._writer: JournalWriter | None = None
        self._signal: int | None = None
        self._degraded = False
        self._old_handlers: dict[int, Any] = {}
        # campaign tallies (also journaled in the complete record)
        self.n_done = 0
        self.n_cached = 0
        self.n_failed = 0
        self.n_retries = 0
        self.n_respawns = 0

    # ------------------------------------------------------------------
    # job expansion
    # ------------------------------------------------------------------
    def expand_jobs(self) -> list[Job]:
        """The campaign's job set, in deterministic grid order."""
        from ..scenario.compile import lint_scenario
        from ..scenario.runner import format_overrides

        jobs: list[Job] = []
        for spec in self.specs:
            # fail closed before any worker exists, exactly like the
            # serial runner: an unlintable scenario never reaches a pool
            lint_scenario(spec)
            digest = spec.digest()
            grid = spec.sweep.grid() if spec.sweep is not None else [{}]
            for overrides in grid:
                jobs.append(
                    Job(
                        key=job_key(digest, overrides),
                        spec=spec,
                        overrides=dict(overrides),
                        label=format_overrides(overrides) or "(base)",
                        order=len(jobs),
                    )
                )
        return jobs

    # ------------------------------------------------------------------
    # journal plumbing
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path | None:
        """The journal file under ``journal_dir`` (``None`` when disabled)."""
        if self.journal_dir is None:
            return None
        return Path(self.journal_dir) / JOURNAL_NAME

    def _journal(self, payload: dict) -> None:
        """Append one WAL record, then let chaos tear it.

        A ``corrupt-journal`` fault is a *crash mid-append*: it damages
        the line just written and then aborts the campaign — if the
        orchestrator kept appending, the damage would end up inside the
        settled prefix, which is a different failure (real corruption)
        with a different contract (refuse, don't recover).
        """
        if self._writer is None:
            return
        self._writer.append(payload)
        if self.chaos is not None:
            spec = self.chaos.poll("journal")
            if spec is not None:
                self.chaos.corrupt_file(
                    self._writer.path,
                    mode=spec.mode,
                    tail=self._writer.last_line_bytes,
                )
                raise JournalError(
                    f"chaos: tore journal record "
                    f"({payload.get('event', '?')}) mid-append — "
                    f"simulated crash; resume with --resume"
                )

    def _validate_replay(self, replay: JournalReplay, jobs: list[Job]) -> None:
        """Refuse to resume a journal written by a different campaign."""
        campaigns = list(replay.events("campaign"))
        if not campaigns:
            raise JournalError(
                f"{replay.path}: no campaign record survived — nothing to resume"
            )
        recorded = sorted(campaigns[0].get("digests", []))
        current = sorted({job.spec.digest() for job in jobs})
        if recorded != current:
            raise JournalError(
                f"{replay.path}: journal belongs to a different campaign "
                f"(scenario digests {recorded} != {current}); a scenario "
                f"edit invalidates its journal — start a fresh --journal"
            )

    # ------------------------------------------------------------------
    # signals (SR072: every install is popped in a covering finally)
    # ------------------------------------------------------------------
    def _on_signal(self, signum: int, frame: Any) -> None:
        """Drain request: set the flag, no I/O inside the handler."""
        self._signal = signum

    def install_signals(self) -> None:
        """Route SIGINT/SIGTERM to the graceful drain (idempotent)."""
        if self._old_handlers:
            return
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                self._old_handlers[signum] = _signal.signal(
                    signum, self._on_signal
                )
            except ValueError:  # pragma: no cover - not the main thread
                pass

    def restore_signals(self) -> None:
        """Put the previous SIGINT/SIGTERM handlers back."""
        for signum, handler in self._old_handlers.items():
            try:
                _signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        self._old_handlers.clear()

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------
    def run(self, resume: bool = False, out=None) -> int:
        """Execute (or resume) the campaign; returns the exit code.

        0 on full success, 1 when any job failed permanently, 130 when
        a signal drained the campaign (resume later with ``--resume``).
        """
        out = out if out is not None else sys.stdout
        jobs = self.expand_jobs()
        for spec in self.specs:
            print(
                f"scenario {spec.name} ({spec.source}) "
                f"digest {spec.short_digest()}",
                file=out, flush=True,
            )
        print(f"sweep: {len(jobs)} point(s), {self.n_workers} worker(s)",
              file=out, flush=True)

        completed: dict[str, dict] = {}
        path = self.journal_path
        if resume:
            if path is None:
                raise JournalError(
                    "--resume needs --journal DIR (the write-ahead journal "
                    "is what a resume replays)"
                )
            if not path.exists():
                raise JournalError(f"{path}: no journal to resume")
            replay = replay_journal(path)
            if replay.torn:
                print(replay.describe_tail(), file=out, flush=True)
                # drop the torn record physically: appending after it
                # would turn it into (refused) mid-file corruption
                replay.truncate_torn_tail()
            self._validate_replay(replay, jobs)
            completed = replay.completed()
        elif path is not None and path.exists() and path.stat().st_size > 0:
            raise JournalError(
                f"{path}: journal already exists — pass --resume to "
                f"continue it, or point --journal at a fresh directory"
            )

        if path is not None:
            self._writer = JournalWriter(path, fsync=self.fsync)
        try:
            return self._run_jobs(jobs, completed, out)
        finally:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def _checkpoint_for(self, job: Job) -> tuple[str, int | None, float | None] | None:
        """Per-job checkpoint subdirectory ``<dir>/<jobkey>/`` (or None)."""
        if self.checkpoint_dir is None:
            return None
        return (
            str(Path(self.checkpoint_dir) / job.key),
            self.checkpoint_every,
            self.checkpoint_seconds,
        )

    def _arm(self, job: Job) -> tuple[float, bool]:
        """Chaos arming point for one dispatch: ``(delay, die)``."""
        if self.chaos is None:
            return 0.0, False
        spec = self.chaos.poll("job")
        if spec is None:
            return 0.0, False
        if spec.kind == "kill-job":
            return 0.0, True
        if spec.kind == "stall-job":
            return spec.delay, False
        return 0.0, False

    def _run_jobs(
        self, jobs: list[Job], completed: dict[str, dict], out
    ) -> int:
        resumed = bool(completed)
        self._journal(
            {
                "event": "campaign",
                "digests": sorted({j.spec.digest() for j in jobs}),
                "scenarios": [s.name for s in self.specs],
                "n_jobs": len(jobs),
                "resumed": resumed,
                "knobs": {
                    "workers": self.n_workers,
                    "max_retries": self.max_retries,
                    "deadline": self.deadline,
                    "backoff_base": self.backoff_base,
                    "backoff_max": self.backoff_max,
                },
            }
        )
        # cached lines first, in grid order: a resumed campaign's output
        # is the uninterrupted campaign's output, reordered at most by
        # worker completion order of the still-missing points
        cached = [j for j in jobs if j.key in completed]
        for job in cached:
            line = completed[job.key].get("line")
            if line:
                print(line, file=out, flush=True)
                self.n_cached += 1
                self.tracer.on_job(job.key, "cached")
        if resumed:
            print(
                f"resume: {self.n_cached} cached, "
                f"{len(jobs) - len(cached)} to run",
                file=out, flush=True,
            )
        todo = [j for j in jobs if j.key not in completed]
        if not resumed:
            for job in todo:
                self._journal(
                    {
                        "event": "submit",
                        "key": job.key,
                        "scenario": job.spec.name,
                        "overrides": job.overrides,
                        "label": job.label,
                    }
                )
                self.tracer.on_job(job.key, "submit")
        failed: dict[str, str] = {}
        self.install_signals()
        try:
            serial = self._supervise(todo, out, failed)
            if self._signal is not None:
                return 130
            self._run_serial(serial, out, failed)
            if self._signal is not None:
                return 130
        finally:
            self.restore_signals()
        self._journal(
            {
                "event": "complete",
                "n_done": self.n_done,
                "n_cached": self.n_cached,
                "n_failed": len(failed),
            }
        )
        self.n_failed = len(failed)
        status = "degraded" if self._degraded else "ok"
        print(
            f"jobs: {self.n_done} done, {self.n_cached} cached, "
            f"{len(failed)} failed, {self.n_retries} retries, "
            f"{self.n_respawns} respawns ({status})",
            file=out, flush=True,
        )
        for key, error in sorted(failed.items()):
            print(f"failed {key}: {error}", file=out, flush=True)
        return 1 if failed else 0

    def _supervise(
        self, todo: list[Job], out, failed: dict[str, str]
    ) -> list[Job]:
        """The supervised-pool phase; returns jobs left for the serial rung.

        Runs until every job is done, degraded to serial, or a drain
        signal arrives.  Worker death, deadline misses and in-worker
        errors all funnel through :meth:`_attempt_failed`.
        """
        m = self.metrics
        pending: deque[Job] = deque(todo)
        inflight: dict[str, Job] = {}
        serial: list[Job] = []
        pool: WorkerPool | None = None
        if todo and self.n_workers > 0:
            pool = WorkerPool(n_workers=self.n_workers, context=self.context)
        try:
            while pending or inflight:
                if self._signal is not None:
                    self._drain(pending, inflight, out)
                    return []
                if self._degraded and not inflight:
                    # sticky serial rung takes everything still queued
                    serial.extend(sorted(pending, key=lambda j: j.order))
                    pending.clear()
                    break
                assert pool is not None
                now = _time.perf_counter()
                if not self._degraded:
                    for wid in pool.idle_slots():
                        job = self._next_ready(pending, now)
                        if job is None:
                            break
                        delay, die = self._arm(job)
                        self._journal(
                            {
                                "event": "start",
                                "key": job.key,
                                "attempt": job.attempt + 1,
                                "worker": wid,
                            }
                        )
                        self.tracer.on_job(
                            job.key, "start", {"worker": wid}
                        )
                        pool.dispatch(
                            wid,
                            JobTask(
                                key=job.key,
                                spec=job.spec,
                                overrides=job.overrides,
                                seed=self.seed,
                                until=self.until,
                                backend=self.backend,
                                checkpoint=self._checkpoint_for(job),
                                delay=delay,
                                die=die,
                            ),
                        )
                        inflight[job.key] = job
                        m.inc("jobs.dispatched")
                m.set_gauge("jobs.queue.depth", len(pending))
                for _wid, reply in pool.collect(0.05 if inflight else 0.01):
                    kind, key = reply[0], reply[1]
                    job = inflight.pop(key)
                    if kind == "ok":
                        _, _, line, wall = reply
                        self._job_done(job, line, wall, out)
                    else:
                        self._attempt_failed(
                            job, reply[2], pending, serial, failed
                        )
                for wid, key in pool.reap():
                    job = inflight.pop(key)
                    self._attempt_failed(
                        job, "worker died (killed or crashed)",
                        pending, serial, failed,
                    )
                    m.inc("jobs.respawns")
                    self.n_respawns += 1
                    self.tracer.on_recovery(
                        "worker-respawn", {"worker": wid, "key": key}
                    )
                    pool.respawn(wid)
                if self.deadline is not None:
                    for wid, key, elapsed in pool.running():
                        if elapsed <= self.deadline:
                            continue
                        job = inflight.pop(key)
                        pool.kill(wid)
                        self._attempt_failed(
                            job,
                            f"deadline exceeded ({elapsed:.2f}s > "
                            f"{self.deadline:g}s)",
                            pending, serial, failed,
                        )
                        m.inc("jobs.respawns")
                        self.n_respawns += 1
                        self.tracer.on_recovery(
                            "worker-respawn",
                            {"worker": wid, "key": key, "why": "deadline"},
                        )
                        pool.respawn(wid)
        finally:
            if pool is not None:
                pool.close(graceful=self._signal is None)
        return sorted(serial, key=lambda j: j.order)

    @staticmethod
    def _next_ready(pending: deque[Job], now: float) -> Job | None:
        """Pop the first job whose backoff window has elapsed."""
        for _ in range(len(pending)):
            job = pending.popleft()
            if job.not_before <= now:
                return job
            pending.append(job)
        return None

    def _job_done(self, job: Job, line: str, wall: float, out) -> None:
        self._journal(
            {
                "event": "done",
                "key": job.key,
                "attempt": job.attempt + 1,
                "line": line,
                "wall_s": wall,
            }
        )
        print(line, file=out, flush=True)
        self.n_done += 1
        self.metrics.observe("jobs.wall", wall)
        self.tracer.on_job(job.key, "done", {"wall_s": wall})

    def _attempt_failed(
        self,
        job: Job,
        error: str,
        pending: deque[Job],
        serial: list[Job],
        failed: dict[str, str],
    ) -> None:
        """One attempt lost: journal it and walk the ladder."""
        job.attempt += 1
        self._journal(
            {
                "event": "fail",
                "key": job.key,
                "attempt": job.attempt,
                "error": error,
            }
        )
        self.metrics.inc("jobs.retries")
        self.n_retries += 1
        self.tracer.on_job(job.key, "fail", {"error": error})
        if job.attempt <= self.max_retries:
            job.not_before = _time.perf_counter() + min(
                self.backoff_base * (2.0 ** (job.attempt - 1)),
                self.backoff_max,
            )
            pending.append(job)
            return
        # out of retries: this job — and, sticky, everything after it —
        # runs on the in-process serial rung
        self._journal({"event": "degrade", "key": job.key})
        self.metrics.inc("jobs.degraded")
        self.tracer.on_recovery("serial-fallback", {"key": job.key})
        self._degraded = True
        serial.append(job)

    def _run_serial(
        self, serial: list[Job], out, failed: dict[str, str]
    ) -> None:
        """The last rung: run jobs in-process, in grid order.

        Same :func:`run_sweep_point`, same backend, same per-job
        checkpoint directory — a degraded campaign's digest lines are
        bit-identical to a healthy one's.
        """
        from ..scenario.runner import run_sweep_point

        for i, job in enumerate(serial):
            if self._signal is not None:
                self._drain(serial[i:], {}, out)
                return
            self._journal(
                {
                    "event": "start",
                    "key": job.key,
                    "attempt": job.attempt + 1,
                    "worker": "serial",
                }
            )
            ckpt_dir, ckpt_every, ckpt_seconds = self._checkpoint_for(job) or (
                None, None, None,
            )
            try:
                w0 = _time.perf_counter()
                line = run_sweep_point(
                    job.spec,
                    job.overrides,
                    seed=self.seed,
                    until=self.until,
                    backend=self.backend,
                    checkpoint_dir=ckpt_dir,
                    checkpoint_every=ckpt_every,
                    checkpoint_seconds=ckpt_seconds,
                )
            except Exception as exc:  # permanent: the last rung failed
                job.attempt += 1
                error = f"{type(exc).__name__}: {exc}"
                self._journal(
                    {
                        "event": "fail",
                        "key": job.key,
                        "attempt": job.attempt,
                        "error": error,
                        "permanent": True,
                    }
                )
                self.metrics.inc("jobs.failed")
                self.tracer.on_job(job.key, "fail", {"error": error})
                failed[job.key] = error
                continue
            self._job_done(job, line, _time.perf_counter() - w0, out)

    def _drain(
        self, pending: Iterable[Job], inflight: dict[str, Job], out
    ) -> None:
        """Journal what a signal interrupted, so resume can pick it up."""
        running = sorted(inflight)
        queued = sorted(j.key for j in pending)
        self._journal(
            {
                "event": "drain",
                "signal": self._signal,
                "running": running,
                "pending": queued,
            }
        )
        self.tracer.on_job("-", "drain", {"signal": self._signal})
        print(
            f"drain: signal {self._signal} — journaled {len(running)} "
            f"running and {len(queued)} pending job(s); resume with "
            f"--resume",
            file=out, flush=True,
        )
