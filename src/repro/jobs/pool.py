"""Supervised job workers: one process per slot, pipes for I/O.

The orchestrator does not use ``multiprocessing.Pool`` — a pool hides
*which* worker holds which task, and supervision (per-job deadlines,
kill-and-requeue of exactly the lost job) needs that mapping.  Instead
each worker slot is one ``Process`` plus a dedicated task pipe and
result pipe; the master always knows the single job a slot is running,
detects death by ``is_alive`` polling (a SIGKILL mid-``send`` can
leave a result pipe torn, so EOF alone is not trusted), and respawns
dead slots with fresh pipes.

Spawn safety (SR077): :func:`job_worker` is the only code executed in
a worker process.  It is a module-level function, receives everything
through its argument tuple and the task pipe (all picklable — the
scenario spec is a frozen dataclass of plain values), and reads no
master-side mutable module globals, so it behaves identically under
the ``fork`` and ``spawn`` start methods.  Results are returned as
plain tuples; the digest line a worker computes is bit-identical to
the serial runner's because both call
:func:`repro.scenario.runner.run_sweep_point`.

Chaos injection rides in the task tuple (``delay``/``die``), armed by
the master *before* dispatch — exactly the executor's pattern — so an
injected fault acts before any work is done and a retried job replays
from a clean slate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle as _pickle
import signal as _signal
import time as _time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["JobTask", "WorkerPool", "job_worker"]


def _default_start_method() -> str:
    """Platform-aware default: ``fork`` where available, else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class JobTask:
    """Everything one worker needs to run one sweep point (picklable).

    ``checkpoint`` is ``(dir, every_steps, every_seconds)`` or ``None``;
    ``delay``/``die`` are the chaos-harness arming points (stall past
    the deadline / SIGKILL before touching any state).
    """

    key: str
    spec: Any  # ScenarioSpec (frozen dataclass; kept Any to stay picklable-opaque)
    overrides: dict
    seed: int | None = None
    until: float | None = None
    backend: str | None = None
    checkpoint: tuple[str, int | None, float | None] | None = None
    delay: float = 0.0
    die: bool = False


def job_worker(task_conn, result_conn, worker_id: int) -> None:
    """Worker-process main loop: recv task, run the point, send the line.

    SIGINT is ignored (the orchestrator owns interactive interrupts and
    drains gracefully; a Ctrl-C must not also tear every worker down
    mid-job).  SIGTERM is explicitly reset to the *default* action:
    under the ``fork`` start method the child inherits whatever handler
    the master installed — the orchestrator's flag-only drain handler —
    which would turn ``Process.terminate`` into a no-op and leave the
    worker blocking in ``recv`` forever (the master may also hold
    cross-inherited pipe ends, so EOF never arrives either).
    Replies are ``("ok", key, line, wall_s)`` or ``("err", key, msg)``;
    a ``None`` task is the shutdown sentinel.
    """
    try:
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    from ..scenario.runner import run_sweep_point

    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):  # master vanished: nothing to serve
            return
        if task is None:
            return
        if task.die:  # chaos: SIGKILL this worker before any state change
            os.kill(os.getpid(), _signal.SIGKILL)
        if task.delay:  # chaos: stall past the per-job deadline
            _time.sleep(task.delay)
        try:
            w0 = _time.perf_counter()
            ckpt_dir, ckpt_every, ckpt_seconds = task.checkpoint or (
                None, None, None,
            )
            line = run_sweep_point(
                task.spec,
                task.overrides,
                seed=task.seed,
                until=task.until,
                backend=task.backend,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=ckpt_every,
                checkpoint_seconds=ckpt_seconds,
            )
            reply = ("ok", task.key, line, _time.perf_counter() - w0)
        except Exception as exc:  # the job failed; the worker survives
            reply = ("err", task.key, f"{type(exc).__name__}: {exc}")
        try:
            result_conn.send(reply)
        except (BrokenPipeError, OSError):  # master vanished mid-send
            return


@dataclass
class _Slot:
    """One supervised worker slot (process + its two pipe ends)."""

    process: Any
    task_conn: Any
    result_conn: Any
    busy: bool = False
    key: str | None = None
    started_at: float = 0.0
    generation: int = 0

    def close_pipes(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn
                pass


@dataclass
class WorkerPool:
    """A fixed set of supervised worker slots.

    The pool only moves tasks and replies; *policy* (retries, backoff,
    deadlines, journaling) lives in the orchestrator.  Slots are
    numbered; :meth:`dispatch` binds a task to an idle slot,
    :meth:`collect` drains every readable result pipe, :meth:`reap`
    returns slots whose process died without replying, and
    :meth:`respawn` replaces one slot with a fresh process and pipes.
    """

    n_workers: int = 2
    context: str | None = None
    _slots: dict[int, _Slot] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        self._ctx = mp.get_context(
            self.context if self.context is not None else _default_start_method()
        )
        self._closed = False
        for wid in range(self.n_workers):
            self._slots[wid] = self._spawn(wid, generation=0)

    def _spawn(self, wid: int, generation: int) -> _Slot:
        """Create one worker process with fresh task/result pipes."""
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=job_worker,
            args=(task_r, result_w, wid),
            daemon=True,
            name=f"repro-job-worker-{wid}",
        )
        process.start()
        # master keeps only its own ends; the child holds the others
        task_r.close()
        result_w.close()
        return _Slot(
            process=process,
            task_conn=task_w,
            result_conn=result_r,
            generation=generation,
        )

    # -- dispatch / collect --------------------------------------------
    def idle_slots(self) -> list[int]:
        """Slot ids currently free to take a task (stable order)."""
        return [wid for wid, s in sorted(self._slots.items()) if not s.busy]

    def dispatch(self, wid: int, task: JobTask) -> None:
        """Send one task to an idle slot (marks it busy)."""
        slot = self._slots[wid]
        if slot.busy:
            raise RuntimeError(f"worker slot {wid} is busy with {slot.key!r}")
        slot.task_conn.send(task)
        slot.busy = True
        slot.key = task.key
        slot.started_at = _time.perf_counter()

    def collect(self, timeout: float = 0.05) -> list[tuple[int, tuple]]:
        """Drain every readable result pipe; returns ``(wid, reply)``.

        A torn reply (worker SIGKILLed mid-``send``) is swallowed here —
        the dead process is surfaced by :meth:`reap` instead, so every
        failure has exactly one observable shape.
        """
        out: list[tuple[int, tuple]] = []
        deadline = _time.perf_counter() + timeout
        while True:
            for wid, slot in sorted(self._slots.items()):
                if not slot.busy:
                    continue
                try:
                    if slot.result_conn.poll(0):
                        reply = slot.result_conn.recv()
                        slot.busy = False
                        slot.key = None
                        out.append((wid, reply))
                except (EOFError, OSError, _pickle.UnpicklingError):
                    # torn pipe/pickle: leave the slot busy; reap() will
                    # report the dead process behind it
                    continue
            if out or _time.perf_counter() >= deadline:
                return out
            _time.sleep(min(0.005, timeout))

    def reap(self) -> list[tuple[int, str]]:
        """Busy slots whose process died without a reply: ``(wid, key)``."""
        dead: list[tuple[int, str]] = []
        for wid, slot in sorted(self._slots.items()):
            if slot.busy and not slot.process.is_alive():
                dead.append((wid, slot.key or "?"))
        return dead

    def running(self) -> list[tuple[int, str, float]]:
        """Busy slots as ``(wid, key, seconds_running)``."""
        now = _time.perf_counter()
        return [
            (wid, s.key or "?", now - s.started_at)
            for wid, s in sorted(self._slots.items())
            if s.busy
        ]

    def kill(self, wid: int) -> None:
        """Forcibly terminate one slot's process (deadline enforcement).

        Escalates SIGTERM -> SIGKILL: a worker wedged in C code (or with
        a damaged signal disposition) must still die, or the interpreter
        would hang joining it at exit.
        """
        self._kill_process(self._slots[wid].process)

    @staticmethod
    def _kill_process(process) -> None:
        try:
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def respawn(self, wid: int) -> None:
        """Replace one slot with a fresh process and fresh pipes."""
        old = self._slots[wid]
        if old.process.is_alive():
            self.kill(wid)
        old.close_pipes()
        self._slots[wid] = self._spawn(wid, generation=old.generation + 1)

    # -- lifecycle ------------------------------------------------------
    def close(self, graceful: bool = True) -> None:
        """Shut every slot down (idempotent).

        Graceful close sends the ``None`` sentinel and joins briefly;
        anything still alive afterwards — and everything, when
        ``graceful=False`` (the drain path) — is terminated.
        """
        if self._closed:
            return
        self._closed = True
        for slot in self._slots.values():
            if graceful and not slot.busy and slot.process.is_alive():
                try:
                    slot.task_conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots.values():
            if slot.process.is_alive():
                if graceful and not slot.busy:
                    slot.process.join(timeout=1)
                if slot.process.is_alive():
                    self._kill_process(slot.process)
            slot.close_pipes()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            close = getattr(self, "close", None)
            if close is not None:
                close(graceful=False)
        except BaseException:
            pass
