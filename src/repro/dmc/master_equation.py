"""Exact integration of the Master Equation for tiny lattices.

The stochastic model underlying all DMC methods is the Master Equation
(paper, eq. 1)::

    dP(S, t)/dt = sum_{S'} [ k_{S S'} P(S', t) - k_{S' S} P(S, t) ]

For a lattice of ``N`` sites and ``|D|`` species the state space has
``|D|^N`` configurations — hopeless in general, but fully tractable
for the 4-8-site lattices used as *ground truth* in the correctness
tests: enumerate all configurations, assemble the (sparse) generator
``W`` with ``W[S', S] = sum of rates of reactions transforming S into
S'`` and the diagonal ``W[S, S] = -sum of outgoing rates``, and
integrate ``P(t) = expm(W t) P(0)`` with scipy.

Expected coverages ``<theta_X>(t) = sum_S P(S, t) * theta_X(S)`` are
then exact, and every correct DMC simulator must reproduce them in
ensemble average.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import expm_multiply

from ..core.lattice import Lattice
from ..core.model import Model
from ..core.state import Configuration

__all__ = ["MasterEquation"]

#: refuse to enumerate state spaces larger than this
MAX_STATES = 2_000_000


class MasterEquation:
    """Exact Master-Equation propagator for a model on a tiny lattice."""

    def __init__(self, model: Model, lattice: Lattice):
        n_species = len(model.species)
        n_states = n_species ** lattice.n_sites
        if n_states > MAX_STATES:
            raise ValueError(
                f"state space {n_species}^{lattice.n_sites} = {n_states} "
                f"exceeds the limit {MAX_STATES}; use a smaller lattice"
            )
        self.model = model
        self.lattice = lattice
        self.compiled = model.compile(lattice)
        self.n_species = n_species
        self.n_states = n_states
        self._powers = n_species ** np.arange(lattice.n_sites, dtype=np.int64)
        self.generator = self._build_generator()

    # ------------------------------------------------------------------
    # configuration coding
    # ------------------------------------------------------------------
    def encode(self, state: np.ndarray) -> int:
        """Index of a configuration (flat ``uint8`` array of codes)."""
        return int(np.dot(state.astype(np.int64), self._powers))

    def decode(self, index: int) -> np.ndarray:
        """Configuration array of a state index."""
        out = np.empty(self.lattice.n_sites, dtype=np.uint8)
        for i in range(self.lattice.n_sites):
            out[i] = index % self.n_species
            index //= self.n_species
        return out

    def delta(self, config: Configuration) -> np.ndarray:
        """Probability vector concentrated on one configuration."""
        p = np.zeros(self.n_states)
        p[self.encode(config.array)] = 1.0
        return p

    # ------------------------------------------------------------------
    def _build_generator(self) -> sp.csc_matrix:
        comp = self.compiled
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = np.zeros(self.n_states)
        scratch = np.empty(self.lattice.n_sites, dtype=np.uint8)
        for c in range(self.n_states):
            state = self.decode(c)
            for i, ct in enumerate(comp.types):
                for s in range(self.lattice.n_sites):
                    if not comp.is_enabled(state, i, s):
                        continue
                    scratch[:] = state
                    comp.execute(scratch, i, s)
                    c2 = self.encode(scratch)
                    if c2 == c:
                        continue  # null transition contributes nothing
                    rows.append(c2)
                    cols.append(c)
                    vals.append(ct.rate)
                    diag[c] -= ct.rate
        w = sp.coo_matrix(
            (vals, (rows, cols)), shape=(self.n_states, self.n_states)
        ).tocsc()
        w += sp.diags(diag).tocsc()
        return w

    # ------------------------------------------------------------------
    def propagate(self, p0: np.ndarray, times: Sequence[float]) -> np.ndarray:
        """``P(t)`` at the given times (rows) starting from ``p0`` at t=0.

        Times must be non-negative and strictly increasing.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("times must be a non-empty 1-d sequence")
        if np.any(times < 0) or np.any(np.diff(times) <= 0):
            raise ValueError("times must be non-negative and strictly increasing")
        p0 = np.asarray(p0, dtype=np.float64)
        if p0.shape != (self.n_states,):
            raise ValueError(f"p0 must have shape ({self.n_states},)")
        if not np.isclose(p0.sum(), 1.0):
            raise ValueError("p0 must be a probability vector (sum to 1)")
        out = np.empty((times.size, self.n_states))
        for k, t in enumerate(times):
            if t == 0.0:
                out[k] = p0
            else:
                out[k] = expm_multiply(self.generator * t, p0)
        return out

    def stationary(self) -> np.ndarray:
        """A stationary distribution (null vector of the generator)."""
        w = self.generator.toarray()
        evals, evecs = np.linalg.eig(w)
        k = int(np.argmin(np.abs(evals)))
        v = np.real(evecs[:, k])
        v = np.abs(v)
        return v / v.sum()

    # ------------------------------------------------------------------
    def coverage_vector(self, species: str) -> np.ndarray:
        """theta_X(S) for every configuration index S."""
        code = self.model.species.code(species)
        out = np.empty(self.n_states)
        for c in range(self.n_states):
            out[c] = np.count_nonzero(self.decode(c) == code) / self.lattice.n_sites
        return out

    def expected_coverage(self, p: np.ndarray, species: str) -> np.ndarray:
        """``<theta_X>`` under one or many probability vectors.

        ``p`` may be a single vector or a ``(n_times, n_states)`` array.
        """
        theta = self.coverage_vector(species)
        p = np.atleast_2d(np.asarray(p))
        out = p @ theta
        return out[0] if out.size == 1 else out
