"""The Random Selection Method (RSM) — the paper's DMC reference.

Algorithm (paper, section 3)::

    set time to 0;
    repeat
        1. select a site s randomly with probability 1/N;
        2. select a reaction type i with probability ki/K;
        3. check if the reaction type is enabled at s;
        4. if it is, execute it;
        5. advance the time by drawing from [1 - exp(-N K t)];
    until simulation time has elapsed;

A single iteration is a *trial*; one MC step is ``N`` trials.  RSM is
purely sequential — each trial sees the state left by the previous one
— which is exactly why the paper develops the partitioned CA
alternatives.

For statistics over many independent runs, the stacked
:class:`repro.ensemble.EnsembleRSM` executes R replicas of this exact
algorithm concurrently, bit-identical per replica to this class under
matched seeds.

Implementation notes.  The random site/type/waiting-time draws are
vectorised in blocks (semantically identical, an order of magnitude
faster — see :mod:`repro.core.rng`); the state mutation itself runs
through the sequential kernel.  Blocks are split exactly at observer
grid times, so sampled coverages are exact (no block-granularity lag).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_sites, draw_types
from .base import SimulatorBase

__all__ = ["RSM"]


class RSM(SimulatorBase):
    """Random Selection Method simulator.

    Extra parameter ``block`` sets how many trials are drawn per random
    block (a pure performance knob; results are block-size independent
    for a fixed seed *and* block size — changing it re-orders random
    draws like any different-but-equivalent stream).
    """

    algorithm = "RSM"

    def __init__(self, *args, block: int = 8192, **kwargs):
        super().__init__(*args, **kwargs)
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.block = int(block)

    def _step_block(self, until: float) -> int:
        comp = self.compiled
        n = self.block
        sites = draw_sites(self.rng, comp.n_sites, n)
        types = draw_types(self.rng, comp.type_cum, n)
        if self.time_mode == "stochastic":
            dts = self.rng.exponential(scale=1.0 / self.nk_rate, size=n)
        else:
            dts = np.full(n, 1.0 / self.nk_rate)
        times = self.time + np.cumsum(dts)
        # only trials occurring strictly before `until` happen
        n_use = int(np.searchsorted(times, until, side="left"))
        end_time = until if n_use < n else float(times[-1])
        if self.metrics.enabled and n_use:
            self._record_attempts(types[:n_use])

        record: list | None = [] if self.trace is not None else None
        # execute in segments split at observer grid times, so that
        # observers sample the state exactly as of their grid point
        start = 0
        while start < n_use:
            due = min((o.next_due for o in self.observers), default=np.inf)
            if due <= self.time:
                self._notify()
                continue
            seg_end = n_use
            if due < np.inf:
                seg_end = min(
                    n_use, int(np.searchsorted(times, due, side="left"))
                )
            if seg_end > start:
                self.kernels.run_trials_sequential(
                    self.state.array,
                    comp,
                    sites[start:seg_end],
                    types[start:seg_end],
                    counts=self.executed_per_type,
                    record=record,
                )
                if record is not None and record:
                    base = start
                    for idx, t_idx, s in record:
                        self.trace.append(float(times[idx + base]), t_idx, s)  # type: ignore[union-attr]
                    record.clear()
                self.time = float(times[seg_end - 1])
                start = seg_end
            if seg_end < n_use and due < np.inf:
                # we stopped exactly at a grid boundary: cross it
                self.time = min(due, end_time)
                self._notify()
        self.time = end_time
        self.n_trials += n_use
        # n_use == 0 only when the first trial of the block already lies
        # beyond `until`; time has then been advanced to `until` and the
        # base run loop terminates on its own, so 0 never means "stuck".
        return n_use
