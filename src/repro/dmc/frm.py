"""The First Reaction Method (FRM).

The third classic DMC algorithm from the taxonomy the paper cites:
every enabled reaction ``(type, anchor)`` carries a *tentative
occurrence time* drawn from ``t_now + Exp(k_type)``; the simulation
repeatedly executes the reaction with the smallest tentative time.

Because the exponential distribution is memoryless, regenerating the
tentative time of a reaction whenever it is (re-)enabled yields the
same stochastic process as keeping it — this implementation uses a
binary heap with lazy invalidation: a version counter per
``(type, anchor)`` pair stamps heap entries; stale entries are skipped
on pop.

FRM, VSSM and RSM all simulate the same Master Equation; the three are
used to cross-validate each other in the correctness tests.
"""

from __future__ import annotations

import heapq

from .base import SimulatorBase

__all__ = ["FRM"]


class FRM(SimulatorBase):
    """First Reaction Method simulator (heap-based, lazy invalidation)."""

    algorithm = "FRM"

    def __init__(self, *args, **kwargs):
        if kwargs.get("time_mode", "stochastic") != "stochastic":
            raise ValueError("FRM is intrinsically stochastic; deterministic time is undefined")
        super().__init__(*args, **kwargs)
        #: heap of (tentative_time, version, type, anchor)
        self._heap: list[tuple[float, int, int, int]] = []
        #: current version of each (type, anchor); -1 = disabled
        self._version: dict[tuple[int, int], int] = {}
        self._vcounter = 0
        comp = self.compiled
        for i in range(comp.n_types):
            for s in comp.enabled_anchor_sites(self.state.array, i).tolist():
                self._schedule(i, int(s))

    def _schedule(self, type_index: int, anchor: int) -> None:
        """(Re)draw the tentative time of an enabled reaction."""
        self._vcounter += 1
        key = (type_index, anchor)
        self._version[key] = self._vcounter
        t = self.time + float(
            self.rng.exponential(scale=1.0 / self.compiled.types[type_index].rate)
        )
        heapq.heappush(self._heap, (t, self._vcounter, type_index, anchor))

    def _invalidate(self, type_index: int, anchor: int) -> None:
        self._version.pop((type_index, anchor), None)

    def _update_after(self, type_index: int, site: int) -> None:
        comp = self.compiled
        ct = comp.types[type_index]
        changed = [int(m[site]) for m in ct.maps]
        for anchor in comp.affected_anchors(changed).tolist():
            for j in range(comp.n_types):
                key = (j, anchor)
                enabled = comp.is_enabled(self.state.array, j, anchor)
                scheduled = key in self._version
                if enabled and not scheduled:
                    self._schedule(j, anchor)
                elif not enabled and scheduled:
                    self._invalidate(j, anchor)

    def pending(self) -> int:
        """Number of currently scheduled (valid) reactions."""
        return len(self._version)

    def _step_block(self, until: float) -> int:
        heap = self._heap
        while heap:
            t, version, t_idx, anchor = heap[0]
            if self._version.get((t_idx, anchor)) != version:
                heapq.heappop(heap)  # stale entry
                continue
            if t >= until:
                self.time = until
                return 1
            heapq.heappop(heap)
            self._version.pop((t_idx, anchor))
            self.time = t
            self.compiled.execute(self.state.array, t_idx, anchor)
            self.executed_per_type[t_idx] += 1
            self.n_trials += 1
            if self.trace is not None:
                self.trace.append(self.time, t_idx, anchor)
            self._update_after(t_idx, anchor)
            return 1
        # no enabled reactions: absorbing state
        self.time = until
        return 0
