"""An indexed set: O(1) add/discard/membership plus O(1) random choice.

The event-driven DMC methods (VSSM, FRM) maintain, per reaction type,
the set of anchor sites where the type is currently enabled, and must
repeatedly *select a uniformly random member*.  Python sets cannot be
sampled in O(1); the standard remedy is a list with a position map and
swap-with-last removal, implemented here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexedSet"]


class IndexedSet:
    """A set of hashable items supporting O(1) uniform random choice."""

    __slots__ = ("_items", "_pos")

    def __init__(self, items=()):
        self._items: list = []
        self._pos: dict = {}
        for x in items:
            self.add(x)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, x) -> bool:
        return x in self._pos

    def __iter__(self):
        return iter(self._items)

    def add(self, x) -> bool:
        """Insert; returns True if the item was new."""
        if x in self._pos:
            return False
        self._pos[x] = len(self._items)
        self._items.append(x)
        return True

    def discard(self, x) -> bool:
        """Remove if present (swap-with-last); returns True if removed."""
        pos = self._pos.pop(x, None)
        if pos is None:
            return False
        last = self._items.pop()
        if pos < len(self._items):
            self._items[pos] = last
            self._pos[last] = pos
        return True

    def choose(self, rng: np.random.Generator):
        """Uniformly random member (the set must be non-empty)."""
        if not self._items:
            raise IndexError("choose from an empty IndexedSet")
        return self._items[int(rng.integers(0, len(self._items)))]

    def clear(self) -> None:
        """Remove all items."""
        self._items.clear()
        self._pos.clear()

    def __repr__(self) -> str:
        return f"IndexedSet(n={len(self._items)})"
