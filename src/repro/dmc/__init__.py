"""Dynamic Monte Carlo simulators and the exact Master Equation."""

from .base import (
    CoverageObserver,
    Observer,
    SimulationResult,
    SimulatorBase,
    SnapshotObserver,
)
from .frm import FRM
from .master_equation import MasterEquation
from .rsm import RSM
from .vssm import VSSM

__all__ = [
    "SimulatorBase",
    "SimulationResult",
    "Observer",
    "CoverageObserver",
    "SnapshotObserver",
    "RSM",
    "VSSM",
    "FRM",
    "MasterEquation",
]
