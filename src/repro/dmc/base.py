"""Shared simulator infrastructure: observers, results, the base class.

All simulation algorithms (DMC and CA alike) share

* a bound :class:`~repro.core.compiled.CompiledModel`,
* a mutable :class:`~repro.core.state.Configuration`,
* explicit seeding,
* a *time mode* — ``"stochastic"`` draws every waiting-time increment
  from the negative-exponential distribution ``1 - exp(-N K t)`` (the
  paper's step 5); ``"deterministic"`` uses the fixed discretisation
  step ``1/(N K)`` per trial (the paper's "time discretisation of the
  ME" reading) — useful for variance-free curve comparisons,
* observers sampled on a fixed simulation-time grid,
* an optional event trace for the waiting-time correctness analyses.

Concrete algorithms implement :meth:`SimulatorBase._step_block`, which
advances the state by one algorithm-specific unit of work (a block of
RSM trials, a CA step, ...) and returns the number of trials attempted.
"""

from __future__ import annotations

import time as _wall
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.compiled import CompiledModel
from ..core.events import EventTrace
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.rng import make_rng
from ..core.state import Configuration
from ..obs.metrics import CountingGenerator, MetricsCollector, RunMetrics, current_metrics
from ..obs.trace import NULL_TRACER, Tracer

__all__ = ["Observer", "CoverageObserver", "SnapshotObserver", "SimulationResult", "SimulatorBase"]


class Observer(ABC):
    """Samples quantities on a fixed simulation-time grid.

    A simulator calls :meth:`sample` exactly once per grid time, in
    increasing order, passing the state *at the moment the grid time
    was crossed*.
    """

    def __init__(self, interval: float, t0: float = 0.0):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = float(interval)
        self.t0 = float(t0)
        self._k = 0  # grid points sampled so far

    @property
    def next_due(self) -> float:
        """Next grid time (computed multiplicatively: no float drift)."""
        return self.t0 + self._k * self.interval

    def start(self, sim: "SimulatorBase") -> None:
        """Hook called once before the run starts."""

    def maybe_sample(self, t: float, state: Configuration) -> None:
        """Sample at every grid point up to and including time ``t``."""
        while self.next_due <= t:
            self.sample(self.next_due, state)
            self._k += 1

    @abstractmethod
    def sample(self, t: float, state: Configuration) -> None:
        """Record one sample (state as of grid time ``t``)."""

    @abstractmethod
    def data(self) -> dict:
        """Collected data as plain arrays (merged into the result)."""

    # -- checkpoint support --------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the observer's mutable state.

        Subclasses that accumulate data extend the dict; restoring it
        via :meth:`load_state_dict` makes a resumed run's result carry
        the *complete* sampled series, identical to an uninterrupted
        run (asserted in ``tests/test_resilience.py``).
        """
        return {"k": self._k}

    def load_state_dict(self, d: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._k = int(d["k"])


class CoverageObserver(Observer):
    """Records species coverages theta_X(t) on a uniform time grid."""

    def __init__(self, interval: float, species: Sequence[str] | None = None, t0: float = 0.0):
        super().__init__(interval, t0)
        self.species = tuple(species) if species is not None else None
        self._times: list[float] = []
        self._rows: list[np.ndarray] = []
        self._names: tuple[str, ...] = ()

    def start(self, sim: "SimulatorBase") -> None:
        """Resolve species codes before the run starts."""
        names = sim.model.species.names
        self._names = self.species if self.species is not None else names
        self._codes = np.array(
            [sim.model.species.code(n) for n in self._names], dtype=np.intp
        )
        self._n_all = len(names)

    def sample(self, t: float, state: Configuration) -> None:
        """Record one coverage row at grid time ``t``."""
        counts = np.bincount(state.array, minlength=self._n_all)
        self._times.append(t)
        self._rows.append(counts[self._codes] / state.lattice.n_sites)

    def data(self) -> dict:
        """Sampled grid times plus one coverage series per species."""
        times = np.array(self._times)
        if self._rows:
            block = np.vstack(self._rows)
        else:
            block = np.empty((0, len(self._names)))
        cov = {n: block[:, i] for i, n in enumerate(self._names)}
        return {"times": times, "coverage": cov}

    def state_dict(self) -> dict:
        """Sampled rows included, so a resumed series is complete."""
        return {
            "k": self._k,
            "times": list(self._times),
            "rows": [row.tolist() for row in self._rows],
        }

    def load_state_dict(self, d: dict) -> None:
        """Restore counter plus the already-sampled coverage rows."""
        self._k = int(d["k"])
        self._times = [float(t) for t in d["times"]]
        self._rows = [np.asarray(row, dtype=np.float64) for row in d["rows"]]


class SnapshotObserver(Observer):
    """Stores full configuration snapshots on a time grid (small lattices)."""

    def __init__(self, interval: float, t0: float = 0.0):
        super().__init__(interval, t0)
        self._times: list[float] = []
        self._states: list[np.ndarray] = []

    def sample(self, t: float, state: Configuration) -> None:
        """Store a copy of the configuration at grid time ``t``."""
        self._times.append(t)
        self._states.append(state.array.copy())

    def data(self) -> dict:
        """Snapshot times and the stacked configuration array."""
        return {
            "snapshot_times": np.array(self._times),
            "snapshots": np.array(self._states) if self._states else np.empty((0, 0)),
        }

    def state_dict(self) -> dict:
        """Stored snapshots included, so a resumed series is complete."""
        return {
            "k": self._k,
            "times": list(self._times),
            "states": [s.tolist() for s in self._states],
        }

    def load_state_dict(self, d: dict) -> None:
        """Restore counter plus the already-stored snapshots."""
        self._k = int(d["k"])
        self._times = [float(t) for t in d["times"]]
        self._states = [np.asarray(s, dtype=np.uint8) for s in d["states"]]


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    algorithm: str
    model_name: str
    lattice_shape: tuple[int, ...]
    seed: int | None
    final_time: float
    n_trials: int
    n_executed: int
    executed_per_type: np.ndarray
    wall_time: float
    final_state: Configuration
    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    coverage: dict[str, np.ndarray] = field(default_factory=dict)
    events: EventTrace | None = None
    extra: dict = field(default_factory=dict)
    metrics: RunMetrics | None = None

    @property
    def mc_steps(self) -> float:
        """Trials per site: one MC step is ``N`` trials (paper, section 3)."""
        n = int(np.prod(self.lattice_shape))
        return self.n_trials / n

    @property
    def acceptance(self) -> float:
        """Fraction of trials that executed a reaction."""
        return self.n_executed / self.n_trials if self.n_trials else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable summary of the run."""
        lines = [
            f"{self.algorithm} on {self.model_name} {self.lattice_shape}: "
            f"t={self.final_time:g}, {self.n_trials} trials "
            f"({self.mc_steps:.1f} MC steps), acceptance {self.acceptance:.3f}, "
            f"wall {self.wall_time:.2f}s"
        ]
        cov = self.final_state.coverages()
        lines.append("final coverages: " + ", ".join(f"{k}={v:.3f}" for k, v in cov.items()))
        return "\n".join(lines)


class SimulatorBase(ABC):
    """Base class for all simulation algorithms.

    Parameters
    ----------
    model, lattice:
        The model and the lattice to bind it to.
    seed:
        Seed for the run's random generator (or a Generator).
    initial:
        Starting configuration; defaults to the all-vacant state.
    time_mode:
        ``"stochastic"`` (exponential waiting times, default) or
        ``"deterministic"`` (fixed ``1/(N K)`` per trial).
    observers:
        Observers sampled during the run.
    record_events:
        Collect an :class:`EventTrace` of executed reactions.
    metrics:
        A :class:`~repro.obs.metrics.MetricsCollector` to record run
        metrics into; defaults to the ambient collector
        (:func:`repro.obs.metrics.current_metrics` — normally the
        zero-overhead null object).  When enabled, the run's random
        generator is wrapped in a transparent draw-counting proxy;
        the random stream itself is unchanged, so trajectories are
        bit-identical with metrics on or off.
    tracer:
        A :class:`~repro.obs.trace.Tracer` receiving the
        ``on_step``/``on_chunk``/``on_snapshot`` hooks; defaults to
        the no-op :data:`~repro.obs.trace.NULL_TRACER`.
    backend:
        Kernel backend for the execution hot paths — a name
        (``"numpy"``, ``"cnative"``, ``"numba"``, ``"auto"``), a
        :class:`~repro.backends.Backend`, or ``None`` for the ambient
        backend installed by :func:`~repro.backends.use_backend`
        (default ``numpy``).  An execution detail only: trajectories,
        RNG streams and checkpoints are bit-identical across backends.
    """

    #: short algorithm label, set by subclasses
    algorithm: str = "?"

    def __init__(
        self,
        model: Model,
        lattice: Lattice,
        seed: int | np.random.Generator | None = None,
        initial: Configuration | None = None,
        time_mode: str = "stochastic",
        observers: Iterable[Observer] = (),
        record_events: bool = False,
        metrics: MetricsCollector | None = None,
        tracer: Tracer | None = None,
        backend=None,
    ):
        if time_mode not in ("stochastic", "deterministic"):
            raise ValueError(f"unknown time mode {time_mode!r}")
        from ..backends import resolve_backend

        self.model = model
        self.lattice = lattice
        self.backend = resolve_backend(backend)
        #: the backend's resolved kernel table (execution hot paths)
        self.kernels = self.backend.kernel_set()
        self.compiled: CompiledModel = model.compile(lattice)
        if initial is None:
            # all-vacant by convention; models without a "*" species
            # start uniformly in their first species
            from ..core.species import EMPTY

            if EMPTY in model.species:
                self.state = Configuration.empty(lattice, model.species)
            else:
                self.state = Configuration.filled(
                    lattice, model.species, model.species.names[0]
                )
        else:
            if initial.lattice != lattice:
                raise ValueError("initial configuration is on a different lattice")
            self.state = initial.copy()
        self.seed = seed if isinstance(seed, int) or seed is None else None
        self.rng = make_rng(seed)
        self.metrics = metrics if metrics is not None else current_metrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.metrics.enabled:
            # transparent delegating wrapper: same stream, counted draws
            self.rng = CountingGenerator(self.rng, self.metrics)  # type: ignore[assignment]
        self.time_mode = time_mode
        self.observers = list(observers)
        self.trace = EventTrace() if record_events else None
        self.time = 0.0
        self.n_trials = 0
        self.executed_per_type = np.zeros(model.n_types, dtype=np.int64)
        #: per-type attempted-trial totals (filled only when metrics on)
        self._attempted_per_type = np.zeros(model.n_types, dtype=np.int64)

        #: rate of the per-trial waiting-time distribution, N * K
        self.nk_rate = lattice.n_sites * self.compiled.total_rate

    # ------------------------------------------------------------------
    @property
    def n_executed(self) -> int:
        """Total executed reactions so far."""
        return int(self.executed_per_type.sum())

    def time_increment(self, n_trials: int) -> float:
        """Elapsed simulation time for a number of trials.

        Stochastic mode draws the sum of ``n_trials`` exponentials
        (a Gamma variate — one draw instead of ``n_trials``);
        deterministic mode returns ``n_trials / (N K)``.
        """
        if n_trials <= 0:
            return 0.0
        if self.time_mode == "stochastic":
            return float(self.rng.gamma(shape=n_trials, scale=1.0 / self.nk_rate))
        return n_trials / self.nk_rate

    def _notify(self) -> None:
        """Let observers sample every grid point crossed so far."""
        tracer = self.tracer
        if tracer.enabled and self.observers:
            k0 = sum(o._k for o in self.observers)
            for obs in self.observers:
                obs.maybe_sample(self.time, self.state)
            if sum(o._k for o in self.observers) > k0:
                tracer.on_snapshot(self.time)
            return
        for obs in self.observers:
            obs.maybe_sample(self.time, self.state)

    def _record_attempts(self, types: np.ndarray) -> None:
        """Accumulate per-type attempted-trial counts (metrics path only)."""
        self._attempted_per_type += np.bincount(
            types, minlength=self.model.n_types
        )

    # ------------------------------------------------------------------
    # checkpoint / resume (see repro.resilience.checkpoint, DESIGN.md §10)
    # ------------------------------------------------------------------
    def _extra_checkpoint_state(self) -> dict:
        """Algorithm-specific mutable state (JSON-safe); default none.

        Subclasses with run-loop state beyond the base fields override
        this together with :meth:`_restore_extra` (e.g. PNDCA's
        partition-cycle counter).
        """
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Restore the dict produced by :meth:`_extra_checkpoint_state`."""

    def checkpoint_payload(self) -> dict:
        """Everything ``run()`` mutates, as a JSON-safe ``repro.ckpt/1`` payload."""
        from ..resilience.checkpoint import (
            encode_array,
            engine_fingerprint,
            rng_state,
        )

        return {
            "kind": "simulator",
            "algorithm": self.algorithm,
            "model": self.model.name,
            "lattice": list(self.lattice.shape),
            "time_mode": self.time_mode,
            "fingerprint": engine_fingerprint(self),
            "seed": self.seed,
            "time": float(self.time),
            "n_trials": int(self.n_trials),
            "executed_per_type": [int(x) for x in self.executed_per_type],
            "attempted_per_type": [int(x) for x in self._attempted_per_type],
            "state": encode_array(self.state.array),
            "rng": rng_state(self.rng),
            "extra": self._extra_checkpoint_state(),
            "observers": [o.state_dict() for o in self.observers],
        }

    def restore_payload(self, payload: dict) -> None:
        """Restore a checkpoint payload into this (matching) engine."""
        from ..resilience.checkpoint import (
            CheckpointMismatchError,
            decode_array,
            engine_fingerprint,
            restore_rng_state,
        )

        if payload.get("kind") != "simulator":
            raise CheckpointMismatchError(
                f"checkpoint kind {payload.get('kind')!r} cannot restore "
                f"into a sequential simulator"
            )
        fp = engine_fingerprint(self)
        if payload.get("fingerprint") != fp:
            raise CheckpointMismatchError(
                f"checkpoint fingerprint {payload.get('fingerprint')!r} does "
                f"not match this engine ({fp}: {self.algorithm} / "
                f"{self.model.name} / {self.lattice.shape}) — it was taken "
                f"from a different model, lattice or algorithm configuration"
            )
        array = decode_array(payload["state"])
        self.state.array[:] = array  # in place: keeps shared-memory views
        self.time = float(payload["time"])
        self.n_trials = int(payload["n_trials"])
        self.executed_per_type[:] = payload["executed_per_type"]
        self._attempted_per_type[:] = payload["attempted_per_type"]
        restore_rng_state(self.rng, payload["rng"])
        self._restore_extra(payload.get("extra", {}))
        obs_states = payload.get("observers", [])
        if obs_states:
            if len(obs_states) != len(self.observers):
                raise CheckpointMismatchError(
                    f"checkpoint carries {len(obs_states)} observer states, "
                    f"engine has {len(self.observers)} observers"
                )
            for obs, d in zip(self.observers, obs_states):
                obs.load_state_dict(d)

    def resume(self, path) -> "SimulatorBase":
        """Restore from a checkpoint file; returns ``self``.

        Construct the engine exactly as for the original run (model,
        lattice, partition, strategy, observers — the seed is
        irrelevant, the restored bit-generator state replaces it), then
        resume and continue with ``run(until=...)``: the continuation
        is bit-identical to the uninterrupted run.
        """
        from ..resilience.checkpoint import load_checkpoint

        self.restore_payload(load_checkpoint(path))
        return self

    # ------------------------------------------------------------------
    @abstractmethod
    def _step_block(self, until: float) -> int:
        """Advance by one unit of work, not (far) beyond ``until``.

        Must update ``self.time``, ``self.n_trials``,
        ``self.executed_per_type`` and the state; returns the number of
        trials attempted (0 signals that no progress is possible).
        """

    def run(
        self,
        until: float,
        max_steps: int | None = None,
        checkpoint=None,
    ) -> SimulationResult:
        """Simulate until the given simulation time (or ``max_steps`` blocks).

        ``checkpoint`` is an optional
        :class:`~repro.resilience.checkpoint.Checkpointer`; when omitted
        the ambient one installed by
        :func:`~repro.resilience.checkpoint.use_checkpoints` (if any)
        is used.  Checkpoints are written at step-block boundaries —
        the consistent points of every algorithm.
        """
        if until <= self.time:
            raise ValueError(f"until={until} is not beyond current time {self.time}")
        from ..resilience.checkpoint import current_checkpointer

        ckpt = checkpoint if checkpoint is not None else current_checkpointer()
        for obs in self.observers:
            obs.start(self)
        m = self.metrics
        tracer = self.tracer
        wall0 = _wall.perf_counter()
        steps = 0
        trials0 = executed0 = 0
        if ckpt is not None:
            ckpt.start(self)
        try:
            with m.phase("run"):
                self._notify()
                while self.time < until:
                    if m.enabled:
                        trials0 = self.n_trials
                        executed0 = self.n_executed
                    n = self._step_block(until)
                    self._notify()
                    steps += 1
                    if m.enabled:
                        m.inc("steps")
                        m.inc("trials.attempted", self.n_trials - trials0)
                        m.inc("trials.executed", self.n_executed - executed0)
                    tracer.on_step(steps, self.time)
                    if ckpt is not None:
                        ckpt.after_step(self)
                    if n == 0:
                        break  # absorbing state or no work possible
                    if max_steps is not None and steps >= max_steps:
                        break
        finally:
            if ckpt is not None:
                ckpt.finish(self)
        wall = _wall.perf_counter() - wall0
        return self._result(wall)

    def _finalize_metrics(self) -> RunMetrics | None:
        """Write derived totals/rates as gauges; return the snapshot."""
        m = self.metrics
        if not m.enabled:
            return None
        m.set_gauge(
            "acceptance", self.n_executed / self.n_trials if self.n_trials else 0.0
        )
        m.set_gauge("sim.final_time", self.time)
        for i, rt in enumerate(self.model.reaction_types):
            attempted = int(self._attempted_per_type[i])
            executed = int(self.executed_per_type[i])
            m.set_gauge(f"executed.{rt.name}", executed)
            if attempted:
                m.set_gauge(f"attempted.{rt.name}", attempted)
                m.set_gauge(f"acceptance.{rt.name}", executed / attempted)
        return m.snapshot()

    def _result(self, wall: float) -> SimulationResult:
        data: dict = {}
        for obs in self.observers:
            data.update(obs.data())
        return SimulationResult(
            algorithm=self.algorithm,
            model_name=self.model.name,
            lattice_shape=self.lattice.shape,
            seed=self.seed,
            final_time=self.time,
            n_trials=self.n_trials,
            n_executed=self.n_executed,
            executed_per_type=self.executed_per_type.copy(),
            wall_time=wall,
            final_state=self.state,
            times=data.pop("times", np.empty(0)),
            coverage=data.pop("coverage", {}),
            events=self.trace,
            extra=data,
            metrics=self._finalize_metrics(),
        )
