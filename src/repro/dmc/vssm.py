"""The Variable Step Size Method (VSSM / Gillespie's direct method).

A rejection-free DMC algorithm from the Segers taxonomy the paper
cites: instead of blind trials, the simulator keeps track of the set of
*enabled* reactions and, per event,

1. draws the waiting time from ``Exp(R)`` with
   ``R = sum_i k_i |E_i|`` (``E_i`` = anchors where type ``i`` is
   enabled),
2. selects a type with probability ``k_i |E_i| / R`` and a uniformly
   random enabled anchor of that type,
3. executes, then incrementally updates the enabled sets of the
   affected anchors.

VSSM simulates the Master Equation exactly (same stochastic process as
RSM, without rejected trials) and serves as an independent baseline to
corroborate the RSM kinetics.  Its per-event bookkeeping cost makes it
the better choice when acceptance is low; RSM wins when most trials
succeed — a classic DMC trade-off.

"Trials" reported by this simulator are *events* (every trial
executes); MC-step accounting therefore differs from RSM's.
"""

from __future__ import annotations

import numpy as np

from .base import SimulatorBase
from .indexed_set import IndexedSet

__all__ = ["VSSM"]


class VSSM(SimulatorBase):
    """Variable Step Size Method (rejection-free DMC) simulator."""

    algorithm = "VSSM"

    def __init__(self, *args, **kwargs):
        if kwargs.get("time_mode", "stochastic") != "stochastic":
            raise ValueError("VSSM is intrinsically stochastic; deterministic time is undefined")
        super().__init__(*args, **kwargs)
        self._enabled: list[IndexedSet] = []
        self._scan_enabled()

    def _scan_enabled(self) -> None:
        """Full scan of the lattice to (re)build the enabled sets."""
        comp = self.compiled
        self._enabled = [
            IndexedSet(comp.enabled_anchor_sites(self.state.array, i).tolist())
            for i in range(comp.n_types)
        ]

    def _update_after(self, type_index: int, site: int) -> None:
        """Incremental enabled-set update after executing a reaction."""
        comp = self.compiled
        ct = comp.types[type_index]
        changed = [int(m[site]) for m in ct.maps]
        for anchor in comp.affected_anchors(changed).tolist():
            for j in range(comp.n_types):
                if comp.is_enabled(self.state.array, j, anchor):
                    self._enabled[j].add(anchor)
                else:
                    self._enabled[j].discard(anchor)

    def total_enabled_rate(self) -> float:
        """Current total exit rate ``R = sum_i k_i |E_i|``."""
        comp = self.compiled
        return float(
            sum(comp.types[i].rate * len(self._enabled[i]) for i in range(comp.n_types))
        )

    def _step_block(self, until: float) -> int:
        comp = self.compiled
        weights = np.array(
            [comp.types[i].rate * len(self._enabled[i]) for i in range(comp.n_types)]
        )
        total = float(weights.sum())
        if total <= 0.0:
            # absorbing state: nothing can ever happen again
            self.time = until
            return 0
        dt = float(self.rng.exponential(scale=1.0 / total))
        if self.time + dt >= until:
            # the next event falls beyond the horizon: advance and stop
            self.time = until
            return 1
        self.time += dt
        u = float(self.rng.random()) * total
        t_idx = int(np.searchsorted(np.cumsum(weights), u, side="right"))
        t_idx = min(t_idx, comp.n_types - 1)
        site = self._enabled[t_idx].choose(self.rng)
        comp.execute(self.state.array, t_idx, site)
        self.executed_per_type[t_idx] += 1
        self.n_trials += 1
        if self.trace is not None:
            self.trace.append(self.time, t_idx, site)
        self._update_after(t_idx, site)
        return 1
