"""Acceptance gates: every zoo scenario proves itself before it ships.

Three gate tiers, in increasing cost:

* **lint** — always on: the model sanity pass (SR010–SR016) and, for
  parallel engine kinds, the symbolic partition race proof.  Run by
  :func:`repro.scenario.compile.lint_scenario`; a scenario that fails
  never reaches an engine.
* **fingerprint** — a statistical-regression gate: the engine is run at
  a fixed ``(seed, until)`` and its state digest (same
  :func:`repro.resilience.runs.run_digest` the checkpoint CI gate
  diffs) must equal the recorded value.  Determinism makes this an
  exact regression test of the entire stack — model compilation, RNG
  stream, kernels, engine — per scenario.
* **meanfield** — a physics cross-check where tractable: selected
  coverages after a lattice run must agree with the integrated
  mean-field kinetics (:func:`repro.analysis.meanfield.integrate_mean_field`)
  within a declared tolerance.  Tolerances are loose by design — the
  lattice *should* deviate from the closure where correlations matter —
  so the gate catches wrong rate tables and broken kernels, not
  fluctuations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .compile import build_engine, build_model, lint_scenario
from .spec import ScenarioSpec

__all__ = ["GateResult", "run_gates", "coverages_after"]


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate: name, verdict, human-readable detail."""

    gate: str
    ok: bool
    detail: str

    def render(self) -> str:
        status = "pass" if self.ok else "FAIL"
        return f"{status:<4s} {self.gate:<12s} {self.detail}"


def coverages_after(
    spec: ScenarioSpec, *, seed: int, until: float
) -> dict[str, float]:
    """Run the scenario engine and return final per-species coverages.

    Ensemble engines average over replicas; sequential engines read the
    single final configuration.
    """
    engine = build_engine(spec, seed=seed)
    engine.run(until=until)
    model, _ = build_model(spec.model, spec.name)
    n_species = len(model.species)
    if hasattr(engine, "states"):  # ensemble: (R, ...) stacked states
        states = np.asarray(engine.states)
        counts = np.zeros(n_species, dtype=np.float64)
        for r in range(states.shape[0]):
            counts += np.bincount(states[r].ravel(), minlength=n_species)
        counts /= states.shape[0]
        n_sites = states[0].size
    else:
        counts = np.bincount(
            engine.state.array.ravel(), minlength=n_species
        ).astype(np.float64)
        n_sites = engine.state.array.size
    return {
        name: float(counts[i] / n_sites)
        for i, name in enumerate(model.species.names)
    }


def _run_fingerprint(spec: ScenarioSpec) -> GateResult:
    from ..resilience.runs import run_digest

    gate = spec.gates.fingerprint
    assert gate is not None
    engine = build_engine(spec, seed=gate.seed)
    engine.run(until=gate.until)
    got = run_digest(engine)
    ok = got == gate.digest
    detail = (
        f"digest {got} == {gate.digest} (seed={gate.seed}, until={gate.until:g})"
        if ok
        else f"digest {got} != recorded {gate.digest} "
        f"(seed={gate.seed}, until={gate.until:g})"
    )
    return GateResult("fingerprint", ok, detail)


def _run_meanfield(spec: ScenarioSpec) -> GateResult:
    from ..analysis.meanfield import integrate_mean_field

    gate = spec.gates.meanfield
    assert gate is not None
    model, lint_initial = build_model(spec.model, spec.name)
    # theta0 mirrors the engine's starting configuration: the declared
    # fill species, else all-vacant / all-first-species by convention
    from ..core.species import EMPTY

    if spec.run.initial is not None:
        fill = spec.run.initial
    elif EMPTY in model.species:
        fill = EMPTY
    else:
        fill = model.species.names[0]
    theta0 = {fill: 1.0}
    _, series = integrate_mean_field(model, theta0, t_end=gate.t)
    covs = coverages_after(spec, seed=gate.seed, until=gate.t)
    worst: tuple[float, str] | None = None
    for name in gate.species:
        gap = abs(covs[name] - float(series[name][-1]))
        if worst is None or gap > worst[0]:
            worst = (gap, name)
    assert worst is not None
    gap, name = worst
    ok = gap <= gate.tol
    return GateResult(
        "meanfield",
        ok,
        f"max |lattice - meanfield| = {gap:.3f} ({name!r}) "
        f"{'<=' if ok else '>'} tol {gate.tol:g} at t={gate.t:g}",
    )


def run_gates(spec: ScenarioSpec) -> list[GateResult]:
    """Run every gate the scenario declares; lint always runs first.

    A lint failure short-circuits — the other gates would be measuring
    a model the static verifier already rejected.
    """
    from ..lint.engine import LintError

    results: list[GateResult] = []
    try:
        report = lint_scenario(spec)
    except LintError as exc:
        results.append(GateResult("lint", False, str(exc).splitlines()[0]))
        return results
    n_warn = len(report.warnings)
    results.append(
        GateResult("lint", True, f"model sanity + partition proof ({n_warn} warning(s))")
    )
    if spec.gates.fingerprint is not None:
        results.append(_run_fingerprint(spec))
    if spec.gates.meanfield is not None:
        results.append(_run_meanfield(spec))
    return results
