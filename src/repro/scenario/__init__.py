"""Declarative scenarios: the TOML DSL, the model zoo, and its gates.

The package turns the hand-constructed-per-driver models of the
reproduction into a *corpus*: any simulation the engine family can run
is describable as one ``repro.scenario/1`` TOML document (species,
reaction types and rates, lattice, engine + chunk strategy, backend,
seed, sweep grids, acceptance gates), loadable fail-closed, runnable
via ``python -m repro run <scenario>``, and identified by a content
digest that makes completed runs cache-keyable by
``(digest, params, seed)``.

Layout::

    spec.py      the schema + fail-closed loader/validator
    compile.py   spec -> Model (via core.builder) -> engine, lint-gated
    registry.py  the shipped zoo (repro/scenario/zoo/*.toml)
    gates.py     lint / fingerprint / mean-field acceptance gates
    runner.py    `repro run` backend: runs, sweeps, checkpoint/resume
    zoo/         the Jansen-catalogue model zoo (TOML files)

Quick start::

    from repro.scenario import build_engine, find_scenario, run_gates

    spec = find_scenario("zgb")          # zoo name or path to a .toml
    engine = build_engine(spec)          # lint-gated construction
    engine.run(until=spec.run.until)
    for result in run_gates(spec):       # the scenario's acceptance gates
        print(result.render())
"""

from .compile import (
    PRESETS,
    build_engine,
    build_model,
    build_partition,
    compile_scenario,
    lint_scenario,
)
from .gates import GateResult, coverages_after, run_gates
from .registry import (
    find_scenario,
    get_scenario,
    is_scenario_ref,
    scenario_names,
    scenario_registry,
)
from .runner import format_overrides, provenance, run_scenario, run_sweep_point
from .spec import (
    ENGINE_KINDS,
    PARALLEL_KINDS,
    ScenarioError,
    ScenarioSpec,
    load_scenario,
    loads_scenario,
)

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "ENGINE_KINDS",
    "PARALLEL_KINDS",
    "load_scenario",
    "loads_scenario",
    "scenario_registry",
    "scenario_names",
    "get_scenario",
    "find_scenario",
    "is_scenario_ref",
    "PRESETS",
    "build_model",
    "build_partition",
    "build_engine",
    "compile_scenario",
    "lint_scenario",
    "GateResult",
    "run_gates",
    "coverages_after",
    "provenance",
    "run_scenario",
    "run_sweep_point",
    "format_overrides",
]
