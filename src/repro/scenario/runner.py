"""Execute scenarios: the backend of ``repro run <scenario>``.

A scenario run prints, in order: a provenance header (scenario name,
source, content digest), the run summary, and the machine-diffable
``digest`` line in exactly the format of the resilience runs — so a
scenario that reconstructs a Python-constructed configuration can be
checked bit-identical by diffing two ``digest`` lines of stdout (the
CI scenarios gate does this for ZGB).

Sweeps (``--sweep``) expand the scenario's declared grids into the
cartesian product and run every point, one ``sweep ... digest ...``
line each (flushed as produced, so piped campaigns show progress);
the scenario digest plus the printed override pairs make every line
cache-keyable by ``(digest, params, seed)``.  The single-point
executor, :func:`run_sweep_point`, is shared with the batch
orchestrator (:mod:`repro.jobs`) — a job worker's digest line is
bit-identical to the serial loop's because both are this function.

Checkpointing works exactly as for the named resilience runs: all
engines a scenario can construct implement the versioned checkpoint
protocol, so ``--checkpoint-dir``/``--resume`` apply unchanged.  Under
``--sweep``, ``--checkpoint-dir`` routes each grid point to its own
``<dir>/<jobkey>/`` subdirectory (the same job keys the orchestrator
uses); only ``--resume`` stays rejected there — resuming a sweep needs
the write-ahead journal, i.e. ``repro sweep --resume``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .compile import build_engine, lint_scenario
from .spec import ScenarioSpec

__all__ = [
    "provenance",
    "run_scenario",
    "run_sweep_point",
    "format_overrides",
]


def provenance(
    spec: ScenarioSpec,
    *,
    seed: int | None = None,
    params: Mapping[str, Any] | None = None,
) -> dict:
    """The cache key of a scenario run: ``(digest, params, seed)``.

    Stamped into run output and into ``repro bench`` records
    (``extra["scenario"]``) so completed runs are reusable as cache
    hits by anything that trusts determinism.
    """
    return {
        "name": spec.name,
        "source": spec.source,
        "digest": spec.digest(),
        "seed": spec.run.seed if seed is None else seed,
        "params": dict(params or {}),
    }


def _split_overrides(
    overrides: Mapping[str, Any],
) -> tuple[dict[str, Any], dict[str, float], int | None, float | None]:
    """One sweep point -> (params, rates, seed, until)."""
    params: dict[str, Any] = {}
    rates: dict[str, float] = {}
    seed: int | None = None
    until: float | None = None
    for key, value in overrides.items():
        if key == "seed":
            seed = int(value)
        elif key == "until":
            until = float(value)
        elif key.startswith("params."):
            params[key[len("params."):]] = value
        elif key.startswith("rates."):
            rates[key[len("rates."):]] = float(value)
    return params, rates, seed, until


def format_overrides(overrides: Mapping[str, Any]) -> str:
    """Render one sweep point as ``key=value`` pairs (stable order)."""
    return " ".join(f"{k}={overrides[k]:g}" if isinstance(overrides[k], float)
                    else f"{k}={overrides[k]}" for k in sorted(overrides))


def _digest_line(engine) -> str:
    from ..resilience.runs import run_digest, _engine_time

    return (
        f"digest {run_digest(engine)} t={_engine_time(engine):.17g} "
        f"trials={int(np.sum(engine.n_trials))}"
    )


def run_sweep_point(
    spec: ScenarioSpec,
    overrides: Mapping[str, Any],
    *,
    seed: int | None = None,
    until: float | None = None,
    backend: str | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    checkpoint_seconds: float | None = None,
) -> str:
    """Execute one sweep grid point; returns its ``sweep ...`` output line.

    The single source of truth for what one point *is*: the serial
    sweep loop, the job workers and the orchestrator's serial rung all
    call this function, which is why their digest lines are
    bit-identical and a journaled completion can stand in for a re-run.
    ``seed``/``until`` are fallbacks — an override in the grid point
    wins, exactly as in the serial loop.
    """
    params, rates, o_seed, o_until = _split_overrides(overrides)
    engine = build_engine(
        spec,
        seed=o_seed if o_seed is not None else seed,
        params_override=params or None,
        rates_override=rates or None,
        backend=backend,
    )
    horizon = spec.run.until if until is None else until
    run_until = o_until if o_until is not None else horizon
    if checkpoint_dir is not None:
        from ..resilience.checkpoint import (
            Checkpointer,
            CheckpointPolicy,
            use_checkpoints,
        )

        if checkpoint_every is None and checkpoint_seconds is None:
            checkpoint_every = 10
        ckpt = Checkpointer(
            Path(checkpoint_dir),
            CheckpointPolicy(
                every_steps=checkpoint_every, every_seconds=checkpoint_seconds
            ),
            tag=spec.name,
        )
        # signals stay with the caller: the orchestrator (or the serial
        # sweep loop) owns interrupt semantics, not an individual point
        with use_checkpoints(ckpt, signals=False):
            engine.run(until=run_until)
        ckpt.flush(engine)
    else:
        engine.run(until=run_until)
    label = format_overrides(overrides) or "(base)"
    return f"sweep {label} {_digest_line(engine)}"


def run_scenario(
    spec: ScenarioSpec,
    *,
    seed: int | None = None,
    until: float | None = None,
    backend: str | None = None,
    sweep: bool = False,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    checkpoint_seconds: float | None = None,
    resume: str | Path | None = None,
    out=None,
) -> int:
    """Execute one scenario (or its sweep grid); returns the exit code."""
    out = out if out is not None else sys.stdout
    # fail closed before any trial: the lint preflight refuses what
    # `repro lint` would flag (LintError propagates to the CLI)
    lint_scenario(spec)
    horizon = spec.run.until if until is None else until
    print(
        f"scenario {spec.name} ({spec.source}) digest {spec.short_digest()}",
        file=out,
    )

    if sweep:
        if resume is not None:
            from .spec import ScenarioError

            raise ScenarioError(
                "--sweep --resume needs the write-ahead journal: use "
                "`repro sweep <scenario> --journal DIR --resume` (the "
                "batch orchestrator) to resume a sweep campaign"
            )
        if spec.sweep is None:
            from .spec import ScenarioError

            raise ScenarioError(
                f"scenario {spec.name!r} declares no [sweep] table"
            )
        grid = spec.sweep.grid()
        print(f"sweep: {len(grid)} point(s)", file=out)
        digest = spec.digest()
        for overrides in grid:
            point_ckpt_dir: Path | None = None
            if checkpoint_dir is not None:
                # one repro.ckpt/1 directory per grid point, keyed the
                # same way the orchestrator keys its jobs — the two
                # entry points share checkpoint trees
                from ..jobs.journal import job_key

                point_ckpt_dir = Path(checkpoint_dir) / job_key(
                    digest, overrides
                )
            line = run_sweep_point(
                spec,
                overrides,
                seed=seed,
                until=until,
                backend=backend,
                checkpoint_dir=point_ckpt_dir,
                checkpoint_every=checkpoint_every,
                checkpoint_seconds=checkpoint_seconds,
            )
            # flush per line: long campaigns piped through tee/head must
            # show progress, and journal/stdout orderings must agree
            print(line, file=out, flush=True)
        return 0

    engine = build_engine(spec, seed=seed, backend=backend)
    print(
        f"{spec.name}: engine {engine.algorithm}, "
        f"lattice {'x'.join(str(s) for s in spec.lattice_shape)}, "
        f"backend {engine.backend.name}",
        file=out,
    )

    if resume is not None:
        from ..resilience.runs import _resolve_resume

        path = _resolve_resume(resume, checkpoint_dir)
        engine.resume(path)
        print(f"resumed from {path}", file=out)
    from ..resilience.runs import _engine_time

    if _engine_time(engine) >= horizon:
        print(
            f"nothing to do: t={_engine_time(engine):g} >= until={horizon:g}",
            file=out,
        )
        print(_digest_line(engine), file=out)
        return 0

    if checkpoint_dir is not None:
        from ..resilience.checkpoint import (
            Checkpointer,
            CheckpointPolicy,
            use_checkpoints,
        )

        if checkpoint_every is None and checkpoint_seconds is None:
            checkpoint_every = 10
        ckpt = Checkpointer(
            Path(checkpoint_dir),
            CheckpointPolicy(
                every_steps=checkpoint_every, every_seconds=checkpoint_seconds
            ),
            tag=spec.name,
        )
        try:
            with use_checkpoints(ckpt):
                engine.run(until=horizon)
        except KeyboardInterrupt as exc:
            print(f"interrupted: {exc}", file=out)
            print(_digest_line(engine), file=out)
            return 130
        ckpt.flush(engine)
        if ckpt.last_path is not None:
            print(f"last checkpoint: {ckpt.last_path}", file=out)
    else:
        engine.run(until=horizon)

    print(
        f"{spec.name}: t={_engine_time(engine):g}, "
        f"trials={int(np.sum(engine.n_trials))}",
        file=out,
    )
    print(_digest_line(engine), file=out)
    return 0
