"""Compile validated scenario specs into models and engines.

Inline reaction lists go through the existing
:class:`repro.core.builder.ModelBuilder` vocabulary — a scenario can
express exactly what the builder can, nothing more — while
``model.preset`` references the curated model constructors of
:mod:`repro.models` (the Jansen-catalogue zoo entries use both forms).

Compilation is gated: :func:`compile_scenario` refuses any scenario
whose model fails the ``repro lint`` sanity preflight (SR010–SR016)
and, for the parallel engine kinds, any partition the symbolic race
detector cannot prove conflict-free — the same
:class:`~repro.lint.engine.LintError` gates the engine constructors
enforce, surfaced at load time instead of mid-run.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.builder import ModelBuilder
from ..core.lattice import Lattice
from ..core.model import Model
from .spec import (
    PARALLEL_KINDS,
    ModelSpec,
    ScenarioError,
    ScenarioSpec,
)

__all__ = [
    "PRESETS",
    "build_model",
    "build_partition",
    "build_engine",
    "compile_scenario",
    "lint_scenario",
]


def _preset_ziff(**params):
    from ..models import ziff_model

    return ziff_model(**params), None


def _preset_zgb(**params):
    from ..models import zgb_model

    return zgb_model(**params), None


def _preset_pt100(**params):
    from ..models import pt100_model

    # runs start from the clean hex phase (the all-"h" default fill)
    return pt100_model(params or None), ["h"]


def _preset_diffusion_2d(**params):
    from ..models import diffusion_model_2d

    return diffusion_model_2d(**params), ["*", "A"]


#: preset name -> callable(**params) -> (Model, lint initial species | None)
PRESETS: dict[str, Callable[..., tuple[Model, list[str] | None]]] = {
    "ziff": _preset_ziff,
    "zgb": _preset_zgb,
    "pt100": _preset_pt100,
    "diffusion-2d": _preset_diffusion_2d,
}


def _check_preset_params(preset: str, params: Mapping[str, Any]) -> None:
    """Reject unknown preset parameters before calling the constructor."""
    target = {
        "ziff": ("k_co", "k_o2", "k_co2"),
        "zgb": ("y", "k_reaction"),
        "diffusion-2d": ("rate",),
    }.get(preset)
    if target is None:  # pt100: rate-key dict validated by the model itself
        return
    unknown = sorted(set(params) - set(target))
    if unknown:
        raise ScenarioError(
            f"model.params: unknown parameter(s) {unknown} for preset "
            f"{preset!r}; known: {sorted(target)}"
        )


def build_model(
    model_spec: ModelSpec,
    name: str,
    params_override: Mapping[str, Any] | None = None,
    rates_override: Mapping[str, float] | None = None,
) -> tuple[Model, list[str] | None]:
    """Spec -> ``(Model, lint initial species)``.

    ``params_override`` (presets) and ``rates_override`` (inline
    reactions) apply one sweep point; base values come from the spec.
    """
    if model_spec.preset is not None:
        try:
            fn = PRESETS[model_spec.preset]
        except KeyError:
            raise ScenarioError(
                f"model.preset: unknown preset {model_spec.preset!r}; "
                f"known: {sorted(PRESETS)}"
            ) from None
        params = dict(model_spec.params)
        if params_override:
            params.update(params_override)
        _check_preset_params(model_spec.preset, params)
        try:
            return fn(**params)
        except (TypeError, KeyError, ValueError) as exc:
            raise ScenarioError(
                f"model.preset {model_spec.preset!r}: {exc}"
            ) from None

    rates = dict(rates_override or {})
    unknown = sorted(set(rates) - {r.name for r in model_spec.reactions})
    if unknown:
        raise ScenarioError(
            f"rate override(s) {unknown} name no declared reaction"
        )
    builder = ModelBuilder(name, species=model_spec.species, ndim=model_spec.ndim)
    for r in model_spec.reactions:
        rate = rates.get(r.name, r.rate)
        method = getattr(builder, r.type)
        kwargs = dict(r.args)
        try:
            if r.type == "pair_reaction":
                method(r.name, rate=rate, **kwargs)
            elif r.type == "transformation":
                method(r.name, kwargs["src"], kwargs["tgt"], rate=rate)
            else:  # adsorption/desorption/dissociative_adsorption/hop
                method(r.name, kwargs["species"], rate=rate)
        except ValueError as exc:
            raise ScenarioError(f"model.reactions ({r.name!r}): {exc}") from None
    try:
        return builder.build(), None
    except ValueError as exc:
        raise ScenarioError(f"model: {exc}") from None


def build_partition(partition_spec: str, lattice: Lattice, model: Model):
    """Resolve an ``engine.partition`` string to a concrete partition.

    ``"five-chunk"`` is the paper's Fig. 4 tiling, ``"checkerboard"``
    the 2-colour block tiling, ``"auto"`` searches the smallest
    conflict-free modular tiling for the model, and ``"M:C0,C1"`` is an
    explicit modular labelling.
    """
    from ..partition.tilings import (
        checkerboard,
        find_modular_tiling,
        five_chunk_partition,
        modular_tiling,
    )

    if partition_spec == "five-chunk":
        return five_chunk_partition(lattice)
    if partition_spec == "checkerboard":
        return checkerboard(lattice)
    if partition_spec == "auto":
        try:
            m, coeffs = find_modular_tiling(model)
        except ValueError as exc:
            raise ScenarioError(f"engine.partition 'auto': {exc}") from None
        return modular_tiling(lattice, m, coeffs)
    m_str, sep, coeff_str = partition_spec.partition(":")
    if sep:
        try:
            m = int(m_str)
            coeffs = tuple(int(c) for c in coeff_str.split(","))
            return modular_tiling(lattice, m, coeffs)
        except ValueError as exc:
            raise ScenarioError(
                f"engine.partition {partition_spec!r}: {exc}"
            ) from None
    raise ScenarioError(
        f"engine.partition: unknown partition {partition_spec!r}; use "
        f"'five-chunk', 'checkerboard', 'auto' or 'M:C0,C1'"
    )


def _initial_configuration(spec: ScenarioSpec, model: Model, lattice: Lattice):
    """The run's starting configuration (None -> engine default)."""
    if spec.run.initial is None:
        return None
    from ..core.state import Configuration

    if spec.run.initial not in model.species:
        raise ScenarioError(
            f"run.initial: species {spec.run.initial!r} is not in the model "
            f"domain {list(model.species)}"
        )
    return Configuration.filled(lattice, model.species, spec.run.initial)


def build_engine(
    spec: ScenarioSpec,
    *,
    seed: int | None = None,
    params_override: Mapping[str, Any] | None = None,
    rates_override: Mapping[str, float] | None = None,
    metrics=None,
    backend: str | None = None,
):
    """Construct the scenario's engine, ready to ``run(until=...)``.

    The engine constructors run their own lint preflights (model sanity
    and, for parallel kinds, the partition race proof) — a scenario that
    compiles here is exactly one ``repro lint`` accepts.
    """
    model, _ = build_model(
        spec.model, spec.name,
        params_override=params_override, rates_override=rates_override,
    )
    lattice = Lattice(spec.lattice_shape)
    run_seed = spec.run.seed if seed is None else seed
    be = backend if backend is not None else spec.engine.backend
    common: dict[str, Any] = {"seed": run_seed, "backend": be}
    if metrics is not None:
        common["metrics"] = metrics
    initial = _initial_configuration(spec, model, lattice)
    if initial is not None:
        common["initial"] = initial
    e = spec.engine
    kind = e.kind
    if kind in PARALLEL_KINDS:
        partition = build_partition(e.partition, lattice, model)
    if kind == "rsm":
        from ..dmc.rsm import RSM

        return RSM(model, lattice, **common)
    if kind == "ndca":
        from ..ca.ndca import NDCA

        return NDCA(model, lattice, **common)
    if kind == "typepart":
        from ..ca.typepart import TypePartitionedCA

        return TypePartitionedCA(model, lattice, **common)
    if kind == "pndca":
        from ..ca.pndca import PNDCA

        return PNDCA(
            model, lattice, partition=partition,
            strategy=e.strategy or "random-order", **common,
        )
    if kind == "lpndca":
        from ..ca.lpndca import LPNDCA

        return LPNDCA(
            model, lattice, partition=partition,
            L=e.L if e.L is not None else 1,
            chunk_selection=e.chunk_selection or "size-proportional",
            **common,
        )
    # ensembles: replicas + optional sampling grid
    common["n_replicas"] = e.n_replicas
    if e.sample_interval is not None:
        common["sample_interval"] = e.sample_interval
    if kind == "ensemble-rsm":
        from ..ensemble.rsm import EnsembleRSM

        return EnsembleRSM(model, lattice, **common)
    if kind == "ensemble-ndca":
        from ..ensemble.ndca import EnsembleNDCA

        return EnsembleNDCA(model, lattice, **common)
    if kind == "ensemble-pndca":
        from ..ensemble.pndca import EnsemblePNDCA

        return EnsemblePNDCA(
            model, lattice, partition=partition,
            strategy=e.strategy or "random-order", schedule_seed=0, **common,
        )
    raise ScenarioError(f"engine.kind: unknown engine {kind!r}")  # unreachable


def lint_scenario(spec: ScenarioSpec):
    """The fail-closed preflight: model sanity + partition race proof.

    Returns the combined :class:`~repro.lint.diagnostics.LintReport`;
    raises :class:`~repro.lint.engine.LintError` when any
    error-severity diagnostic fires — a scenario the linter flags never
    reaches an engine.
    """
    from ..lint.engine import preflight_model, preflight_partition

    model, lint_initial = build_model(spec.model, spec.name)
    initial = [spec.run.initial] if spec.run.initial is not None else lint_initial
    # gates.mass_dt pins a CA step for the SR010 probability-mass proof;
    # None -> the canonical dt = 1/K, which passes by construction
    report = preflight_model(
        model, dt=spec.gates.mass_dt, initial_species=initial
    )
    if spec.engine.kind in PARALLEL_KINDS:
        lattice = Lattice(spec.lattice_shape)
        partition = build_partition(spec.engine.partition, lattice, model)
        report.extend(preflight_partition(partition, model))
    return report


def compile_scenario(spec: ScenarioSpec, **kwargs):
    """Preflight-lint the scenario, then build its engine.

    This is the loader's contract: anything ``repro lint`` flags is
    refused (``LintError``) before a single trial runs.
    """
    lint_scenario(spec)
    return build_engine(spec, **kwargs)
