"""The declarative scenario format: TOML schema, loader, validation.

A *scenario* is a complete, runnable description of a simulation —
model (inline reaction types or a named preset), lattice, engine and
chunk strategy, backend, seed, optional sweep grids, and acceptance
gates — in one ``repro.scenario/1`` TOML document::

    [scenario]
    name = "zgb"
    description = "ZGB CO oxidation at y = 0.51"

    [model]
    species = ["*", "CO", "O"]

    [[model.reactions]]
    name = "CO+O"
    type = "pair_reaction"
    a = "CO"
    b = "O"
    rate = 25.0

    [lattice]
    shape = [10, 10]

    [engine]
    kind = "rsm"

    [run]
    seed = 0
    until = 5.0

The loader is **fail-closed**: unknown keys at any level, wrong types,
non-positive or non-finite rates, undeclared species, malformed sweep
grids and inconsistent gate declarations are all rejected with a
:class:`ScenarioError` naming the offending key — nothing is guessed.
Model-level physics errors are caught one layer up by the ``repro
lint`` preflight (:func:`repro.scenario.compile.compile_scenario`).

Scenario identity is the :func:`ScenarioSpec.digest`: a SHA-256 over
the canonical JSON rendering of the *validated* document, so comments
and formatting do not change it but any semantic edit (a rate, the
lattice, the engine) does.  Completed runs are cache-keyable by
``(digest, params, seed)``; the digest is stamped into run output and
bench provenance.
"""

from __future__ import annotations

import hashlib
import json
import math
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "ModelSpec",
    "ReactionSpec",
    "EngineSpec",
    "RunSpec",
    "SweepSpec",
    "GatesSpec",
    "FingerprintGate",
    "MeanFieldGate",
    "load_scenario",
    "loads_scenario",
]

#: schema tag accepted by this loader
SCHEMA = "repro.scenario/1"

#: engine kinds the compiler knows how to construct
ENGINE_KINDS = (
    "rsm",
    "ndca",
    "pndca",
    "lpndca",
    "typepart",
    "ensemble-rsm",
    "ensemble-ndca",
    "ensemble-pndca",
)

#: engine kinds that execute chunks in parallel and therefore need a
#: conflict-free partition (proved by the lint preflight before any run)
PARALLEL_KINDS = ("pndca", "lpndca", "ensemble-pndca")

ENSEMBLE_KINDS = ("ensemble-rsm", "ensemble-ndca", "ensemble-pndca")

#: reaction vocabulary -> required keys (beyond name/type/rate)
REACTION_TYPES: dict[str, tuple[str, ...]] = {
    "adsorption": ("species",),
    "desorption": ("species",),
    "transformation": ("src", "tgt"),
    "dissociative_adsorption": ("species",),
    "pair_reaction": ("a", "b"),
    "hop": ("species",),
}

#: optional keys per reaction vocabulary entry
REACTION_OPTIONAL: dict[str, tuple[str, ...]] = {
    "pair_reaction": ("product_a", "product_b"),
}


class ScenarioError(ValueError):
    """A scenario document failed validation (CLI exit code 2)."""


# ----------------------------------------------------------------------
# validated spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReactionSpec:
    """One ``[[model.reactions]]`` entry (builder vocabulary)."""

    name: str
    type: str
    rate: float
    args: Mapping[str, str]  # vocabulary-specific species arguments


@dataclass(frozen=True)
class ModelSpec:
    """``[model]``: either a preset reference or inline reactions."""

    preset: str | None
    params: Mapping[str, Any]
    species: tuple[str, ...]
    ndim: int
    reactions: tuple[ReactionSpec, ...]


@dataclass(frozen=True)
class EngineSpec:
    """``[engine]``: kind plus its chunking/replica options."""

    kind: str
    partition: str | None
    strategy: str | None
    L: int | str | None
    chunk_selection: str | None
    n_replicas: int | None
    sample_interval: float | None
    backend: str | None


@dataclass(frozen=True)
class RunSpec:
    """``[run]``: seed, horizon, optional initial fill species."""

    seed: int
    until: float
    initial: str | None


@dataclass(frozen=True)
class SweepSpec:
    """``[sweep]``: cartesian grids over seed/until/params/rates."""

    seed: tuple[int, ...]
    until: tuple[float, ...]
    params: Mapping[str, tuple[Any, ...]]
    rates: Mapping[str, tuple[float, ...]]

    def grid(self) -> list[dict[str, Any]]:
        """Expand to the cartesian list of override dicts."""
        combos: list[dict[str, Any]] = [{}]

        def _extend(key: str, values: tuple) -> None:
            nonlocal combos
            combos = [{**c, key: v} for c in combos for v in values]

        if self.seed:
            _extend("seed", self.seed)
        if self.until:
            _extend("until", self.until)
        for name, values in self.params.items():
            _extend(f"params.{name}", values)
        for name, values in self.rates.items():
            _extend(f"rates.{name}", values)
        return combos


@dataclass(frozen=True)
class FingerprintGate:
    """Statistical-regression fingerprint: exact run digest at (seed, until)."""

    digest: str
    seed: int
    until: float


@dataclass(frozen=True)
class MeanFieldGate:
    """Mean-field cross-check: lattice coverages vs the closed ODE."""

    species: tuple[str, ...]
    t: float
    tol: float
    seed: int


@dataclass(frozen=True)
class GatesSpec:
    """``[gates]``: the scenario's acceptance criteria.

    ``mass_dt`` pins a CA time step for the SR010 probability-mass
    proof: the lint preflight must show ``K * mass_dt <= 1`` (the
    engines' canonical ``dt = 1/K`` always passes, so declaring a
    coarser step is an extra static claim about the rate budget).
    """

    fingerprint: FingerprintGate | None
    meanfield: MeanFieldGate | None
    mass_dt: float | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully validated scenario document."""

    name: str
    description: str
    model: ModelSpec
    lattice_shape: tuple[int, ...]
    engine: EngineSpec
    run: RunSpec
    sweep: SweepSpec | None
    gates: GatesSpec
    source: str = "<inline>"
    canonical: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def digest(self) -> str:
        """SHA-256 (hex) of the canonical JSON form of the document.

        Stable under comments/formatting/key order; changed by any
        semantic edit.  The first 16 hex digits are used in output
        lines, mirroring the run-digest convention.
        """
        blob = json.dumps(
            self.canonical, sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def short_digest(self) -> str:
        """First 16 hex digits of :meth:`digest`."""
        return self.digest()[:16]


# ----------------------------------------------------------------------
# validation helpers — every reader is fail-closed
# ----------------------------------------------------------------------
def _err(msg: str) -> ScenarioError:
    return ScenarioError(msg)


def _require_table(doc: Mapping, key: str, where: str) -> Mapping:
    value = doc.get(key)
    if value is None:
        raise _err(f"{where}: missing required table [{key}]")
    if not isinstance(value, Mapping):
        raise _err(f"{where}: [{key}] must be a table, got {type(value).__name__}")
    return value


def _reject_unknown(table: Mapping, allowed: tuple[str, ...], where: str) -> None:
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise _err(
            f"{where}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _get_str(table: Mapping, key: str, where: str, default: str | None = None) -> str | None:
    if key not in table:
        return default
    v = table[key]
    if not isinstance(v, str):
        raise _err(f"{where}.{key}: expected a string, got {type(v).__name__}")
    return v


def _get_bool_free_number(v: Any) -> bool:
    # TOML booleans parse as bool, which is an int subclass in python
    return isinstance(v, bool)


def _get_number(table: Mapping, key: str, where: str, default=None):
    if key not in table:
        return default
    v = table[key]
    if _get_bool_free_number(v) or not isinstance(v, (int, float)):
        raise _err(f"{where}.{key}: expected a number, got {type(v).__name__}")
    return v


def _get_int(table: Mapping, key: str, where: str, default=None):
    if key not in table:
        return default
    v = table[key]
    if _get_bool_free_number(v) or not isinstance(v, int):
        raise _err(f"{where}.{key}: expected an integer, got {type(v).__name__}")
    return v


def _positive_rate(value: Any, where: str) -> float:
    if _get_bool_free_number(value) or not isinstance(value, (int, float)):
        raise _err(f"{where}: rate must be a number, got {type(value).__name__}")
    rate = float(value)
    if not math.isfinite(rate):
        raise _err(f"{where}: rate must be finite, got {rate!r}")
    if rate <= 0.0:
        raise _err(f"{where}: rate must be strictly positive, got {rate:g}")
    return rate


def _parse_reaction(entry: Any, index: int, species: tuple[str, ...]) -> ReactionSpec:
    where = f"model.reactions[{index}]"
    if not isinstance(entry, Mapping):
        raise _err(f"{where}: expected a table, got {type(entry).__name__}")
    name = _get_str(entry, "name", where)
    if not name:
        raise _err(f"{where}: missing required key 'name'")
    rtype = _get_str(entry, "type", where)
    if rtype is None:
        raise _err(f"{where} ({name!r}): missing required key 'type'")
    if rtype not in REACTION_TYPES:
        raise _err(
            f"{where} ({name!r}): unknown reaction type {rtype!r}; "
            f"known: {sorted(REACTION_TYPES)}"
        )
    required = REACTION_TYPES[rtype]
    optional = REACTION_OPTIONAL.get(rtype, ())
    _reject_unknown(
        entry, ("name", "type", "rate") + required + optional, f"{where} ({name!r})"
    )
    if "rate" not in entry:
        raise _err(f"{where} ({name!r}): missing required key 'rate'")
    rate = _positive_rate(entry["rate"], f"{where} ({name!r}).rate")
    args: dict[str, str] = {}
    for key in required + optional:
        if key not in entry:
            if key in optional:
                continue
            raise _err(f"{where} ({name!r}): missing required key {key!r}")
        value = entry[key]
        if not isinstance(value, str):
            raise _err(
                f"{where} ({name!r}).{key}: expected a species name, "
                f"got {type(value).__name__}"
            )
        if value not in species:
            raise _err(
                f"{where} ({name!r}).{key}: species {value!r} is not declared "
                f"in model.species {list(species)}"
            )
        args[key] = value
    return ReactionSpec(name=name, type=rtype, rate=rate, args=args)


def _parse_model(doc: Mapping) -> ModelSpec:
    table = _require_table(doc, "model", "scenario")
    preset = _get_str(table, "preset", "model")
    if preset is not None:
        _reject_unknown(table, ("preset", "params"), "model")
        params = table.get("params", {})
        if not isinstance(params, Mapping):
            raise _err("model.params: expected a table")
        return ModelSpec(
            preset=preset,
            params=dict(params),
            species=(),
            ndim=2,
            reactions=(),
        )
    _reject_unknown(table, ("species", "ndim", "reactions"), "model")
    species_raw = table.get("species")
    if not isinstance(species_raw, list) or not species_raw:
        raise _err("model.species: expected a non-empty list of species names")
    if not all(isinstance(s, str) for s in species_raw):
        raise _err("model.species: every entry must be a string")
    if len(set(species_raw)) != len(species_raw):
        raise _err(f"model.species: duplicate species in {species_raw}")
    species = tuple(species_raw)
    ndim = _get_int(table, "ndim", "model", default=2)
    if ndim not in (1, 2):
        raise _err(f"model.ndim: must be 1 or 2, got {ndim}")
    reactions_raw = table.get("reactions")
    if not isinstance(reactions_raw, list) or not reactions_raw:
        raise _err(
            "model.reactions: expected a non-empty array of [[model.reactions]] "
            "tables (or use model.preset)"
        )
    reactions = tuple(
        _parse_reaction(entry, i, species) for i, entry in enumerate(reactions_raw)
    )
    names = [r.name for r in reactions]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise _err(f"model.reactions: duplicate reaction names {dupes}")
    return ModelSpec(
        preset=None, params={}, species=species, ndim=ndim, reactions=reactions
    )


def _parse_lattice(doc: Mapping, ndim: int) -> tuple[int, ...]:
    table = _require_table(doc, "lattice", "scenario")
    _reject_unknown(table, ("shape",), "lattice")
    shape_raw = table.get("shape")
    if not isinstance(shape_raw, list) or not shape_raw:
        raise _err("lattice.shape: expected a non-empty list of side lengths")
    for s in shape_raw:
        if _get_bool_free_number(s) or not isinstance(s, int) or s < 1:
            raise _err(f"lattice.shape: sides must be positive integers, got {shape_raw}")
    shape = tuple(shape_raw)
    if len(shape) != ndim:
        raise _err(
            f"lattice.shape: {len(shape)}-d shape {list(shape)} does not match "
            f"the model dimensionality ({ndim}-d)"
        )
    return shape


_ENGINE_KEYS = (
    "kind",
    "partition",
    "strategy",
    "L",
    "chunk_selection",
    "n_replicas",
    "sample_interval",
    "backend",
)


def _parse_engine(doc: Mapping) -> EngineSpec:
    table = _require_table(doc, "engine", "scenario")
    _reject_unknown(table, _ENGINE_KEYS, "engine")
    kind = _get_str(table, "kind", "engine")
    if kind is None:
        raise _err("engine.kind: missing required key")
    if kind not in ENGINE_KINDS:
        raise _err(
            f"engine.kind: unknown engine {kind!r}; known: {sorted(ENGINE_KINDS)}"
        )
    partition = _get_str(table, "partition", "engine")
    strategy = _get_str(table, "strategy", "engine")
    chunk_selection = _get_str(table, "chunk_selection", "engine")
    backend = _get_str(table, "backend", "engine")
    L: int | str | None = None
    if "L" in table:
        v = table["L"]
        if isinstance(v, str):
            if v != "chunk":
                raise _err(f"engine.L: must be a positive integer or 'chunk', got {v!r}")
            L = v
        elif isinstance(v, int) and not isinstance(v, bool) and v >= 1:
            L = v
        else:
            raise _err(f"engine.L: must be a positive integer or 'chunk', got {v!r}")
    n_replicas = _get_int(table, "n_replicas", "engine")
    if n_replicas is not None and n_replicas < 1:
        raise _err(f"engine.n_replicas: must be >= 1, got {n_replicas}")
    sample_interval = _get_number(table, "sample_interval", "engine")
    if sample_interval is not None and not sample_interval > 0:
        raise _err(f"engine.sample_interval: must be positive, got {sample_interval}")

    # option/kind consistency — refusing silently-ignored options keeps
    # scenario files honest about what actually ran
    if partition is not None and kind not in PARALLEL_KINDS:
        raise _err(f"engine.partition: engine kind {kind!r} takes no partition")
    if partition is None and kind in PARALLEL_KINDS:
        raise _err(
            f"engine.partition: engine kind {kind!r} needs a partition "
            f"('five-chunk', 'checkerboard', 'auto' or 'M:C0,C1')"
        )
    if strategy is not None and kind not in ("pndca", "ensemble-pndca"):
        raise _err(f"engine.strategy: engine kind {kind!r} takes no chunk strategy")
    if (L is not None or chunk_selection is not None) and kind != "lpndca":
        raise _err(f"engine.L/chunk_selection: only the 'lpndca' engine takes them")
    if n_replicas is not None and kind not in ENSEMBLE_KINDS:
        raise _err(f"engine.n_replicas: engine kind {kind!r} is not an ensemble")
    if n_replicas is None and kind in ENSEMBLE_KINDS:
        raise _err(f"engine.n_replicas: required for ensemble kind {kind!r}")
    if sample_interval is not None and kind not in ENSEMBLE_KINDS:
        raise _err(f"engine.sample_interval: only ensemble engines take it")
    return EngineSpec(
        kind=kind,
        partition=partition,
        strategy=strategy,
        L=L,
        chunk_selection=chunk_selection,
        n_replicas=n_replicas,
        sample_interval=sample_interval,
        backend=backend,
    )


def _parse_run(doc: Mapping, model: ModelSpec) -> RunSpec:
    table = _require_table(doc, "run", "scenario")
    _reject_unknown(table, ("seed", "until", "initial"), "run")
    seed = _get_int(table, "seed", "run", default=0)
    until = _get_number(table, "until", "run", default=5.0)
    if not until > 0:
        raise _err(f"run.until: must be positive, got {until}")
    initial = _get_str(table, "initial", "run")
    if initial is not None and model.preset is None and initial not in model.species:
        raise _err(
            f"run.initial: species {initial!r} is not declared in model.species "
            f"{list(model.species)}"
        )
    return RunSpec(seed=seed, until=float(until), initial=initial)


def _scalar_list(value: Any, where: str, kind) -> tuple:
    if not isinstance(value, list) or not value:
        raise _err(f"{where}: expected a non-empty list")
    out = []
    for v in value:
        if _get_bool_free_number(v) or not isinstance(v, kind):
            want = "integers" if kind is int else "numbers"
            raise _err(f"{where}: expected a list of {want}, got {value!r}")
        out.append(v)
    return tuple(out)


def _parse_sweep(doc: Mapping, model: ModelSpec) -> SweepSpec | None:
    table = doc.get("sweep")
    if table is None:
        return None
    if not isinstance(table, Mapping):
        raise _err("sweep: expected a table")
    _reject_unknown(table, ("seed", "until", "params", "rates"), "sweep")
    seed: tuple[int, ...] = ()
    until: tuple[float, ...] = ()
    if "seed" in table:
        seed = _scalar_list(table["seed"], "sweep.seed", int)
    if "until" in table:
        until = tuple(
            float(v)
            for v in _scalar_list(table["until"], "sweep.until", (int, float))
        )
        if any(u <= 0 for u in until):
            raise _err(f"sweep.until: horizons must be positive, got {list(until)}")
    params: dict[str, tuple] = {}
    if "params" in table:
        if model.preset is None:
            raise _err("sweep.params: only preset models take parameter sweeps")
        raw = table["params"]
        if not isinstance(raw, Mapping) or not raw:
            raise _err("sweep.params: expected a non-empty table of grids")
        for key, value in raw.items():
            params[key] = _scalar_list(value, f"sweep.params.{key}", (int, float))
    rates: dict[str, tuple[float, ...]] = {}
    if "rates" in table:
        if model.preset is not None:
            raise _err(
                "sweep.rates: preset models sweep via sweep.params, not sweep.rates"
            )
        raw = table["rates"]
        if not isinstance(raw, Mapping) or not raw:
            raise _err("sweep.rates: expected a non-empty table of grids")
        known = {r.name for r in model.reactions}
        for key, value in raw.items():
            if key not in known:
                raise _err(
                    f"sweep.rates: {key!r} names no declared reaction; "
                    f"known: {sorted(known)}"
                )
            grid = _scalar_list(value, f"sweep.rates.{key}", (int, float))
            rates[key] = tuple(
                _positive_rate(v, f"sweep.rates.{key}") for v in grid
            )
    if not (seed or until or params or rates):
        raise _err("sweep: declared but empty — remove the table or add a grid")
    return SweepSpec(seed=seed, until=until, params=params, rates=rates)


def _parse_gates(doc: Mapping, model: ModelSpec, run: RunSpec) -> GatesSpec:
    table = doc.get("gates", {})
    if not isinstance(table, Mapping):
        raise _err("gates: expected a table")
    _reject_unknown(table, ("fingerprint", "meanfield", "mass_dt"), "gates")
    mass_dt = _get_number(table, "mass_dt", "gates")
    if mass_dt is not None and not mass_dt > 0:
        raise _err(f"gates.mass_dt: must be a positive number, got {mass_dt!r}")
    fingerprint = None
    if "fingerprint" in table:
        fp = table["fingerprint"]
        if not isinstance(fp, Mapping):
            raise _err("gates.fingerprint: expected a table")
        _reject_unknown(fp, ("digest", "seed", "until"), "gates.fingerprint")
        digest = _get_str(fp, "digest", "gates.fingerprint")
        if digest is None:
            raise _err("gates.fingerprint.digest: missing required key")
        if len(digest) != 16 or any(c not in "0123456789abcdef" for c in digest):
            raise _err(
                f"gates.fingerprint.digest: expected 16 lowercase hex digits, "
                f"got {digest!r}"
            )
        until = _get_number(fp, "until", "gates.fingerprint", default=run.until)
        if not until > 0:
            raise _err(f"gates.fingerprint.until: must be positive, got {until}")
        fingerprint = FingerprintGate(
            digest=digest,
            seed=_get_int(fp, "seed", "gates.fingerprint", default=run.seed),
            until=float(until),
        )
    meanfield = None
    if "meanfield" in table:
        mf = table["meanfield"]
        if not isinstance(mf, Mapping):
            raise _err("gates.meanfield: expected a table")
        _reject_unknown(mf, ("species", "t", "tol", "seed"), "gates.meanfield")
        species_raw = mf.get("species")
        if not isinstance(species_raw, list) or not species_raw:
            raise _err("gates.meanfield.species: expected a non-empty list")
        for s in species_raw:
            if not isinstance(s, str):
                raise _err("gates.meanfield.species: every entry must be a string")
            if model.preset is None and s not in model.species:
                raise _err(
                    f"gates.meanfield.species: {s!r} is not declared in "
                    f"model.species {list(model.species)}"
                )
        t = _get_number(mf, "t", "gates.meanfield")
        if t is None or not t > 0:
            raise _err(f"gates.meanfield.t: must be a positive number, got {t!r}")
        tol = _get_number(mf, "tol", "gates.meanfield")
        if tol is None or not tol > 0:
            raise _err(f"gates.meanfield.tol: must be a positive number, got {tol!r}")
        meanfield = MeanFieldGate(
            species=tuple(species_raw),
            t=float(t),
            tol=float(tol),
            seed=_get_int(mf, "seed", "gates.meanfield", default=run.seed),
        )
    return GatesSpec(
        fingerprint=fingerprint,
        meanfield=meanfield,
        mass_dt=float(mass_dt) if mass_dt is not None else None,
    )


_TOP_KEYS = ("scenario", "model", "lattice", "engine", "run", "sweep", "gates")


def _canonicalise(value: Any) -> Any:
    """TOML value -> JSON-safe canonical value (digest input)."""
    if isinstance(value, Mapping):
        return {str(k): _canonicalise(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_canonicalise(v) for v in value]
    if isinstance(value, float) and value.is_integer():
        return value  # json renders 5.0 distinctly from 5; keep as-is
    return value


def loads_scenario(text: str, source: str = "<inline>") -> ScenarioSpec:
    """Parse and validate one scenario document from TOML text."""
    try:
        doc = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise _err(f"{source}: not valid TOML: {exc}") from None
    _reject_unknown(doc, _TOP_KEYS, source)
    head = _require_table(doc, "scenario", source)
    _reject_unknown(head, ("name", "description", "schema"), "scenario")
    schema = _get_str(head, "schema", "scenario", default=SCHEMA)
    if schema != SCHEMA:
        raise _err(f"scenario.schema: expected {SCHEMA!r}, got {schema!r}")
    name = _get_str(head, "name", "scenario")
    if not name:
        raise _err("scenario.name: missing required key")
    description = _get_str(head, "description", "scenario", default="") or ""
    model = _parse_model(doc)
    lattice_shape = _parse_lattice(doc, model.ndim)
    engine = _parse_engine(doc)
    run = _parse_run(doc, model)
    sweep = _parse_sweep(doc, model)
    gates = _parse_gates(doc, model, run)
    return ScenarioSpec(
        name=name,
        description=description,
        model=model,
        lattice_shape=lattice_shape,
        engine=engine,
        run=run,
        sweep=sweep,
        gates=gates,
        source=source,
        canonical=_canonicalise(doc),
    )


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load and validate one scenario file."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise _err(f"cannot read scenario file {p}: {exc}") from None
    return loads_scenario(text, source=str(p))
