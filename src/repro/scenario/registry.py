"""The scenario registry: shipped zoo entries plus ad-hoc files.

Zoo scenarios live as TOML files in ``repro/scenario/zoo/`` and ship
with the package; :func:`scenario_registry` loads and validates every
one (fail-closed: a broken shipped scenario is an import-time error of
the registry, not a latent surprise).  :func:`find_scenario` is the
CLI's resolution rule: an argument ending in ``.toml`` is a file path,
anything else is looked up in the registry by its ``scenario.name``.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path

from .spec import ScenarioError, ScenarioSpec, load_scenario, loads_scenario

__all__ = [
    "scenario_registry",
    "scenario_names",
    "get_scenario",
    "find_scenario",
    "is_scenario_ref",
]

_registry_cache: dict[str, ScenarioSpec] | None = None


def _zoo_files():
    root = resources.files(__package__) / "zoo"
    return sorted(
        (entry for entry in root.iterdir() if entry.name.endswith(".toml")),
        key=lambda e: e.name,
    )


def scenario_registry(refresh: bool = False) -> dict[str, ScenarioSpec]:
    """Name -> validated spec for every shipped zoo scenario."""
    global _registry_cache
    if _registry_cache is None or refresh:
        registry: dict[str, ScenarioSpec] = {}
        for entry in _zoo_files():
            spec = loads_scenario(entry.read_text(), source=f"zoo/{entry.name}")
            if spec.name in registry:
                raise ScenarioError(
                    f"zoo/{entry.name}: duplicate scenario name {spec.name!r} "
                    f"(also declared by {registry[spec.name].source})"
                )
            registry[spec.name] = spec
        _registry_cache = registry
    return _registry_cache


def scenario_names() -> list[str]:
    """Sorted names of the shipped zoo scenarios."""
    return sorted(scenario_registry())


def get_scenario(name: str) -> ScenarioSpec:
    """One zoo scenario by name; raises :class:`ScenarioError` if unknown."""
    registry = scenario_registry()
    try:
        return registry[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {sorted(registry)}"
        ) from None


def is_scenario_ref(arg: str) -> bool:
    """Does a CLI ``run`` argument denote a scenario (file or zoo name)?"""
    if arg.endswith(".toml"):
        return True
    return arg in scenario_registry()


def find_scenario(arg: str) -> ScenarioSpec:
    """Resolve a CLI argument to a validated spec (path or zoo name)."""
    if arg.endswith(".toml"):
        return load_scenario(Path(arg))
    return get_scenario(arg)
