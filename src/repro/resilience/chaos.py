"""Deterministic chaos harness: seeded fault injection for recovery paths.

Fault tolerance that is never exercised is a hope, not a property.
This module injects the failure modes the resilience and jobs layers
claim to survive — reproducibly, so every recovery path runs in the
test suite on every commit:

``kill-worker``
    A pool worker SIGKILLs itself at the start of its slice, mid-chunk
    (exactly the failure that used to hang ``pool.starmap`` forever);
``delay-slice``
    a slice sleeps past the executor's per-chunk deadline before doing
    any work (a stuck worker);
``corrupt-checkpoint``
    a just-written checkpoint file is truncated or byte-flipped (a
    crash or bad disk after the atomic rename);
``fail-emit``
    the checkpoint write raises ``OSError`` before touching the file
    (disk full / permissions at emit time);
``kill-job``
    a batch-orchestrator worker SIGKILLs itself before touching any
    state of its assigned job (a node death mid-campaign);
``stall-job``
    a job worker sleeps past the orchestrator's per-job deadline
    before doing any work (a wedged job);
``corrupt-journal``
    the just-appended journal record is truncated or byte-flipped —
    the torn-tail write a crash mid-append produces.

Determinism contract: a :class:`ChaosMonkey` fires a fault when the
*poll counter* of the fault's channel reaches ``FaultSpec.at`` — the
n-th chunk dispatch, the n-th checkpoint write — independent of wall
clock or scheduling.  The seeded generator is used only for payload
details (corruption offsets), so a given ``(seed, faults)`` pair
replays the identical failure scenario every time.

Wiring: pass the monkey as ``chaos=`` to
:class:`repro.parallel.executor.ParallelChunkExecutor` (channel
``"chunk"``), :class:`repro.resilience.checkpoint.Checkpointer`
(channels ``"checkpoint"`` and ``"emit"``), and/or
:class:`repro.jobs.orchestrator.JobOrchestrator` (channels ``"job"``
and ``"journal"``; the CLI spelling is ``repro sweep --chaos
kill-job@3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["CHAOS_KINDS", "FaultSpec", "ChaosMonkey"]

#: fault kind -> the poll channel it listens on
CHAOS_KINDS: dict[str, str] = {
    "kill-worker": "chunk",
    "delay-slice": "chunk",
    "corrupt-checkpoint": "checkpoint",
    "fail-emit": "emit",
    "kill-job": "job",
    "stall-job": "job",
    "corrupt-journal": "journal",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on the ``at``-th channel poll.

    ``delay`` (seconds) parameterises ``delay-slice``; ``mode``
    (``"truncate"`` or ``"flip"``) parameterises ``corrupt-checkpoint``.
    """

    kind: str
    at: int = 1
    delay: float = 2.0
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(CHAOS_KINDS)}"
            )
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.mode not in ("truncate", "flip"):
            raise ValueError(f"unknown corruption mode {self.mode!r}")


@dataclass
class ChaosMonkey:
    """Seeded deterministic fault injector.

    Parameters
    ----------
    seed:
        Seeds the generator used for corruption payload details only
        (never for *when* a fault fires — that is the poll counter).
    faults:
        The :class:`FaultSpec` schedule.  Each spec fires exactly once.

    The :attr:`fired` log records ``(kind, channel, poll_count)`` for
    every fault delivered, so tests can assert the scenario actually
    happened.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()
    fired: list[tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)
        self.rng = np.random.default_rng(self.seed)
        self._counts: dict[str, int] = {}
        self._delivered: set[int] = set()

    def poll(self, channel: str) -> FaultSpec | None:
        """Advance the channel's poll counter; return a fault due now."""
        count = self._counts.get(channel, 0) + 1
        self._counts[channel] = count
        for i, spec in enumerate(self.faults):
            if i in self._delivered:
                continue
            if CHAOS_KINDS[spec.kind] == channel and spec.at == count:
                self._delivered.add(i)
                self.fired.append((spec.kind, channel, count))
                return spec
        return None

    @property
    def exhausted(self) -> bool:
        """True when every scheduled fault has been delivered."""
        return len(self._delivered) == len(self.faults)

    def corrupt_file(
        self,
        path: str | Path,
        mode: str = "truncate",
        tail: int | None = None,
    ) -> None:
        """Damage a file deterministically (truncate / flip a byte).

        With ``tail=N`` the damage is confined to the file's last ``N``
        bytes — the shape of a *torn write*, where only the record
        being appended when the crash hit can be incomplete.  The jobs
        layer passes the final journal line's length here, so
        ``corrupt-journal`` produces exactly the failure the torn-tail
        recovery path claims to survive.  Without ``tail`` the whole
        file is fair game (the checkpoint-corruption behaviour,
        draw-for-draw identical to previous releases).
        """
        path = Path(path)
        data = path.read_bytes()
        if not data:
            return
        start = 0 if tail is None else max(0, len(data) - tail)
        if mode == "truncate":
            # keep a non-empty prefix so the damage is a *plausible*
            # partial write, not an obviously empty file
            if tail is None:
                keep = max(1, int(self.rng.integers(1, max(2, len(data)))))
                path.write_bytes(data[: min(keep, len(data) - 1)])
            else:
                # cut inside the tail region: at least one tail byte
                # survives, at least one is lost
                lo = min(start + 1, len(data) - 1)
                keep = int(self.rng.integers(lo, len(data)))
                path.write_bytes(data[:keep])
        else:  # flip
            pos = int(self.rng.integers(start, len(data)))
            flipped = bytes([data[pos] ^ 0xFF])
            path.write_bytes(data[:pos] + flipped + data[pos + 1 :])
