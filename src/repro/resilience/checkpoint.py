"""Checkpoint/resume: the ``repro.ckpt/1`` schema and the run-loop hook.

A checkpoint snapshots everything an engine's ``run()`` loop mutates —
lattice state, RNG ``bit_generator.state`` (read through the
transparent :class:`~repro.obs.metrics.CountingGenerator` wrapper when
metrics are on), simulation time, trial counts, per-type executed
counts, engine-specific extras (e.g. the PNDCA partition-cycle step
number) and the observers' sampled series — plus a fingerprint of the
model/lattice/algorithm binding so a checkpoint can never be restored
into the wrong engine.  Restoring all of it makes the hard guarantee
hold: a run checkpointed at step ``k`` and resumed is **bit-identical**
to the same run uninterrupted (asserted for every engine in
``tests/test_resilience.py``).

Schema ``repro.ckpt/1``::

    {
      "schema":  "repro.ckpt/1",
      "crc32":   int,       # CRC-32 of the canonical payload JSON
      "payload": {
        "kind":              "simulator" | "ensemble",
        "algorithm":         str,
        "model":             str,
        "lattice":           [int, ...],
        "time_mode":         str,
        "fingerprint":       str,     # sha-256/16 of the engine binding
        "seed":              int | null,
        "time" / "times":    float / [float, ...],
        "n_trials":          int / [int, ...],
        "executed_per_type": nested ints,
        "state" / "states":  {"dtype", "shape", "data"}  (base64),
        "rng" / "rngs":      bit-generator state dict(s),
        "extra":             engine-specific dict,
        "observers" / "samples": observer / sampling state
      }
    }

Files are written atomically (:func:`repro.obs.emit.write_json_atomic`)
so a crash mid-write never leaves a truncated checkpoint; damage that
slips through anyway (truncation by a dying filesystem, a flipped
byte) is caught by the CRC and raised as
:class:`CheckpointCorruptError` *naming the last good checkpoint in
the directory* instead of a bare deserialization traceback.
"""

from __future__ import annotations

import base64
import json
import re
import signal as _signal
import time as _time
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..obs.emit import write_json_atomic
from ..obs.metrics import MetricsCollector, current_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import ChaosMonkey

__all__ = [
    "CKPT_SCHEMA",
    "ResilienceError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "Checkpointer",
    "checkpoint_paths",
    "current_checkpointer",
    "use_checkpoints",
    "encode_array",
    "decode_array",
    "engine_fingerprint",
    "last_good_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
]

#: schema identifier stamped into every checkpoint file
CKPT_SCHEMA = "repro.ckpt/1"

#: checkpoint file name pattern: ``ckpt_<tag>_<trials>.json``
_CKPT_NAME = re.compile(r"^ckpt_.+_(\d+)\.json$")


class ResilienceError(RuntimeError):
    """Base class for checkpoint/recovery failures."""


class CheckpointCorruptError(ResilienceError):
    """A checkpoint file is truncated, CRC-mismatched or malformed."""


class CheckpointMismatchError(ResilienceError):
    """A checkpoint does not belong to the engine trying to restore it."""


# ----------------------------------------------------------------------
# array / rng-state codecs
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> dict:
    """Encode an array as ``{dtype, shape, data}`` with base64 payload."""
    a = np.ascontiguousarray(array)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_array(record: dict) -> np.ndarray:
    """Decode the output of :func:`encode_array` (exact round trip)."""
    try:
        raw = base64.b64decode(record["data"], validate=True)
        a = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
        return a.reshape(record["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorruptError(f"undecodable array record: {exc}") from exc


def _plain(value: Any) -> Any:
    """Recursively coerce a bit-generator state dict to plain JSON types."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.ndarray):
        # Philox/SFC-style states carry arrays; keep them restorable
        return {"__ndarray__": encode_array(value)}
    return value


def _unplain(value: Any) -> Any:
    """Invert :func:`_plain` (restores embedded arrays)."""
    if isinstance(value, dict):
        if set(value) == {"__ndarray__"}:
            return decode_array(value["__ndarray__"])
        return {k: _unplain(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unplain(v) for v in value]
    return value


def rng_state(rng: Any) -> dict:
    """The JSON-safe bit-generator state of a (possibly wrapped) Generator."""
    bg = rng.bit_generator  # CountingGenerator delegates transparently
    return {"bit_generator": type(bg).__name__, "state": _plain(bg.state)}


def restore_rng_state(rng: Any, record: dict) -> None:
    """Restore a bit-generator state captured by :func:`rng_state`."""
    bg = rng.bit_generator
    name = type(bg).__name__
    if record.get("bit_generator") != name:
        raise CheckpointMismatchError(
            f"checkpoint was taken with bit generator "
            f"{record.get('bit_generator')!r}, engine uses {name!r}"
        )
    bg.state = _unplain(record["state"])


# ----------------------------------------------------------------------
# fingerprint: refuse to restore into the wrong engine
# ----------------------------------------------------------------------
def engine_fingerprint(engine: Any) -> str:
    """Short digest of the engine's model/lattice/algorithm binding.

    Covers everything that shapes the trajectory: species registry,
    reaction types with rates, lattice shape, the algorithm label
    (which encodes strategy/partition parameters) and the time mode.
    Two engines restore-compatible exactly when fingerprints match.
    """
    import hashlib

    model = engine.model
    spec = {
        "algorithm": engine.algorithm,
        "model": model.name,
        "species": list(model.species.names),
        "reactions": [
            [rt.name, float(rt.rate), rt.group] for rt in model.reaction_types
        ],
        "lattice": list(engine.lattice.shape),
        "time_mode": engine.time_mode,
        "replicas": int(getattr(engine, "n_replicas", 1)),
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------------
# file format: atomic write, CRC-guarded load
# ----------------------------------------------------------------------
def _payload_crc(payload: dict) -> int:
    """CRC-32 over the canonical (sorted, compact) payload JSON."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def write_checkpoint(path: str | Path, payload: dict) -> Path:
    """Wrap ``payload`` in the ``repro.ckpt/1`` envelope and write atomically."""
    record = {
        "schema": CKPT_SCHEMA,
        "crc32": _payload_crc(payload),
        "payload": payload,
    }
    return write_json_atomic(path, record)


def _load_raw(path: Path) -> dict:
    """Parse and CRC-check one checkpoint file (no directory context)."""
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointCorruptError(f"{path}: unreadable: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise CheckpointCorruptError(
            f"{path}: not valid UTF-8 (corrupt checkpoint): {exc}"
        ) from exc
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"{path}: not valid JSON (truncated or corrupt checkpoint): {exc}"
        ) from exc
    if not isinstance(record, dict) or not isinstance(record.get("payload"), dict):
        raise CheckpointCorruptError(f"{path}: not a checkpoint envelope")
    if record.get("schema") != CKPT_SCHEMA:
        raise CheckpointCorruptError(
            f"{path}: unknown schema {record.get('schema')!r} "
            f"(expected {CKPT_SCHEMA!r})"
        )
    crc = _payload_crc(record["payload"])
    if record.get("crc32") != crc:
        raise CheckpointCorruptError(
            f"{path}: CRC mismatch (stored {record.get('crc32')!r}, "
            f"computed {crc}) — the file was corrupted after writing"
        )
    return record["payload"]


def checkpoint_paths(directory: str | Path) -> list[Path]:
    """All ``ckpt_*.json`` files of a directory, oldest first.

    Ordered by the trial counter embedded in the file name (monotone
    across resumes), with name as tie-breaker.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for p in directory.iterdir():
        m = _CKPT_NAME.match(p.name)
        if m:
            found.append((int(m.group(1)), p.name, p))
    return [p for _, _, p in sorted(found)]


def last_good_checkpoint(
    directory: str | Path, exclude: Path | None = None
) -> Path | None:
    """Newest checkpoint in ``directory`` that parses and CRC-validates."""
    for path in reversed(checkpoint_paths(directory)):
        if exclude is not None and path.resolve() == Path(exclude).resolve():
            continue
        try:
            _load_raw(path)
        except CheckpointCorruptError:
            continue
        return path
    return None


def load_checkpoint(path: str | Path) -> dict:
    """Load and validate one checkpoint, failing with *useful* diagnostics.

    A truncated or CRC-mismatched file raises
    :class:`CheckpointCorruptError` whose message names the last good
    checkpoint remaining in the same directory (or says there is
    none) — the operator's next move, not a bare traceback.
    """
    path = Path(path)
    try:
        return _load_raw(path)
    except CheckpointCorruptError as exc:
        good = last_good_checkpoint(path.parent, exclude=path)
        if good is not None:
            hint = f"; last good checkpoint: {good}"
        else:
            hint = f"; no good checkpoint found in {path.parent}"
        raise CheckpointCorruptError(str(exc) + hint) from exc


# ----------------------------------------------------------------------
# policy + the run-loop hook
# ----------------------------------------------------------------------
class CheckpointPolicy:
    """When to checkpoint: every N step blocks and/or every T seconds.

    Either trigger (or both) may be set; with both, whichever fires
    first wins.  ``CheckpointPolicy()`` defaults to every step block —
    correct for tests and short runs; long sweeps pass
    ``every_seconds`` to bound the I/O overhead instead.
    """

    def __init__(
        self,
        every_steps: int | None = 1,
        every_seconds: float | None = None,
    ):
        if every_steps is not None and every_steps < 1:
            raise ValueError(f"every_steps must be >= 1, got {every_steps}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        if every_steps is None and every_seconds is None:
            raise ValueError("need every_steps and/or every_seconds")
        self.every_steps = every_steps
        self.every_seconds = every_seconds

    def due(self, steps_since: int, seconds_since: float) -> bool:
        """True when a checkpoint is due under either trigger."""
        if self.every_steps is not None and steps_since >= self.every_steps:
            return True
        return (
            self.every_seconds is not None
            and seconds_since >= self.every_seconds
        )

    def __repr__(self) -> str:
        return (
            f"CheckpointPolicy(every_steps={self.every_steps}, "
            f"every_seconds={self.every_seconds})"
        )


def _total_trials(engine: Any) -> int:
    """Monotone trial counter of an engine (scalar or per-replica array)."""
    return int(np.sum(engine.n_trials))


class Checkpointer:
    """Writes policy-driven checkpoints from inside an engine's run loop.

    The engines call :meth:`start` once per ``run()``, :meth:`after_step`
    after every step block and :meth:`finish` on the way out; user code
    only constructs the checkpointer and passes it via ``run(...,
    checkpoint=...)`` or installs it ambiently with
    :func:`use_checkpoints`.

    Signal handling: :meth:`install_signals` (done by
    :func:`use_checkpoints`) registers SIGINT/SIGTERM handlers that
    *defer* — a flag is set, and the next ``after_step`` flushes a
    final checkpoint before raising ``KeyboardInterrupt``.  Writing
    from inside a signal handler mid-kernel would risk snapshotting a
    half-updated chunk; the step boundary is the consistent point.

    Write failures (disk full, permissions — or the chaos harness's
    ``fail-emit`` fault) do not kill the run: the error is counted
    (``checkpoint.write_errors``), remembered on :attr:`last_error`,
    and the run continues to the next opportunity.
    """

    def __init__(
        self,
        directory: str | Path,
        policy: CheckpointPolicy | None = None,
        tag: str = "run",
        metrics: MetricsCollector | None = None,
        chaos: "ChaosMonkey | None" = None,
    ):
        self.directory = Path(directory)
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.tag = re.sub(r"[^A-Za-z0-9.-]+", "-", tag) or "run"
        self.metrics = metrics if metrics is not None else current_metrics()
        self.chaos = chaos
        self.last_path: Path | None = None
        self.last_error: Exception | None = None
        self._engine: Any = None
        self._steps_since = 0
        self._last_write = _time.perf_counter()
        self._signal: int | None = None
        self._old_handlers: dict[int, Any] = {}

    # -- engine hooks --------------------------------------------------
    def start(self, engine: Any) -> None:
        """A run loop begins: attach the engine, reset the triggers."""
        self._engine = engine
        self._steps_since = 0
        self._last_write = _time.perf_counter()

    def after_step(self, engine: Any) -> None:
        """One step block completed: flush on signal, else consult policy."""
        self._steps_since += 1
        if self._signal is not None:
            signum, self._signal = self._signal, None
            self.flush(engine)
            raise KeyboardInterrupt(
                f"signal {signum}: final checkpoint flushed to {self.last_path}"
            )
        now = _time.perf_counter()
        if self.policy.due(self._steps_since, now - self._last_write):
            self._write(engine)

    def finish(self, engine: Any) -> None:
        """The run loop ended (normally or not): detach the engine."""
        if self._engine is engine:
            self._engine = None

    def flush(self, engine: Any) -> Path | None:
        """Write a checkpoint unconditionally (final/manual flush)."""
        return self._write(engine)

    # -- writing -------------------------------------------------------
    def _write(self, engine: Any) -> Path | None:
        m = self.metrics
        name = f"ckpt_{self.tag}_{_total_trials(engine):012d}.json"
        try:
            if self.chaos is not None:
                spec = self.chaos.poll("emit")
                if spec is not None:  # the fail-emit fault
                    raise OSError(f"chaos: injected emit failure ({spec})")
            payload = engine.checkpoint_payload()
            path = write_checkpoint(self.directory / name, payload)
        except OSError as exc:
            # a failed write must never kill the run it protects
            self.last_error = exc
            m.inc("checkpoint.write_errors")
            return None
        if self.chaos is not None:
            spec = self.chaos.poll("checkpoint")
            if spec is not None:
                self.chaos.corrupt_file(path, mode=spec.mode)
        self.last_path = path
        self.last_error = None
        self._steps_since = 0
        self._last_write = _time.perf_counter()
        m.inc("checkpoint.writes")
        return path

    # -- signals -------------------------------------------------------
    @property
    def interrupted(self) -> bool:
        """True when a signal arrived and the flush is still pending."""
        return self._signal is not None

    def _on_signal(self, signum: int, frame: Any) -> None:
        """Deferred-flush handler (safe: no I/O inside the handler)."""
        if self._engine is None:
            # nothing running to snapshot: behave like the default handler
            raise KeyboardInterrupt(f"signal {signum}")
        self._signal = signum

    def install_signals(self) -> None:
        """Route SIGINT/SIGTERM through the deferred-flush handler.

        Idempotent per instance: a second install while handlers are
        already rerouted is a no-op — recording our own handler as the
        "previous" one would make the later restore re-install it and
        leave the deferred-flush reroute in place forever.
        """
        if self._old_handlers:
            return
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                self._old_handlers[signum] = _signal.signal(
                    signum, self._on_signal
                )
            except ValueError:  # pragma: no cover - not the main thread
                pass

    def restore_signals(self) -> None:
        """Put the previous SIGINT/SIGTERM handlers back."""
        for signum, handler in self._old_handlers.items():
            try:
                _signal.signal(signum, handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        self._old_handlers.clear()


# ----------------------------------------------------------------------
# ambient checkpointer (cf. repro.obs.metrics.use_metrics)
# ----------------------------------------------------------------------
_default_stack: list[Checkpointer] = []


def current_checkpointer() -> Checkpointer | None:
    """The ambient checkpointer installed by :func:`use_checkpoints`."""
    return _default_stack[-1] if _default_stack else None


@contextmanager
def use_checkpoints(
    checkpointer: Checkpointer, signals: bool = True
) -> Iterator[Checkpointer]:
    """Install ``checkpointer`` as the ambient default within the block.

    Every engine ``run()`` started inside the block (without an
    explicit ``checkpoint=`` argument) checkpoints through it — the
    mechanism behind the experiment drivers' ``checkpoint_dir``
    parameter.  With ``signals=True`` (default) SIGINT/SIGTERM flush a
    final checkpoint at the next step boundary before interrupting.
    """
    if signals:
        checkpointer.install_signals()
    _default_stack.append(checkpointer)
    try:
        yield checkpointer
    finally:
        _default_stack.pop()
        if signals:
            checkpointer.restore_signals()
