"""Named resilience runs: checkpointable ZGB engine configurations.

The ``python -m repro run`` command accepts, besides the experiment
registry ids, the run ids defined here — small fixed ZGB configurations
of every engine with a resume path.  They exist for two reasons:

* an *operational* entry point: ``--checkpoint-dir``/``--resume`` turn
  any of them into an interruptible, resumable run;
* a *CI gate*: each run prints a deterministic digest line
  (``digest <sha256/16> t=... trials=...``), so the workflow can
  assert that checkpoint → kill → resume reproduces the uninterrupted
  run bit for bit by comparing two lines of stdout.

Every run id maps to a factory ``(seed) -> engine``; engines are
deliberately small (seconds, not minutes) because their job is to
exercise the resume path, not to generate physics.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .checkpoint import (
    Checkpointer,
    CheckpointPolicy,
    ResilienceError,
    last_good_checkpoint,
    use_checkpoints,
)

__all__ = ["RUNS", "make_engine", "run_digest", "run_resilience"]

#: default simulated-time horizon of the named runs
DEFAULT_UNTIL = 5.0

_SHAPE = (10, 10)
_Y_CO = 0.51


def _zgb_lattice():
    from ..core.lattice import Lattice
    from ..models.zgb import zgb_model

    return zgb_model(_Y_CO), Lattice(_SHAPE)


def _mk_rsm(seed: int):
    from ..dmc.rsm import RSM

    model, lat = _zgb_lattice()
    return RSM(model, lat, seed=seed)


def _mk_ndca(seed: int):
    from ..ca.ndca import NDCA

    model, lat = _zgb_lattice()
    return NDCA(model, lat, seed=seed)


def _mk_pndca(seed: int):
    from ..ca.pndca import PNDCA
    from ..partition.tilings import five_chunk_partition

    model, lat = _zgb_lattice()
    return PNDCA(
        model, lat, seed=seed,
        partition=five_chunk_partition(lat), strategy="random-order",
    )


def _mk_lpndca(seed: int):
    from ..ca.lpndca import LPNDCA
    from ..partition.tilings import five_chunk_partition

    model, lat = _zgb_lattice()
    return LPNDCA(
        model, lat, seed=seed, partition=five_chunk_partition(lat), L=4,
    )


def _mk_ensemble_rsm(seed: int):
    from ..ensemble.rsm import EnsembleRSM

    model, lat = _zgb_lattice()
    return EnsembleRSM(
        model, lat, n_replicas=4, seed=seed, sample_interval=1.0,
    )


def _mk_ensemble_pndca(seed: int):
    from ..ensemble.pndca import EnsemblePNDCA
    from ..partition.tilings import five_chunk_partition

    model, lat = _zgb_lattice()
    return EnsemblePNDCA(
        model, lat, n_replicas=4, seed=seed, sample_interval=1.0,
        partition=five_chunk_partition(lat), strategy="random-order",
        schedule_seed=0,
    )


#: run id -> (factory, one-line description)
RUNS: dict[str, tuple[Callable[[int], Any], str]] = {
    "zgb-rsm": (_mk_rsm, "ZGB / RSM on 10x10 (checkpointable)"),
    "zgb-ndca": (_mk_ndca, "ZGB / NDCA on 10x10 (checkpointable)"),
    "zgb-pndca": (_mk_pndca, "ZGB / PNDCA five-chunk on 10x10 (checkpointable)"),
    "zgb-lpndca": (_mk_lpndca, "ZGB / L-PNDCA five-chunk, L=4 (checkpointable)"),
    "zgb-ensemble-rsm": (
        _mk_ensemble_rsm, "ZGB / stacked RSM ensemble, R=4 (checkpointable)",
    ),
    "zgb-ensemble-pndca": (
        _mk_ensemble_pndca, "ZGB / stacked PNDCA ensemble, R=4 (checkpointable)",
    ),
}


def make_engine(run_id: str, seed: int = 0):
    """Instantiate the engine behind a resilience run id."""
    try:
        factory, _ = RUNS[run_id]
    except KeyError:
        raise KeyError(
            f"unknown resilience run {run_id!r}; choose from {sorted(RUNS)}"
        ) from None
    return factory(seed)


def run_digest(engine: Any) -> str:
    """Deterministic digest of an engine's current state.

    Covers the lattice state(s), the simulation clock(s) and the trial
    counters — two runs print the same digest exactly when they reached
    a bit-identical point, which is what the CI round-trip gate diffs.
    """
    h = hashlib.sha256()
    if hasattr(engine, "states"):  # ensemble
        h.update(np.ascontiguousarray(engine.states).tobytes())
        h.update(np.asarray(engine.times, dtype=np.float64).tobytes())
        h.update(np.asarray(engine.n_trials, dtype=np.int64).tobytes())
    else:
        h.update(np.ascontiguousarray(engine.state.array).tobytes())
        h.update(np.float64(engine.time).tobytes())
        h.update(np.int64(engine.n_trials).tobytes())
    h.update(np.asarray(engine.executed_per_type, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


def _engine_time(engine: Any) -> float:
    """Current simulation time (min over replicas for ensembles)."""
    if hasattr(engine, "times"):
        return float(np.min(engine.times))
    return float(engine.time)


def _resolve_resume(resume: str | Path, checkpoint_dir: str | Path | None) -> Path:
    """Turn a ``--resume`` argument into a concrete checkpoint file.

    ``--resume <file>`` uses that file; ``--resume <dir>`` (or a bare
    ``--resume`` with ``--checkpoint-dir`` set) picks the newest good
    checkpoint in the directory.
    """
    target = Path(resume) if str(resume) else None
    if target is None or str(target) == ".":
        if checkpoint_dir is None:
            raise ResilienceError(
                "--resume without a path needs --checkpoint-dir to search"
            )
        target = Path(checkpoint_dir)
    if target.is_dir():
        good = last_good_checkpoint(target)
        if good is None:
            raise ResilienceError(f"no good checkpoint found in {target}")
        return good
    return target


def run_resilience(
    run_id: str,
    seed: int = 0,
    until: float = DEFAULT_UNTIL,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
    checkpoint_seconds: float | None = None,
    resume: str | Path | None = None,
    out=None,
) -> int:
    """Execute one named resilience run (the CLI backend).

    Prints a human summary plus the machine-diffable ``digest`` line;
    returns a process exit code.
    """
    out = out if out is not None else sys.stdout
    engine = make_engine(run_id, seed=seed)
    if resume is not None:
        path = _resolve_resume(resume, checkpoint_dir)
        engine.resume(path)
        print(f"resumed from {path}", file=out)
    if _engine_time(engine) >= until:
        # the checkpoint already reached (or passed) the horizon
        print(f"nothing to do: t={_engine_time(engine):g} >= until={until:g}", file=out)
        print(f"digest {run_digest(engine)} t={_engine_time(engine):.17g} "
              f"trials={int(np.sum(engine.n_trials))}", file=out)
        return 0

    if checkpoint_dir is not None:
        if checkpoint_every is None and checkpoint_seconds is None:
            checkpoint_every = 10
        ckpt = Checkpointer(
            Path(checkpoint_dir),
            CheckpointPolicy(
                every_steps=checkpoint_every, every_seconds=checkpoint_seconds
            ),
            tag=run_id,
        )
        try:
            with use_checkpoints(ckpt):
                engine.run(until=until)
        except KeyboardInterrupt as exc:
            print(f"interrupted: {exc}", file=out)
            print(f"digest {run_digest(engine)} t={_engine_time(engine):.17g} "
                  f"trials={int(np.sum(engine.n_trials))}", file=out)
            return 130
        # final flush: short runs may never cross the policy cadence,
        # and a completed run should always be resumable from its end
        ckpt.flush(engine)
        if ckpt.last_path is not None:
            print(f"last checkpoint: {ckpt.last_path}", file=out)
    else:
        engine.run(until=until)

    print(f"{run_id}: t={_engine_time(engine):g}, "
          f"trials={int(np.sum(engine.n_trials))}", file=out)
    print(f"digest {run_digest(engine)} t={_engine_time(engine):.17g} "
          f"trials={int(np.sum(engine.n_trials))}", file=out)
    return 0
