"""repro.resilience — checkpoint/resume, fault tolerance, chaos testing.

The parallel claim of the paper only matters in production if runs
survive real failures: a worker SIGKILLed mid-chunk, a slice stuck past
its deadline, a checkpoint file truncated by a crash, a full disk at
emit time.  This package makes every engine in the repository
restartable and every recovery path testable:

* :mod:`repro.resilience.checkpoint` — the ``repro.ckpt/1`` schema:
  CRC-guarded, atomically written snapshots of lattice state, RNG
  bit-generator state, simulation time, trial counts and an
  engine/model fingerprint.  :class:`CheckpointPolicy` (every-N-steps /
  every-T-seconds) and :class:`Checkpointer` hook into the ``run()``
  loops of :class:`repro.dmc.base.SimulatorBase` and
  :class:`repro.ensemble.base.EnsembleBase`; ``Engine.resume(path)``
  restores with a hard guarantee that a resumed run is bit-identical
  to an uninterrupted one at the same seed.  :func:`use_checkpoints`
  installs an ambient checkpointer (cf.
  :func:`repro.obs.metrics.use_metrics`) plus SIGINT/SIGTERM handlers
  that flush a final checkpoint at the next step boundary.
* :mod:`repro.resilience.chaos` — a *seeded, deterministic* fault
  injector: kill a worker mid-slice, delay a slice past its deadline,
  truncate/corrupt a checkpoint, fail an emit write.  Every recovery
  path of the executor and the checkpointer is exercised reproducibly
  in ``tests/test_chaos.py`` rather than trusted on faith.
* :mod:`repro.resilience.runs` — named checkpointable engine runs for
  ``python -m repro run <id> --checkpoint-dir D`` / ``--resume``.

The fault-tolerant execution side (per-chunk deadlines, dead-pool
detection, respawn with bounded exponential backoff, snapshot-restore
retry, graceful degradation to in-process serial execution) lives in
:class:`repro.parallel.executor.ParallelChunkExecutor`; recoveries are
emitted as ``obs`` trace events and ``executor.*`` metrics counters.

See DESIGN.md §10 for the checkpoint schema and the recovery ladder
(retry → respawn → serial fallback).
"""

from .chaos import CHAOS_KINDS, ChaosMonkey, FaultSpec
from .checkpoint import (
    CKPT_SCHEMA,
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointPolicy,
    Checkpointer,
    ResilienceError,
    checkpoint_paths,
    current_checkpointer,
    decode_array,
    encode_array,
    engine_fingerprint,
    last_good_checkpoint,
    load_checkpoint,
    use_checkpoints,
    write_checkpoint,
)

__all__ = [
    # checkpoint
    "CKPT_SCHEMA",
    "ResilienceError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "Checkpointer",
    "checkpoint_paths",
    "current_checkpointer",
    "use_checkpoints",
    "encode_array",
    "decode_array",
    "engine_fingerprint",
    "last_good_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
    # chaos
    "CHAOS_KINDS",
    "ChaosMonkey",
    "FaultSpec",
]
