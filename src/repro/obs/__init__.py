"""repro.obs — runtime observability: metrics, tracing, bench telemetry.

The observability layer (DESIGN.md §9) gives every engine a first-class
account of what a run did and what it cost:

* :mod:`repro.obs.metrics` — counters/gauges/histograms/phase timers
  collected into an immutable :class:`RunMetrics` record; the
  :class:`CountingGenerator` wrapper accounts RNG draws by kind
  (matching the static SR030 draw audit); all engines accept
  ``metrics=`` and default to the zero-overhead :data:`NULL_METRICS`;
* :mod:`repro.obs.trace` — opt-in span/event tracing hooks
  (``on_step`` / ``on_chunk`` / ``on_snapshot``), null-object
  :data:`NULL_TRACER` by default;
* :mod:`repro.obs.emit` — atomic file emission, JSON-lines streams and
  the ``repro.bench/1`` schema for ``BENCH_<name>.json`` telemetry;
* :mod:`repro.obs.bench` — the reference micro-benchmarks behind
  ``python -m repro bench [--json]``.

Enabling metrics or tracing never changes a trajectory: runs are
bit-identical with the layer on or off (asserted by the differential
tests in ``tests/test_obs.py``).
"""

from .emit import (
    BENCH_SCHEMA,
    BenchSchemaError,
    append_jsonl,
    bench_record,
    git_rev,
    host_info,
    load_bench_json,
    validate_bench_record,
    write_bench_json,
    write_json_atomic,
    write_text_atomic,
)
from .metrics import (
    NULL_METRICS,
    CountingGenerator,
    HistogramSummary,
    MetricsCollector,
    NullMetrics,
    PhaseTiming,
    RunMetrics,
    current_metrics,
    format_metrics,
    use_metrics,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    # metrics
    "MetricsCollector",
    "NullMetrics",
    "NULL_METRICS",
    "RunMetrics",
    "HistogramSummary",
    "PhaseTiming",
    "CountingGenerator",
    "current_metrics",
    "use_metrics",
    "format_metrics",
    # trace
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    # emit
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "append_jsonl",
    "bench_record",
    "git_rev",
    "host_info",
    "load_bench_json",
    "validate_bench_record",
    "write_bench_json",
    "write_json_atomic",
    "write_text_atomic",
]
