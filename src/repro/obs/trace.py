"""Opt-in span/event tracing hooks for the simulation engines.

Tracing answers *when* questions the aggregate metrics can't: which
chunk was visited at which point of a step, when observers sampled,
how long a named span took.  It is strictly opt-in — engines default
to :data:`NULL_TRACER`, whose hooks are no-ops and whose
:meth:`~Tracer.span` returns one shared reusable null context manager,
so the disabled path performs no allocation and no branching beyond
the null object's method dispatch.

Hook points (wired by the engines):

``on_step(step_no, sim_time)``
    after every algorithm step block (:meth:`SimulatorBase.run` loop);
``on_chunk(chunk_index, size, sim_time)``
    after every chunk visit (PNDCA / L-PNDCA / type-partitioned CA /
    ensemble PNDCA / parallel executor);
``on_snapshot(sim_time)``
    whenever at least one observer sampled a grid point;
``on_recovery(kind, detail)``
    whenever the fault-tolerant executor walks a rung of its recovery
    ladder (chunk retry, pool respawn, serial fallback) — recorded
    with ``sim_time = -1`` since recovery happens between trials;
``on_job(key, status, detail)``
    whenever the batch orchestrator (:mod:`repro.jobs`) moves a job
    through its state machine (submit / start / done / fail / degrade /
    drain) — also ``sim_time = -1``: campaign bookkeeping has no
    simulated clock.

Events are recorded as plain tuples; :meth:`Tracer.to_records` renders
them JSON-ready for the :func:`repro.obs.emit.append_jsonl` emitter.
An enabled tracer grows with the run — it is a debugging/benchmark
instrument, not an always-on logger.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class Span:
    """One completed named span (wall-clock seconds)."""

    name: str
    start: float
    end: float
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        """Elapsed wall time of the span."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready plain dict."""
        return {
            "kind": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            **dict(self.attrs),
        }


class Tracer:
    """Records spans and engine events with wall-clock timestamps."""

    #: class-level flag, False on the null subclass (cf. MetricsCollector)
    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: event tuples ``(kind, wall_time, sim_time, payload)``
        self.events: list[tuple[str, float, float, dict]] = []

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record a named span around the ``with`` block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.spans.append(
                Span(name, t0, time.perf_counter(), tuple(attrs.items()))
            )

    # -- engine hooks --------------------------------------------------
    def on_step(self, step_no: int, sim_time: float) -> None:
        """One algorithm step block completed."""
        self.events.append(
            ("step", time.perf_counter(), sim_time, {"step": step_no})
        )

    def on_chunk(self, chunk_index: int, size: int, sim_time: float) -> None:
        """One chunk visit completed."""
        self.events.append(
            (
                "chunk",
                time.perf_counter(),
                sim_time,
                {"chunk": chunk_index, "size": size},
            )
        )

    def on_snapshot(self, sim_time: float) -> None:
        """At least one observer sampled at ``sim_time``."""
        self.events.append(("snapshot", time.perf_counter(), sim_time, {}))

    def on_recovery(self, kind: str, detail: dict | None = None) -> None:
        """A fault-recovery action ran (retry / respawn / fallback)."""
        self.events.append(
            ("recovery", time.perf_counter(), -1.0, {"recovery": kind, **(detail or {})})
        )

    def on_job(self, key: str, status: str, detail: dict | None = None) -> None:
        """A batch-orchestrator job changed state (see repro.jobs)."""
        self.events.append(
            (
                "job",
                time.perf_counter(),
                -1.0,
                {"key": key, "status": status, **(detail or {})},
            )
        )

    # -- export --------------------------------------------------------
    def to_records(self) -> list[dict]:
        """Spans + events as JSON-ready dicts (for the jsonl emitter)."""
        records: list[dict] = [s.to_dict() for s in self.spans]
        records += [
            {"kind": kind, "wall": wall, "sim_time": sim_time, **payload}
            for kind, wall, sim_time, payload in self.events
        ]
        return records


_NULL_CM = nullcontext()


class NullTracer(Tracer):
    """The disabled tracer: hooks are no-ops, spans cost nothing."""

    enabled = False

    def __init__(self) -> None:  # the null object stores nothing
        pass

    def span(self, name: str, **attrs: Any):  # type: ignore[override]
        """A shared reusable null context manager (no allocation)."""
        return _NULL_CM

    def on_step(self, step_no: int, sim_time: float) -> None:
        """No-op."""

    def on_chunk(self, chunk_index: int, size: int, sim_time: float) -> None:
        """No-op."""

    def on_snapshot(self, sim_time: float) -> None:
        """No-op."""

    def on_recovery(self, kind: str, detail: dict | None = None) -> None:
        """No-op."""

    def on_job(self, key: str, status: str, detail: dict | None = None) -> None:
        """No-op."""

    def to_records(self) -> list[dict]:
        """Always empty."""
        return []


#: the shared disabled tracer — engines default to it
NULL_TRACER = NullTracer()
