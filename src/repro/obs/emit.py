"""Machine-readable telemetry emission: atomic files, jsonl, BENCH schema.

Benchmark telemetry only has value if every record is (a) complete —
a crashed run must never leave a truncated file that later comparisons
silently read — and (b) schema-stable, so trajectories of
``BENCH_<name>.json`` files diff across commits.  This module provides
both halves with zero dependencies:

* :func:`write_text_atomic` / :func:`write_json_atomic` — write to a
  temp file in the destination directory, fsync, then ``os.replace``:
  readers observe either the old content or the complete new content,
  never a partial write;
* :func:`append_jsonl` — one JSON document per line (trace/metric
  streams);
* :func:`bench_record` / :func:`validate_bench_record` /
  :func:`write_bench_json` / :func:`load_bench_json` — the
  ``repro.bench/1`` schema: host info, git revision, seed, model,
  lattice, timings and the metrics dict of one engine run.  Loading
  validates and **fails loudly** (:class:`BenchSchemaError`) on
  partial or malformed JSON.

Schema ``repro.bench/1`` (all keys required unless noted)::

    {
      "schema":    "repro.bench/1",
      "name":      str,              # record name -> BENCH_<name>.json
      "host":      {"python", "implementation", "platform", "machine",
                    "cpu_count"},
      "git_rev":   str | null,       # commit hash if resolvable
      "seed":      int | null,
      "model":     str,
      "lattice":   [int, ...],
      "algorithm": str,
      "timings":   {"wall_s": float, "trials": int,
                    "trials_per_s": float, ...},
      "metrics":   {counters/gauges/histograms/phases dicts},
      "extra":     {...}             # optional free-form
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
from pathlib import Path
from typing import Any, Mapping

from .metrics import RunMetrics

__all__ = [
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "write_text_atomic",
    "write_json_atomic",
    "append_jsonl",
    "host_info",
    "git_rev",
    "bench_record",
    "validate_bench_record",
    "write_bench_json",
    "load_bench_json",
]

#: schema identifier stamped into every record
BENCH_SCHEMA = "repro.bench/1"


class BenchSchemaError(ValueError):
    """A bench record is malformed, truncated or schema-invalid."""


# ----------------------------------------------------------------------
# atomic writers
# ----------------------------------------------------------------------
def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write leaves at worst a stray ``.tmp`` file — the
    destination is either absent/old or complete, never truncated.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def write_json_atomic(path: str | Path, obj: Any) -> Path:
    """Serialise ``obj`` (sorted keys, indented) and write atomically."""
    return write_text_atomic(
        path, json.dumps(obj, indent=2, sort_keys=True, default=_jsonify) + "\n"
    )


def append_jsonl(path: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one record as a single JSON line.

    The record is serialised *before* the file is opened, so a
    serialisation failure cannot leave a partial line behind; the
    single ``write`` of one line keeps concurrent appenders intact on
    POSIX filesystems.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=_jsonify)
    with open(path, "a") as fh:
        fh.write(line + "\n")
    return path


def _jsonify(value: Any) -> Any:
    """Fallback serialiser: numpy scalars/arrays and RunMetrics."""
    if isinstance(value, RunMetrics):
        return value.to_dict()
    if hasattr(value, "item") and getattr(value, "shape", None) == ():
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {value!r} ({type(value).__name__})")


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
def host_info() -> dict:
    """Reproducibility context of the executing host."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def git_rev(start: str | Path | None = None) -> str | None:
    """Current commit hash, resolved by reading ``.git`` directly.

    No subprocess: walks up from ``start`` (default: the repository
    containing this package, then the working directory) to the first
    ``.git`` directory, follows ``HEAD`` through loose refs and
    ``packed-refs``.  Returns ``None`` when nothing resolves — the
    schema allows it (installed wheels have no repository).
    """
    candidates = []
    if start is not None:
        candidates.append(Path(start))
    else:
        candidates += [Path(__file__).resolve(), Path.cwd()]
    for origin in candidates:
        node = origin if origin.is_dir() else origin.parent
        for directory in (node, *node.parents):
            git_dir = directory / ".git"
            if not git_dir.is_dir():
                continue
            try:
                head = (git_dir / "HEAD").read_text().strip()
                if not head.startswith("ref:"):
                    return head or None  # detached HEAD
                ref = head.split(None, 1)[1]
                loose = git_dir / ref
                if loose.is_file():
                    return loose.read_text().strip() or None
                packed = git_dir / "packed-refs"
                if packed.is_file():
                    for line in packed.read_text().splitlines():
                        if line.endswith(" " + ref):
                            return line.split()[0]
            except OSError:
                pass
            return None
    return None


def bench_record(
    name: str,
    *,
    algorithm: str,
    model: str,
    lattice_shape: tuple[int, ...] | list[int],
    seed: int | None,
    timings: Mapping[str, float],
    metrics: RunMetrics | Mapping | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble one schema-``repro.bench/1`` record (validated)."""
    if isinstance(metrics, RunMetrics):
        metrics_dict = metrics.to_dict()
    else:
        metrics_dict = dict(metrics) if metrics else {}
    record = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "host": host_info(),
        "git_rev": git_rev(),
        "seed": seed,
        "model": model,
        "lattice": [int(x) for x in lattice_shape],
        "algorithm": algorithm,
        "timings": {k: float(v) for k, v in timings.items()},
        "metrics": metrics_dict,
    }
    if extra:
        record["extra"] = dict(extra)
    validate_bench_record(record)
    return record


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
_REQUIRED_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema": str,
    "name": str,
    "host": dict,
    "git_rev": (str, type(None)),
    "seed": (int, type(None)),
    "model": str,
    "lattice": list,
    "algorithm": str,
    "timings": dict,
    "metrics": dict,
}

_REQUIRED_HOST_KEYS = ("python", "implementation", "platform", "machine", "cpu_count")
_REQUIRED_TIMING_KEYS = ("wall_s", "trials", "trials_per_s")


def validate_bench_record(record: Any) -> None:
    """Raise :class:`BenchSchemaError` listing every schema violation."""
    problems: list[str] = []
    if not isinstance(record, dict):
        raise BenchSchemaError(
            f"bench record must be a JSON object, got {type(record).__name__}"
        )
    for key, types in _REQUIRED_FIELDS.items():
        if key not in record:
            problems.append(f"missing field {key!r}")
        elif not isinstance(record[key], types):
            problems.append(
                f"field {key!r} has type {type(record[key]).__name__}, "
                f"expected {types if isinstance(types, type) else '/'.join(t.__name__ for t in types)}"
            )
    if record.get("schema") not in (None, BENCH_SCHEMA) and "schema" in record:
        problems.append(
            f"unknown schema {record['schema']!r} (expected {BENCH_SCHEMA!r})"
        )
    if isinstance(record.get("name"), str) and not record["name"]:
        problems.append("field 'name' must be non-empty")
    if isinstance(record.get("host"), dict):
        for key in _REQUIRED_HOST_KEYS:
            if key not in record["host"]:
                problems.append(f"host info missing {key!r}")
    if isinstance(record.get("lattice"), list):
        if not record["lattice"] or not all(
            isinstance(x, int) and x > 0 for x in record["lattice"]
        ):
            problems.append("field 'lattice' must be a non-empty list of positive ints")
    if isinstance(record.get("timings"), dict):
        for key in _REQUIRED_TIMING_KEYS:
            value = record["timings"].get(key)
            if value is None:
                problems.append(f"timings missing {key!r}")
            elif not isinstance(value, (int, float)) or value < 0:
                problems.append(f"timings[{key!r}] must be a non-negative number")
    if problems:
        raise BenchSchemaError(
            "invalid bench record: " + "; ".join(problems)
        )


# ----------------------------------------------------------------------
# BENCH_<name>.json files
# ----------------------------------------------------------------------
def write_bench_json(directory: str | Path, record: dict) -> Path:
    """Validate and write ``BENCH_<name>.json`` atomically; returns the path."""
    validate_bench_record(record)
    directory = Path(directory)
    return write_json_atomic(directory / f"BENCH_{record['name']}.json", record)


def load_bench_json(path: str | Path) -> dict:
    """Load and validate one bench record, failing loudly on damage.

    A truncated/partial file (the failure mode of non-atomic writers)
    raises :class:`BenchSchemaError` naming the file and the JSON
    parse position instead of silently yielding garbage.
    """
    path = Path(path)
    text = path.read_text()
    try:
        record = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(
            f"{path}: not valid JSON (truncated or corrupt record?): {exc}"
        ) from exc
    try:
        validate_bench_record(record)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc
    return record
