"""Run metrics: counters, gauges, histograms and phase timers.

The observability layer follows the profiling-first discipline of
lattice-KMC codes (SPPARKS' per-sweep diagnostics, Jansen's event
accounting): every engine can record *what it did* — trials attempted
vs. executed, per-reaction-type acceptance, RNG draws consumed, chunk
occupancy/utilisation for the partitioned CA — without changing what
it computes.  Three rules keep the layer honest:

1. **Zero overhead when off.**  Engines hold a collector that defaults
   to :data:`NULL_METRICS`, a null object whose methods are no-ops;
   hot loops guard the (cheap but nonzero) bookkeeping behind the
   single attribute check ``if self.metrics.enabled:``.  Kernels are
   never instrumented — recording happens at the python orchestration
   level only, so the vectorised inner loops carry no branching.
2. **Bit-identity.**  Enabling metrics must not perturb a trajectory.
   The only runtime hook that touches the random stream is
   :class:`CountingGenerator`, a transparent delegating wrapper — it
   forwards every call unchanged and counts draws *after* the fact.
3. **Immutable snapshots.**  :meth:`MetricsCollector.snapshot` freezes
   the collected values into a :class:`RunMetrics` record (plain
   dicts of floats — JSON-ready via :meth:`RunMetrics.to_dict`).

Naming scheme (stable across PRs — the bench telemetry schema keys
off it):

``trials.attempted`` / ``trials.executed``
    counters, accumulated per step block;
``steps``
    counter of algorithm step blocks;
``rng.<method>.calls`` / ``rng.<method>.draws``
    counters from :class:`CountingGenerator` (``draws`` counts
    variates returned: ``random(64)`` adds 64, a scalar ``gamma``
    adds 1);
``acceptance`` / ``acceptance.<type>``
    gauges written at result time (executed / attempted);
``attempted.<type>`` / ``executed.<type>``
    gauges written at result time (per-reaction-type totals);
``pndca.chunk.size`` / ``pndca.chunk.occupancy`` / ``pndca.chunk.utilisation``
    histograms, one observation per chunk visit;
``executor.slice.wall`` / ``executor.chunk.wall``
    histograms of per-worker slice / per-barrier wall times
    (:mod:`repro.parallel.executor`);
``run``
    phase timer around :meth:`SimulatorBase.run` (wall + CPU).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterator, Mapping

import numpy as np

__all__ = [
    "HistogramSummary",
    "PhaseTiming",
    "RunMetrics",
    "MetricsCollector",
    "NullMetrics",
    "NULL_METRICS",
    "CountingGenerator",
    "current_metrics",
    "use_metrics",
    "format_metrics",
]


# ----------------------------------------------------------------------
# immutable snapshot records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HistogramSummary:
    """Streaming summary of one histogram (no raw samples retained)."""

    count: int
    total: float
    mean: float
    std: float
    min: float
    max: float

    def to_dict(self) -> dict:
        """JSON-ready plain dict."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }


@dataclass(frozen=True)
class PhaseTiming:
    """Accumulated wall/CPU time of one named phase."""

    calls: int
    wall_s: float
    cpu_s: float

    def to_dict(self) -> dict:
        """JSON-ready plain dict."""
        return {"calls": self.calls, "wall_s": self.wall_s, "cpu_s": self.cpu_s}


@dataclass(frozen=True)
class RunMetrics:
    """Immutable snapshot of everything a collector recorded."""

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSummary] = field(default_factory=dict)
    phases: Mapping[str, PhaseTiming] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0.0) -> float:
        """One counter value (``default`` when never incremented)."""
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = math.nan) -> float:
        """One gauge value (NaN when never set)."""
        return self.gauges.get(name, default)

    def to_dict(self) -> dict:
        """Plain nested dict (JSON-serialisable), sorted keys."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
            "phases": {k: self.phases[k].to_dict() for k in sorted(self.phases)},
        }


# ----------------------------------------------------------------------
# the mutable collector
# ----------------------------------------------------------------------
class _Hist:
    """Streaming moments accumulator (count/sum/sumsq/min/max)."""

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> HistogramSummary:
        if self.count == 0:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mean = self.total / self.count
        var = max(self.sumsq / self.count - mean * mean, 0.0)
        return HistogramSummary(
            count=self.count,
            total=self.total,
            mean=mean,
            std=math.sqrt(var),
            min=self.min,
            max=self.max,
        )


class MetricsCollector:
    """Collects counters, gauges, histograms and phase timings.

    One collector per run (or shared across runs to aggregate — the
    ``repro run --metrics`` flag does exactly that).  All methods cost
    a dict update; the engines guard per-visit bookkeeping behind
    :attr:`enabled` so the disabled path stays free.
    """

    #: class-level flag: the null subclass flips it to False so engines
    #: can branch on one attribute load with no isinstance checks
    enabled: bool = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, _Hist] = {}
        self._phases: dict[str, list[float]] = {}  # name -> [calls, wall, cpu]

    # -- recording -----------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Overwrite gauge ``name`` (idempotent totals/rates)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = _Hist()
        h.observe(float(value))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a phase (wall via ``perf_counter``, CPU via ``process_time``)."""
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield
        finally:
            w = time.perf_counter() - w0
            c = time.process_time() - c0
            acc = self._phases.get(name)
            if acc is None:
                self._phases[name] = [1, w, c]
            else:
                acc[0] += 1
                acc[1] += w
                acc[2] += c

    # -- reading -------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name``."""
        return self._counters.get(name, default)

    def snapshot(self) -> RunMetrics:
        """Freeze the current values into an immutable record."""
        return RunMetrics(
            counters=MappingProxyType(dict(self._counters)),
            gauges=MappingProxyType(dict(self._gauges)),
            histograms=MappingProxyType(
                {k: h.summary() for k, h in self._hists.items()}
            ),
            phases=MappingProxyType(
                {
                    k: PhaseTiming(int(v[0]), v[1], v[2])
                    for k, v in self._phases.items()
                }
            ),
        )


_NULL_CM = nullcontext()


class NullMetrics(MetricsCollector):
    """The disabled collector: every method is a no-op.

    Engines call through it unconditionally for per-run bookkeeping
    (the null-object pattern) and guard only per-visit work behind
    :attr:`enabled`; either way nothing is recorded and nothing is
    allocated.
    """

    enabled = False

    def __init__(self) -> None:  # no dicts: the null object stores nothing
        pass

    def inc(self, name: str, value: float = 1) -> None:
        """No-op."""

    def set_gauge(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float) -> None:
        """No-op."""

    def phase(self, name: str):  # type: ignore[override]
        """A shared reusable null context manager (no allocation)."""
        return _NULL_CM

    def counter(self, name: str, default: float = 0.0) -> float:
        """Always ``default``."""
        return default

    def snapshot(self) -> RunMetrics:
        """An empty record."""
        return RunMetrics()


#: the shared disabled collector — engines default to it
NULL_METRICS = NullMetrics()


# ----------------------------------------------------------------------
# ambient default (for `repro run --metrics`: drivers build their own
# simulators, so the flag installs a collector they pick up implicitly)
# ----------------------------------------------------------------------
_default_stack: list[MetricsCollector] = []


def current_metrics() -> MetricsCollector:
    """The ambient collector: innermost :func:`use_metrics`, else null."""
    return _default_stack[-1] if _default_stack else NULL_METRICS


@contextmanager
def use_metrics(collector: MetricsCollector) -> Iterator[MetricsCollector]:
    """Install ``collector`` as the ambient default within the block.

    Simulators constructed inside the block (without an explicit
    ``metrics=`` argument) record into it — the mechanism behind
    ``python -m repro run <id> --metrics``.
    """
    _default_stack.append(collector)
    try:
        yield collector
    finally:
        _default_stack.pop()


# ----------------------------------------------------------------------
# RNG draw accounting
# ----------------------------------------------------------------------
#: Generator methods counted as draws — deliberately the same set the
#: static draw-accounting audit recognises (repro.lint.rng_lint
#: GENERATOR_METHODS), so runtime counters and SR030 lint agree on
#: what a "draw" is.
DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "permutation",
        "choice",
        "exponential",
        "gamma",
        "normal",
        "standard_normal",
        "uniform",
        "shuffle",
    }
)


class CountingGenerator:
    """Transparent ``numpy.random.Generator`` wrapper counting draws.

    Delegates every attribute to the wrapped generator; calls to the
    draw methods in :data:`DRAW_METHODS` additionally increment
    ``rng.<method>.calls`` and ``rng.<method>.draws`` (variates
    returned) on the collector *after* the underlying call, so the
    random stream is bit-for-bit the one the bare generator produces.
    Installed by the engines only when metrics are enabled — the
    disabled path keeps the raw generator and pays nothing.
    """

    __slots__ = ("_rng", "_metrics", "_prefix")

    def __init__(
        self,
        rng: np.random.Generator,
        metrics: MetricsCollector,
        prefix: str = "rng",
    ):
        self._rng = rng
        self._metrics = metrics
        self._prefix = prefix

    @property
    def generator(self) -> np.random.Generator:
        """The wrapped generator."""
        return self._rng

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._rng, name)
        if name not in DRAW_METHODS:
            return attr
        metrics = self._metrics
        prefix = self._prefix

        def counted(*args: Any, **kwargs: Any) -> Any:
            out = attr(*args, **kwargs)
            metrics.inc(f"{prefix}.{name}.calls")
            if out is None:  # shuffle mutates in place
                n = np.size(args[0]) if args else 0
            else:
                n = np.size(out)
            metrics.inc(f"{prefix}.{name}.draws", int(n))
            return out

        return counted

    def __repr__(self) -> str:
        return f"CountingGenerator({self._rng!r})"


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_metrics(metrics: RunMetrics) -> str:
    """Aligned plain-text rendering of a metrics snapshot."""
    lines: list[str] = []

    def block(title: str, rows: list[tuple[str, str]]) -> None:
        if not rows:
            return
        lines.append(f"{title}:")
        width = max(len(k) for k, _ in rows)
        for k, v in rows:
            lines.append(f"  {k.ljust(width)}  {v}")

    def num(v: float) -> str:
        if float(v).is_integer() and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.6g}"

    block("counters", [(k, num(metrics.counters[k])) for k in sorted(metrics.counters)])
    block("gauges", [(k, num(metrics.gauges[k])) for k in sorted(metrics.gauges)])
    block(
        "histograms",
        [
            (
                k,
                f"n={h.count} mean={h.mean:.6g} std={h.std:.3g} "
                f"min={h.min:.6g} max={h.max:.6g}",
            )
            for k, h in sorted(metrics.histograms.items())
        ],
    )
    block(
        "phases",
        [
            (k, f"calls={p.calls} wall={p.wall_s:.4f}s cpu={p.cpu_s:.4f}s")
            for k, p in sorted(metrics.phases.items())
        ],
    )
    return "\n".join(lines) if lines else "(no metrics recorded)"
