"""The standard micro-benchmark harness behind ``python -m repro bench``.

Every engine in the taxonomy gets one small, fixed-seed, fixed-size
reference run (ZGB CO-oxidation model, square lattice, five-chunk /
checkerboard partitions as appropriate).  Each run executes with a
:class:`~repro.obs.metrics.MetricsCollector` attached and is rendered
into one schema-``repro.bench/1`` record — printed as a table, or,
with ``--json``, emitted as ``BENCH_<engine>.json`` files so the
benchmark trajectory of the repository accumulates machine-readable
points instead of free text.

The runs are deliberately small (seconds, not minutes): the point of
the per-commit telemetry is *relative* movement under identical
settings, which the record captures exactly (host, git revision, seed,
model, lattice, timings, full metric dict).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable

from .emit import (
    BenchSchemaError,
    bench_record,
    load_bench_json,
    write_bench_json,
)
from .metrics import MetricsCollector

__all__ = [
    "ENGINES",
    "run_engine_bench",
    "run_scenario_bench",
    "run_bench",
    "add_bench_arguments",
    "run",
]

#: default output directory for BENCH_*.json files (repo-relative)
DEFAULT_OUT = Path("benchmarks/reports")

#: memoised native-lint verdict — identical for every record of a run
_lint_verdict_cache: dict | None = None
_protocol_verdict_cache: dict | None = None


def _native_lint_verdict() -> dict:
    """The condensed SR060-range verdict stamped into each record.

    A bench point is only comparable to another if both ran verified
    kernels, so every record carries the native-tier lint verdict
    (pass/fail, fired codes, and a digest of the full diagnostic
    payload).  Computed once per process: the verdict depends only on
    the shipped sources, not on the engine being benchmarked.
    """
    global _lint_verdict_cache
    if _lint_verdict_cache is None:
        from ..lint.native import lint_verdict

        _lint_verdict_cache = lint_verdict()
    return _lint_verdict_cache


def _protocol_lint_verdict() -> dict:
    """The condensed SR070-range verdict stamped into each record.

    Same comparability argument as :func:`_native_lint_verdict`, one
    layer up: a bench point ran under a verified execution/resilience
    protocol (shm lifecycle, signal pairing, checkpoint round trips,
    recovery ladder, spawn safety) or it did not.
    """
    global _protocol_verdict_cache
    if _protocol_verdict_cache is None:
        from ..lint.protocol import protocol_verdict

        _protocol_verdict_cache = protocol_verdict()
    return _protocol_verdict_cache


# ----------------------------------------------------------------------
# engine reference runs
# ----------------------------------------------------------------------
def _ziff(side: int):
    """The shared model/lattice pair of the reference runs."""
    from ..core.lattice import Lattice
    from ..models import ziff_model

    return ziff_model(k_co=1.0, k_o2=0.5, k_co2=2.0), Lattice((side, side))


def _five(lattice):
    from ..partition import five_chunk_partition

    return five_chunk_partition(lattice)


def _bench_rsm(side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector):
    from ..dmc.rsm import RSM

    model, lat = _ziff(side)
    sim = RSM(model, lat, seed=seed, metrics=m)
    return sim.run(until=until)


def _bench_ndca(side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector):
    from ..ca.ndca import NDCA

    model, lat = _ziff(side)
    sim = NDCA(model, lat, seed=seed, metrics=m)
    return sim.run(until=until)


def _bench_pndca(side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector):
    from ..ca.pndca import PNDCA

    model, lat = _ziff(side)
    sim = PNDCA(model, lat, seed=seed, partition=_five(lat), metrics=m)
    return sim.run(until=until)


def _bench_lpndca(side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector):
    from ..ca.lpndca import LPNDCA

    model, lat = _ziff(side)
    sim = LPNDCA(model, lat, seed=seed, partition=_five(lat), L="chunk", metrics=m)
    return sim.run(until=until)


def _bench_typepart(side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector):
    from ..ca.typepart import TypePartitionedCA

    model, lat = _ziff(side)
    sim = TypePartitionedCA(model, lat, seed=seed, metrics=m)
    return sim.run(until=until)


def _bench_ensemble_rsm(
    side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector
):
    from ..ensemble.rsm import EnsembleRSM

    model, lat = _ziff(side)
    sim = EnsembleRSM(model, lat, n_replicas=n_replicas, seed=seed, metrics=m)
    return sim.run(until=until)


def _bench_ensemble_pndca(
    side: int, until: float, seed: int, n_replicas: int, m: MetricsCollector
):
    from ..ensemble.pndca import EnsemblePNDCA

    model, lat = _ziff(side)
    sim = EnsemblePNDCA(
        model, lat, n_replicas=n_replicas, seed=seed, partition=_five(lat), metrics=m
    )
    return sim.run(until=until)


#: engine id -> reference-run callable
ENGINES: dict[str, Callable] = {
    "rsm": _bench_rsm,
    "ndca": _bench_ndca,
    "pndca": _bench_pndca,
    "lpndca": _bench_lpndca,
    "typepart": _bench_typepart,
    "ensemble-rsm": _bench_ensemble_rsm,
    "ensemble-pndca": _bench_ensemble_pndca,
}

#: the engines benchmarked when none are named
DEFAULT_ENGINES = ("rsm", "pndca", "ensemble-pndca")


def run_engine_bench(
    engine: str,
    *,
    side: int = 20,
    until: float = 5.0,
    seed: int = 1,
    n_replicas: int = 4,
    backend: str | None = None,
) -> dict:
    """One engine reference run -> one validated ``repro.bench/1`` record.

    ``backend`` selects the kernel backend for the run (``None`` keeps
    the ambient selection).  Non-numpy backends get their own record
    name (``<engine>-<backend>``) so per-backend BENCH files coexist in
    the same trajectory directory, and the resolved backend is recorded
    in ``extra["backend"]`` either way — the trajectory stays comparable
    point-for-point under identical settings.
    """
    from ..backends import resolve_backend, use_backend

    try:
        fn = ENGINES[engine]
    except KeyError:
        raise KeyError(
            f"unknown engine {engine!r}; known: {sorted(ENGINES)}"
        ) from None
    be = resolve_backend(backend)
    collector = MetricsCollector()
    wall0 = time.perf_counter()
    with collector.phase("bench"), use_backend(be):
        result = fn(side, until, seed, n_replicas, collector)
    wall = time.perf_counter() - wall0
    # sequential results carry scalar totals; ensemble results arrays
    trials = getattr(result, "total_trials", None)
    if trials is None:
        trials = int(result.n_trials)
    trials = int(trials)
    timings = {
        "wall_s": wall,
        "run_wall_s": float(result.wall_time),
        "trials": float(trials),
        "trials_per_s": trials / result.wall_time if result.wall_time > 0 else 0.0,
    }
    extra: dict = {
        "side": side,
        "until": until,
        "backend": be.name,
        "lint": dict(_native_lint_verdict()),
        "protocol_lint": dict(_protocol_lint_verdict()),
    }
    if hasattr(result, "n_replicas"):
        extra["n_replicas"] = int(result.n_replicas)
    name = engine if be.name == "numpy" else f"{engine}-{be.name}"
    return bench_record(
        name,
        algorithm=result.algorithm,
        model=result.model_name,
        lattice_shape=result.lattice_shape,
        seed=seed,
        timings=timings,
        metrics=collector.snapshot(),
        extra=extra,
    )


def run_scenario_bench(
    ref: str,
    *,
    backend: str | None = None,
) -> dict:
    """One scenario reference run -> one ``repro.bench/1`` record.

    The record's ``extra["scenario"]`` block carries the scenario's
    content digest plus the run's params and seed — the exact cache key
    ``(digest, params, seed)`` under which a completed deterministic
    run is reusable.  Lattice, seed and horizon come from the scenario
    itself; ``backend`` (CLI ``--backend``) overrides its declared one.
    """
    from ..scenario import build_engine, find_scenario, provenance

    spec = find_scenario(ref)
    collector = MetricsCollector()
    wall0 = time.perf_counter()
    with collector.phase("bench"):
        engine = build_engine(spec, metrics=collector, backend=backend)
        result = engine.run(until=spec.run.until)
    wall = time.perf_counter() - wall0
    trials = getattr(result, "total_trials", None)
    if trials is None:
        trials = int(result.n_trials)
    trials = int(trials)
    timings = {
        "wall_s": wall,
        "run_wall_s": float(result.wall_time),
        "trials": float(trials),
        "trials_per_s": trials / result.wall_time if result.wall_time > 0 else 0.0,
    }
    extra: dict = {
        "until": spec.run.until,
        "backend": engine.backend.name,
        "scenario": provenance(spec),
        "lint": dict(_native_lint_verdict()),
        "protocol_lint": dict(_protocol_lint_verdict()),
    }
    name = f"scenario-{spec.name}"
    if engine.backend.name != "numpy":
        name = f"{name}-{engine.backend.name}"
    return bench_record(
        name,
        algorithm=result.algorithm,
        model=result.model_name,
        lattice_shape=result.lattice_shape,
        seed=spec.run.seed,
        timings=timings,
        metrics=collector.snapshot(),
        extra=extra,
    )


def run_bench(
    engines: tuple[str, ...] = DEFAULT_ENGINES,
    *,
    side: int = 20,
    until: float = 5.0,
    seed: int = 1,
    n_replicas: int = 4,
    backend: str | None = None,
) -> list[dict]:
    """Reference-run every requested engine; returns the records."""
    return [
        run_engine_bench(
            e,
            side=side,
            until=until,
            seed=seed,
            n_replicas=n_replicas,
            backend=backend,
        )
        for e in engines
    ]


# ----------------------------------------------------------------------
# CLI (wired as `python -m repro bench`)
# ----------------------------------------------------------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to an argparse (sub)parser."""
    parser.add_argument(
        "--engines",
        default=",".join(DEFAULT_ENGINES),
        help=(
            "comma-separated engine ids "
            f"(known: {', '.join(sorted(ENGINES))}; 'all' for every engine)"
        ),
    )
    parser.add_argument(
        "--side", type=int, default=20, help="lattice side length (default 20)"
    )
    parser.add_argument(
        "--until", type=float, default=5.0, help="simulated time horizon (default 5)"
    )
    parser.add_argument("--seed", type=int, default=1, help="run seed (default 1)")
    parser.add_argument(
        "--replicas", type=int, default=4, help="ensemble replica count (default 4)"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "kernel backend for the runs (e.g. numpy, cnative, numba, auto); "
            "default: the ambient selection.  An unavailable backend falls "
            "back along its declared chain with a warning; non-numpy records "
            "are written as BENCH_<engine>-<backend>.json"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="REF",
        help="bench a declarative scenario (zoo name or .toml path) "
        "instead of the engine reference runs; the record's provenance "
        "carries the scenario content digest, params and seed",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print records as JSON and write BENCH_<engine>.json files to --out",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help=f"directory for BENCH_*.json files (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--check",
        nargs="+",
        metavar="FILE",
        help="validate existing BENCH_*.json files instead of running",
    )


def _check_files(paths: list[str]) -> int:
    status = 0
    for name in paths:
        try:
            record = load_bench_json(name)
        except (OSError, BenchSchemaError) as exc:
            print(f"FAIL {name}: {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"ok   {name}: {record['algorithm']} ({record['schema']})")
    return status


def run(args: argparse.Namespace) -> int:
    """Execute the bench CLI; returns the exit code."""
    if args.check:
        return _check_files(args.check)
    if args.backend is not None and args.backend != "auto":
        from ..backends import backend_names

        if args.backend not in backend_names():
            print(
                f"unknown backend {args.backend!r}; "
                f"known: {sorted(backend_names()) + ['auto']}",
                file=sys.stderr,
            )
            return 2
    if args.scenario is not None:
        from ..lint.engine import LintError
        from ..scenario import ScenarioError

        try:
            records = [run_scenario_bench(args.scenario, backend=args.backend)]
        except (ScenarioError, LintError) as exc:
            print(exc.args[0] if exc.args else exc, file=sys.stderr)
            return 2
    else:
        names = (
            tuple(sorted(ENGINES))
            if args.engines.strip() == "all"
            else tuple(e.strip() for e in args.engines.split(",") if e.strip())
        )
        unknown = [e for e in names if e not in ENGINES]
        if unknown:
            print(
                f"unknown engine(s) {unknown}; known: {sorted(ENGINES)}",
                file=sys.stderr,
            )
            return 2
        records = run_bench(
            names,
            side=args.side,
            until=args.until,
            seed=args.seed,
            n_replicas=args.replicas,
            backend=args.backend,
        )
    if args.json:
        for record in records:
            path = write_bench_json(args.out, record)
            print(f"wrote {path}", file=sys.stderr)
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    from ..io.report import format_table

    rows = [
        (
            r["name"],
            r["algorithm"],
            "x".join(str(x) for x in r["lattice"]),
            int(r["timings"]["trials"]),
            f"{r['timings']['trials_per_s']:.3g}",
            f"{r['timings']['wall_s']:.3f}",
            f"{r['metrics']['gauges'].get('acceptance', float('nan')):.3f}",
        )
        for r in records
    ]
    print(
        format_table(
            ["engine", "algorithm", "lattice", "trials", "trials/s", "wall_s", "accept"],
            rows,
        )
    )
    return 0
