"""System states (configurations): assignments of species to sites.

A configuration is a function from the lattice to the species domain
(paper, section 2); here it is a flat ``uint8`` numpy array of length
``N`` indexed by flat site index, wrapped together with its lattice and
species registry so that states can be constructed from and rendered
back to species names.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .lattice import Lattice
from .species import EMPTY, SpeciesRegistry

__all__ = ["Configuration"]


class Configuration:
    """A mutable lattice configuration backed by a flat ``uint8`` array.

    Simulators mutate ``array`` in place through the kernels; the class
    provides construction, inspection and measurement conveniences.

    Examples
    --------
    >>> from repro.core.lattice import Lattice
    >>> from repro.core.species import SpeciesRegistry
    >>> sp = SpeciesRegistry(["*", "CO", "O"]).freeze()
    >>> c = Configuration.empty(Lattice((2, 2)), sp)
    >>> c.set((0, 1), "CO")
    >>> c.coverage("CO")
    0.25
    """

    __slots__ = ("lattice", "species", "array")

    def __init__(self, lattice: Lattice, species: SpeciesRegistry, array: np.ndarray):
        array = np.asarray(array, dtype=np.uint8)
        if array.shape != (lattice.n_sites,):
            raise ValueError(
                f"state array shape {array.shape} does not match "
                f"{lattice.n_sites} lattice sites (must be flat)"
            )
        if array.size and int(array.max()) >= len(species):
            raise ValueError("state array contains codes outside the species registry")
        self.lattice = lattice
        self.species = species
        self.array = array

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, lattice: Lattice, species: SpeciesRegistry) -> "Configuration":
        """All sites vacant (species ``"*"``)."""
        code = species.code(EMPTY)
        return cls(lattice, species, np.full(lattice.n_sites, code, dtype=np.uint8))

    @classmethod
    def filled(
        cls, lattice: Lattice, species: SpeciesRegistry, name: str
    ) -> "Configuration":
        """All sites occupied by one species."""
        code = species.code(name)
        return cls(lattice, species, np.full(lattice.n_sites, code, dtype=np.uint8))

    @classmethod
    def random(
        cls,
        lattice: Lattice,
        species: SpeciesRegistry,
        fractions: Mapping[str, float],
        rng: np.random.Generator,
    ) -> "Configuration":
        """Random i.i.d. configuration with given species fractions.

        Species absent from ``fractions`` get the remaining probability
        assigned to ``"*"``; fractions must sum to at most 1.
        """
        names = list(fractions)
        probs = np.array([fractions[n] for n in names], dtype=np.float64)
        if np.any(probs < 0) or probs.sum() > 1.0 + 1e-12:
            raise ValueError(f"invalid fractions {dict(fractions)}")
        rest = max(0.0, 1.0 - probs.sum())
        if EMPTY in names:
            if rest > 1e-12:
                raise ValueError("fractions including '*' must sum to 1")
        else:
            names.append(EMPTY)
            probs = np.append(probs, rest)
        codes = np.array([species.code(n) for n in names], dtype=np.uint8)
        draw = rng.choice(codes, size=lattice.n_sites, p=probs / probs.sum())
        return cls(lattice, species, draw.astype(np.uint8))

    @classmethod
    def from_grid(
        cls,
        lattice: Lattice,
        species: SpeciesRegistry,
        rows: Sequence[Sequence[str]] | Sequence[str],
    ) -> "Configuration":
        """Build from nested species names in lattice shape (2-d) or a flat list (1-d)."""
        if lattice.ndim == 1:
            flat = [str(x) for x in rows]  # type: ignore[arg-type]
        else:
            flat = [str(x) for row in rows for x in row]  # type: ignore[union-attr]
        if len(flat) != lattice.n_sites:
            raise ValueError(
                f"grid has {len(flat)} entries, lattice has {lattice.n_sites} sites"
            )
        return cls(lattice, species, species.encode(flat))

    def copy(self) -> "Configuration":
        """Deep copy (the array is copied)."""
        return Configuration(self.lattice, self.species, self.array.copy())

    # ------------------------------------------------------------------
    # site access
    # ------------------------------------------------------------------
    def get(self, site: Sequence[int]) -> str:
        """Species name at a site (given as coordinates)."""
        return self.species.name(int(self.array[self.lattice.flat_index(site)]))

    def set(self, site: Sequence[int], name: str) -> None:
        """Assign a species name to a site."""
        self.array[self.lattice.flat_index(site)] = self.species.code(name)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def counts(self) -> np.ndarray:
        """Number of sites per species code (length ``len(species)``)."""
        return np.bincount(self.array, minlength=len(self.species))

    def coverage(self, name: str) -> float:
        """Fraction of sites occupied by a species."""
        code = self.species.code(name)
        return float(np.count_nonzero(self.array == code)) / self.lattice.n_sites

    def coverages(self, names: Iterable[str] | None = None) -> dict[str, float]:
        """Coverage of every (or the given) species as a dict."""
        cnt = self.counts() / self.lattice.n_sites
        if names is None:
            names = self.species.names
        return {n: float(cnt[self.species.code(n)]) for n in names}

    def sites_of(self, name: str) -> np.ndarray:
        """Flat indices of all sites occupied by a species."""
        return np.flatnonzero(self.array == self.species.code(name))

    # ------------------------------------------------------------------
    def grid(self) -> np.ndarray:
        """The state reshaped to lattice shape (a view onto ``array``)."""
        return self.lattice.as_grid(self.array)

    def render(self, symbols: Mapping[str, str] | None = None) -> str:
        """ASCII rendering; one character per site, rows newline-separated.

        By default the first character of each species name is used
        (``"*"`` renders as ``"."``).
        """
        if symbols is None:
            symbols = {
                n: ("." if n == EMPTY else n[0]) for n in self.species.names
            }
        table = {self.species.code(n): symbols[n] for n in self.species.names}
        grid = self.grid() if self.lattice.ndim == 2 else self.array.reshape(1, -1)
        return "\n".join("".join(table[int(v)] for v in row) for row in grid)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Configuration)
            and other.lattice == self.lattice
            and bool(np.array_equal(other.array, self.array))
        )

    def __repr__(self) -> str:
        return (
            f"Configuration(lattice={self.lattice!r}, "
            f"coverages={self.coverages()!r})"
        )
