"""Conservation-law analysis of reaction systems.

Every reaction type changes the per-species site counts by a fixed
integer *stoichiometry vector* (e.g. a diffusion hop changes nothing;
CO adsorption turns one ``*`` into one ``CO``).  A linear functional
``c . counts`` is conserved by the dynamics iff ``c`` is orthogonal to
every stoichiometry vector — the integer null space of the
stoichiometry matrix.

Knowing the conserved quantities of a model is both physics (particle
conservation in diffusion models, total site count always) and a
powerful testing tool: *every* simulator must keep them invariant
along any trajectory, which the property tests exploit.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .model import Model

__all__ = [
    "stoichiometry_matrix",
    "conserved_quantities",
    "is_conserved",
    "check_trajectory_conservation",
]


def stoichiometry_matrix(model: Model) -> np.ndarray:
    """Per-type change of species counts; shape ``(n_types, n_species)``.

    Row ``i`` holds, for each species, how many sites gain (+) or lose
    (-) that species when reaction type ``i`` executes once.
    """
    n_sp = len(model.species)
    out = np.zeros((model.n_types, n_sp), dtype=np.int64)
    for i, rt in enumerate(model.reaction_types):
        for c in rt.changes:
            out[i, model.species.code(c.src)] -= 1
            out[i, model.species.code(c.tg)] += 1
    return out


def _rational_nullspace(matrix: np.ndarray) -> list[list[Fraction]]:
    """Exact null space basis of an integer matrix (Gauss over Q)."""
    rows, cols = matrix.shape
    a = [[Fraction(int(matrix[r, c])) for c in range(cols)] for r in range(rows)]
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        pivot_row = next((i for i in range(r, rows) if a[i][c] != 0), None)
        if pivot_row is None:
            continue
        a[r], a[pivot_row] = a[pivot_row], a[r]
        inv = a[r][c]
        a[r] = [x / inv for x in a[r]]
        for i in range(rows):
            if i != r and a[i][c] != 0:
                f = a[i][c]
                a[i] = [x - f * y for x, y in zip(a[i], a[r])]
        pivots.append(c)
        r += 1
        if r == rows:
            break
    free = [c for c in range(cols) if c not in pivots]
    basis = []
    for fc in free:
        v = [Fraction(0)] * cols
        v[fc] = Fraction(1)
        for pr, pc in enumerate(pivots):
            v[pc] = -a[pr][fc]
        basis.append(v)
    return basis


def conserved_quantities(model: Model) -> list[dict[str, int]]:
    """Integer basis of conserved linear functionals of the counts.

    Returns one dict per conserved quantity mapping species name to
    its integer coefficient (scaled to the smallest integer vector).
    The total site count (all-ones vector) is always in the span;
    models with additional conservation laws (diffusion: particle
    number) return more than one basis vector.
    """
    s = stoichiometry_matrix(model)
    basis = _rational_nullspace(s)
    out = []
    for v in basis:
        denom = np.lcm.reduce([f.denominator for f in v]) if v else 1
        ints = [int(f * denom) for f in v]
        g = np.gcd.reduce([abs(x) for x in ints if x]) or 1
        ints = [x // g for x in ints]
        # canonical sign: first nonzero positive
        first = next((x for x in ints if x), 1)
        if first < 0:
            ints = [-x for x in ints]
        out.append({name: c for name, c in zip(model.species.names, ints)})
    return out


def is_conserved(model: Model, coefficients: dict[str, int | float]) -> bool:
    """Is ``sum_X coefficients[X] * count_X`` invariant under every reaction?

    Species absent from ``coefficients`` get coefficient 0.
    """
    c = np.array(
        [float(coefficients.get(name, 0)) for name in model.species.names]
    )
    s = stoichiometry_matrix(model)
    return bool(np.allclose(s @ c, 0.0))


def check_trajectory_conservation(
    model: Model,
    states: list[np.ndarray],
    coefficients: dict[str, int | float],
) -> bool:
    """Does a sequence of configurations keep a quantity constant?"""
    if not states:
        raise ValueError("need at least one state")
    c = np.array(
        [float(coefficients.get(name, 0)) for name in model.species.names]
    )
    n_sp = len(model.species)
    values = [
        float(np.bincount(s, minlength=n_sp) @ c) for s in states
    ]
    return bool(np.allclose(values, values[0]))
