"""Compiled models: flat numpy tables binding a model to a lattice.

Every simulator in this package (RSM, VSSM, FRM, NDCA, PNDCA,
L-PNDCA, the reaction-type-partitioned CA) performs the same two
primitive operations

* *match*  — is reaction type ``t`` enabled at anchor site ``s``?
* *apply*  — execute it (write the target pattern).

Compilation turns each reaction type into

* per-change neighbour index maps (``lattice.neighbor_map(offset)``),
  so that the sites touched by type ``t`` anchored at ``s`` are
  ``maps[c][s]`` for each change ``c`` — pure gathers, no coordinate
  arithmetic at simulation time (cache-friendly per the numpy
  optimisation guide),
* ``uint8`` source/target vectors,
* a cumulative rate table for rate-weighted type selection
  (``k_i / K``).

The actual kernels (sequential trial loop, vectorised batch) live in
:mod:`repro.core.kernels`; this module owns the tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..lint.contracts import kernel
from .lattice import Lattice
from .model import Model
from .rates import selection_table

__all__ = ["CompiledModel", "CompiledType"]


class CompiledType:
    """Flat tables for one reaction type on one lattice.

    Attributes
    ----------
    maps : list[np.ndarray]
        For each change, the length-``N`` neighbour map (``intp``).
    srcs, tgts : list[int]
        Source/target species codes (plain python ints: fastest in the
        sequential hot loop).
    src_arr, tgt_arr : np.ndarray
        The same as ``uint8`` arrays for vectorised kernels.
    rate : float
        Rate constant ``k``.
    """

    __slots__ = ("index", "name", "maps", "srcs", "tgts", "src_arr", "tgt_arr", "rate", "n_sites")

    def __init__(self, index: int, name: str, maps, srcs, tgts, rate: float):
        self.index = index
        self.name = name
        self.maps = maps
        self.srcs = [int(s) for s in srcs]
        self.tgts = [int(t) for t in tgts]
        self.src_arr = np.array(srcs, dtype=np.uint8)
        self.tgt_arr = np.array(tgts, dtype=np.uint8)
        self.rate = float(rate)
        self.n_sites = len(maps)

    def __repr__(self) -> str:
        return f"CompiledType({self.index}, {self.name!r}, k={self.rate:g})"


class CompiledModel:
    """A :class:`Model` bound to a :class:`Lattice`.

    Attributes
    ----------
    model, lattice:
        The bound pair.
    types : list[CompiledType]
        One entry per reaction type, in model order.
    rates : np.ndarray
        Rate constants ``k_i``.
    total_rate : float
        ``K = sum k_i``.
    type_cum : np.ndarray
        Cumulative table such that ``searchsorted(type_cum, u, 'right')``
        selects type ``i`` with probability ``k_i / K``.
    """

    def __init__(self, model: Model, lattice: Lattice):
        if model.ndim != lattice.ndim:
            raise ValueError(
                f"model is {model.ndim}-d but lattice is {lattice.ndim}-d"
            )
        lo_hi = _pattern_extent(model)
        for extent, side in zip(lo_hi, lattice.shape):
            if extent > side:
                raise ValueError(
                    f"lattice side {side} is smaller than a reaction pattern "
                    f"extent {extent}; periodic wrapping would self-overlap"
                )
        self.model = model
        self.lattice = lattice
        self.types: list[CompiledType] = []
        for i, rt in enumerate(model.reaction_types):
            maps = [lattice.neighbor_map(c.offset) for c in rt.changes]
            srcs = [model.species.code(c.src) for c in rt.changes]
            tgts = [model.species.code(c.tg) for c in rt.changes]
            self.types.append(CompiledType(i, rt.name, maps, srcs, tgts, rt.rate))
        self.rates = np.array([t.rate for t in self.types], dtype=np.float64)
        self.type_cum, self.total_rate = selection_table(self.rates)

    # ------------------------------------------------------------------
    @property
    def n_types(self) -> int:
        """Number of reaction types."""
        return len(self.types)

    @property
    def n_sites(self) -> int:
        """Number of lattice sites N."""
        return self.lattice.n_sites

    def __repr__(self) -> str:
        return f"CompiledModel({self.model.name!r} on {self.lattice!r})"

    # ------------------------------------------------------------------
    # scalar operations (used by tests and the event-driven simulators)
    # ------------------------------------------------------------------
    @kernel(pure=True, reads=("self", "state"), dtypes={"state": "uint8"})
    def is_enabled(self, state: np.ndarray, type_index: int, site: int) -> bool:
        """Does the source pattern of a type match at an anchor site?"""
        ct = self.types[type_index]
        for m, src in zip(ct.maps, ct.srcs):
            if state[m[site]] != src:
                return False
        return True

    @kernel(reads=("self",), writes=("state",), dtypes={"state": "uint8"})
    def execute(self, state: np.ndarray, type_index: int, site: int) -> None:
        """Write the target pattern of a type anchored at a site."""
        ct = self.types[type_index]
        for m, tgt in zip(ct.maps, ct.tgts):
            state[m[site]] = tgt

    @kernel(pure=True, reads=("self", "state"), dtypes={"state": "uint8"})
    def enabled_types_at(self, state: np.ndarray, site: int) -> list[int]:
        """All reaction-type indices enabled at an anchor site."""
        return [i for i in range(self.n_types) if self.is_enabled(state, i, site)]

    # ------------------------------------------------------------------
    # vectorised operations
    # ------------------------------------------------------------------
    @kernel(pure=True, reads=("self", "state", "sites"), dtypes={"state": "uint8"})
    def match_sites(
        self, state: np.ndarray, type_index: int, sites: np.ndarray
    ) -> np.ndarray:
        """Boolean mask: at which of ``sites`` is the type enabled?"""
        ct = self.types[type_index]
        sites = np.asarray(sites, dtype=np.intp)
        mask = state[ct.maps[0][sites]] == ct.srcs[0]
        for m, src in zip(ct.maps[1:], ct.srcs[1:]):
            mask &= state[m[sites]] == src
        return mask

    @kernel(pure=True, reads=("self", "state"), dtypes={"state": "uint8"})
    def enabled_anchor_sites(self, state: np.ndarray, type_index: int) -> np.ndarray:
        """Flat indices of every anchor site where the type is enabled."""
        ct = self.types[type_index]
        mask = state[ct.maps[0]] == ct.srcs[0]
        for m, src in zip(ct.maps[1:], ct.srcs[1:]):
            mask &= state[m] == src
        return np.flatnonzero(mask)

    @kernel(pure=True, reads=("self", "state", "sites"), dtypes={"state": "uint8"})
    def enabled_rate_total(self, state: np.ndarray, sites: np.ndarray | None = None) -> float:
        """Sum of rate constants of all enabled reactions (optionally on a site subset).

        This is ``sum_i k_i * |enabled anchors of i|`` — the total exit
        rate of the current state in the Master Equation sense.
        """
        total = 0.0
        for i, ct in enumerate(self.types):
            if sites is None:
                n = self.enabled_anchor_sites(state, i).size
            else:
                n = int(np.count_nonzero(self.match_sites(state, i, sites)))
            total += ct.rate * n
        return total

    @kernel(pure=True, reads=("self", "changed_sites"))
    def affected_anchors(self, changed_sites: Sequence[int]) -> np.ndarray:
        """Anchor sites whose enabled-status may change when the given sites change.

        Needed by the event-driven simulators (VSSM/FRM) to update their
        enabled-reaction bookkeeping: if site ``z`` changed, any anchor
        ``s`` with ``z in Nb_Rt(s)`` for some type, i.e.
        ``s = z - offset``, is affected.
        """
        offs = self.model.union_neighborhood()
        changed = np.asarray(list(changed_sites), dtype=np.intp)
        out = []
        for off in offs:
            neg = tuple(-o for o in off)
            out.append(self.lattice.neighbor_map(neg)[changed])
        return np.unique(np.concatenate(out))


def _pattern_extent(model: Model) -> tuple[int, ...]:
    """Max pattern extent (per axis) over all reaction types, in sites."""
    ndim = model.ndim
    extent = [1] * ndim
    for rt in model.reaction_types:
        for d in range(ndim):
            vals = [c.offset[d] for c in rt.changes]
            extent[d] = max(extent[d], max(vals) - min(vals) + 1)
    return tuple(extent)
