"""Reaction types: translation-invariant local rewrites of the lattice.

Following section 2 of the paper, a reaction type applied at an anchor
site ``s`` yields a collection of triples ``(site, src, tg)``:

* ``site`` — here stored as an *offset* relative to ``s`` (which makes
  translation invariance automatic),
* ``src`` — the species that must occupy that site for the reaction to
  be *enabled* (the source pattern),
* ``tg`` — the species that occupies it after execution (the target
  pattern).

A reaction type also carries a *rate constant* ``k``, the probability
per unit time of the reaction occurring, typically an Arrhenius
expression (see :mod:`repro.core.rates`).

Many physical reactions (dissociative adsorption, reaction between
adsorbed neighbours, diffusion hops) exist in several lattice
orientations; each orientation is a distinct reaction type (the paper's
``Rt^(0..3)``).  :func:`oriented` generates the variants in the paper's
ordering: east ``(1,0)``, north ``(0,1)``, west ``(-1,0)``, south
``(0,-1)``.

Note on Table I of the paper: the printed row for ``Rt^(3)_{CO+O}``
reads ``(s+(0,-1), CO, *)`` — a typo for ``(s+(0,-1), O, *)`` (the
reaction consumes a CO/O *pair*; the other three orientations all pair
CO with O).  This package generates the evidently intended version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .lattice import Offset

__all__ = ["Change", "ReactionType", "oriented", "rotate_offset", "ORIENTATIONS_4", "ORIENTATIONS_2"]


@dataclass(frozen=True)
class Change:
    """One ``(site, src, tg)`` triple of a reaction type.

    ``offset`` is relative to the anchor site.  ``src`` and ``tg`` are
    species *names*; they are resolved to codes when a model is
    compiled.
    """

    offset: Offset
    src: str
    tg: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", tuple(int(c) for c in self.offset))

    def translated(self, shift: Sequence[int]) -> "Change":
        """The same change expressed relative to a shifted anchor."""
        return Change(tuple(o + s for o, s in zip(self.offset, shift)), self.src, self.tg)


@dataclass(frozen=True)
class ReactionType:
    """A named, translation-invariant reaction with a rate constant.

    Parameters
    ----------
    name:
        Identifier, unique within a model (e.g. ``"CO_ads"`` or
        ``"CO+O(2)"`` for the third orientation of the CO+O reaction).
    changes:
        The ``(offset, src, tg)`` triples.  Offsets must be distinct and
        one of them must be the zero offset (paper: ``s in Nb(s)``).
    rate:
        Rate constant ``k`` (probability per unit time), strictly
        positive.
    group:
        Optional label tying oriented variants of the same physical
        reaction together (e.g. all four CO+O orientations share
        ``group="CO+O"``).  Used for reporting and for reaction-type
        partitioning (Table II).
    """

    name: str
    changes: tuple[Change, ...]
    rate: float
    group: str = ""

    def __post_init__(self) -> None:
        changes = tuple(
            c if isinstance(c, Change) else Change(*c) for c in self.changes
        )
        object.__setattr__(self, "changes", changes)
        if not changes:
            raise ValueError(f"reaction type {self.name!r} has no changes")
        ndim = len(changes[0].offset)
        offsets = [c.offset for c in changes]
        if any(len(o) != ndim for o in offsets):
            raise ValueError(f"reaction type {self.name!r} mixes offset dimensionalities")
        if len(set(offsets)) != len(offsets):
            raise ValueError(f"reaction type {self.name!r} has duplicate offsets {offsets}")
        if tuple([0] * ndim) not in offsets:
            raise ValueError(
                f"reaction type {self.name!r} must include the anchor site "
                f"(zero offset); offsets are {offsets}"
            )
        if not (self.rate > 0.0):
            raise ValueError(f"reaction type {self.name!r} needs a positive rate, got {self.rate}")
        if not self.group:
            object.__setattr__(self, "group", self.name)

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Dimensionality of the offsets."""
        return len(self.changes[0].offset)

    @property
    def neighborhood(self) -> tuple[Offset, ...]:
        """The offsets touched by this reaction type, ``Nb_Rt`` relative to s."""
        return tuple(c.offset for c in self.changes)

    @property
    def source_pattern(self) -> tuple[str, ...]:
        """Species names required at each offset (same order as offsets)."""
        return tuple(c.src for c in self.changes)

    @property
    def target_pattern(self) -> tuple[str, ...]:
        """Species names written at each offset after execution."""
        return tuple(c.tg for c in self.changes)

    @property
    def n_sites(self) -> int:
        """Number of sites in the pattern."""
        return len(self.changes)

    def species(self) -> set[str]:
        """All species names mentioned by this reaction type."""
        out: set[str] = set()
        for c in self.changes:
            out.add(c.src)
            out.add(c.tg)
        return out

    def is_null(self) -> bool:
        """True if executing the reaction never changes the state."""
        return all(c.src == c.tg for c in self.changes)

    def with_rate(self, rate: float) -> "ReactionType":
        """Copy of this reaction type with a different rate constant."""
        return ReactionType(self.name, self.changes, rate, self.group)

    def describe(self) -> str:
        """Human-readable rendering matching the paper's notation.

        Example: ``{(s,CO,*), (s+(1,0),O,*)}``.
        """
        parts = []
        for c in self.changes:
            if all(o == 0 for o in c.offset):
                where = "s"
            else:
                where = "s+" + "(" + ",".join(str(o) for o in c.offset) + ")"
            parts.append(f"({where},{c.src},{c.tg})")
        return "{" + ", ".join(parts) + "}"


# ----------------------------------------------------------------------
# orientation helpers
# ----------------------------------------------------------------------

#: Rotation order used by the paper's superscripts: (1,0), (0,1), (-1,0), (0,-1).
ORIENTATIONS_4 = ((1, 0), (0, 1), (-1, 0), (0, -1))
#: The two orientations needed for symmetric two-site patterns (O2 adsorption).
ORIENTATIONS_2 = ((1, 0), (0, 1))


def rotate_offset(offset: Offset, direction: Offset) -> Offset:
    """Rotate a 2-d offset so that ``(1, 0)`` maps onto ``direction``.

    ``direction`` must be one of the four axis unit vectors.  The
    rotation is the unique proper rotation by a multiple of 90 degrees.
    """
    dx, dy = direction
    if (abs(dx), abs(dy)) not in ((1, 0), (0, 1)) or abs(dx) + abs(dy) != 1:
        raise ValueError(f"direction must be an axis unit vector, got {direction}")
    x, y = offset
    # rotation matrix [[dx, -dy], [dy, dx]] applied to (x, y)
    return (dx * x - dy * y, dy * x + dx * y)


def oriented(
    name: str,
    changes: Iterable[Change | tuple],
    rate: float,
    directions: Sequence[Offset] = ORIENTATIONS_4,
    group: str | None = None,
) -> list[ReactionType]:
    """Generate the oriented variants of a 2-d reaction type.

    ``changes`` describes the reaction in its reference orientation
    (pointing east, ``(1, 0)``); one variant per entry of
    ``directions`` is produced, named ``f"{name}({i})"``, matching the
    paper's ``Rt^(i)`` superscripts.

    >>> [rt.name for rt in oriented("O2_ads", [((0, 0), "*", "O"), ((1, 0), "*", "O")],
    ...                              rate=1.0, directions=ORIENTATIONS_2)]
    ['O2_ads(0)', 'O2_ads(1)']
    """
    base = [c if isinstance(c, Change) else Change(*c) for c in changes]
    if any(len(c.offset) != 2 for c in base):
        raise ValueError("oriented() only applies to 2-d reaction types")
    out = []
    for i, d in enumerate(directions):
        rotated = tuple(
            Change(rotate_offset(c.offset, d), c.src, c.tg) for c in base
        )
        out.append(
            ReactionType(f"{name}({i})", rotated, rate, group=group or name)
        )
    return out
