"""Periodic lattices of adsorption sites.

The surface is modelled as a d-dimensional (d = 1 or 2 in the paper)
rectangular lattice ``Omega`` of ``N = L0 x L1`` sites with periodic
boundary conditions.  Sites are identified either by integer coordinate
tuples or by a flat index in ``range(N)`` (row-major / C order, the
cache-friendly order for the underlying numpy state arrays).

The only geometric operation simulators need is "site + offset" under
periodic wrapping.  Because every reaction type is translation invariant
(paper, section 2), the map ``s -> s + offset`` is the same permutation
of ``Omega`` for every anchor site, so it is precomputed once per
distinct offset and cached as an index array (``neighbor_map``).  Kernels
then express pattern matching and execution as pure gather/scatter
operations on flat arrays.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["Lattice", "Offset", "Site"]

#: A relative displacement between sites, e.g. ``(0, 1)`` for "east".
Offset = tuple[int, ...]
#: An absolute site position, same representation as an offset.
Site = tuple[int, ...]


class Lattice:
    """A periodic rectangular lattice of sites.

    Parameters
    ----------
    shape:
        Side lengths ``(L0,)`` for a 1-d lattice or ``(L0, L1)`` for a
        2-d lattice.  All lengths must be positive.

    Examples
    --------
    >>> lat = Lattice((3, 4))
    >>> lat.n_sites
    12
    >>> lat.flat_index((2, 3))
    11
    >>> lat.wrap((3, -1))
    (0, 3)
    """

    __slots__ = ("_shape", "_n_sites", "_strides", "_maps")

    def __init__(self, shape: Sequence[int]):
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (1, 2):
            raise ValueError(f"only 1-d and 2-d lattices are supported, got shape {shape}")
        if any(s <= 0 for s in shape):
            raise ValueError(f"all side lengths must be positive, got {shape}")
        self._shape = shape
        self._n_sites = int(np.prod(shape))
        # row-major strides measured in sites (not bytes)
        strides = [1] * len(shape)
        for axis in range(len(shape) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * shape[axis + 1]
        self._strides = tuple(strides)
        self._maps: dict[Offset, np.ndarray] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Side lengths of the lattice."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of lattice dimensions (1 or 2)."""
        return len(self._shape)

    @property
    def n_sites(self) -> int:
        """Total number of sites ``N``."""
        return self._n_sites

    def __repr__(self) -> str:
        return f"Lattice(shape={self._shape})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Lattice) and other._shape == self._shape

    def __hash__(self) -> int:
        return hash(("Lattice", self._shape))

    # ------------------------------------------------------------------
    # coordinate conversions
    # ------------------------------------------------------------------
    def wrap(self, site: Sequence[int]) -> Site:
        """Map an arbitrary integer position onto the lattice periodically."""
        if len(site) != self.ndim:
            raise ValueError(f"site {site!r} has wrong dimensionality for {self!r}")
        return tuple(int(c) % s for c, s in zip(site, self._shape))

    def flat_index(self, site: Sequence[int]) -> int:
        """Flat (row-major) index of a site; the site is wrapped first."""
        wrapped = self.wrap(site)
        return sum(c * st for c, st in zip(wrapped, self._strides))

    def coords(self, flat: int) -> Site:
        """Coordinate tuple of a flat index."""
        if not 0 <= flat < self._n_sites:
            raise IndexError(f"flat index {flat} out of range for {self!r}")
        out = []
        for st in self._strides:
            out.append(flat // st)
            flat %= st
        return tuple(out)

    def sites(self) -> Iterator[Site]:
        """Iterate over all sites in flat-index order."""
        for flat in range(self._n_sites):
            yield self.coords(flat)

    # ------------------------------------------------------------------
    # offset maps
    # ------------------------------------------------------------------
    def neighbor_map(self, offset: Sequence[int]) -> np.ndarray:
        """Permutation array mapping every flat index to ``site + offset``.

        The result is cached, read-only and shared between callers; it
        has dtype ``intp`` and shape ``(n_sites,)``.  ``neighbor_map(0)``
        is the identity.
        """
        key: Offset = tuple(int(o) for o in offset)
        if len(key) != self.ndim:
            raise ValueError(f"offset {offset!r} has wrong dimensionality for {self!r}")
        cached = self._maps.get(key)
        if cached is not None:
            return cached
        grids = np.meshgrid(
            *(np.arange(s, dtype=np.intp) for s in self._shape), indexing="ij"
        )
        flat = np.zeros(self._shape, dtype=np.intp)
        for g, o, s, st in zip(grids, key, self._shape, self._strides):
            flat += ((g + o) % s) * st
        arr = np.ascontiguousarray(flat.reshape(-1))
        arr.setflags(write=False)
        self._maps[key] = arr
        return arr

    def shift_flat(self, flat_sites: np.ndarray, offset: Sequence[int]) -> np.ndarray:
        """Apply ``+ offset`` to an array of flat indices (vectorised)."""
        return self.neighbor_map(offset)[np.asarray(flat_sites, dtype=np.intp)]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def displacement(self, a: Sequence[int], b: Sequence[int]) -> Offset:
        """Minimal-image displacement from site ``a`` to site ``b``."""
        out = []
        for ca, cb, s in zip(self.wrap(a), self.wrap(b), self._shape):
            d = (cb - ca) % s
            if d > s // 2:
                d -= s
            out.append(d)
        return tuple(out)

    def all_flat(self) -> np.ndarray:
        """All flat indices, ``arange(n_sites)`` (fresh writable copy)."""
        return np.arange(self._n_sites, dtype=np.intp)

    def as_grid(self, flat_values: np.ndarray) -> np.ndarray:
        """Reshape a flat per-site array to the lattice shape (a view)."""
        arr = np.asarray(flat_values)
        if arr.shape[0] != self._n_sites:
            raise ValueError(
                f"array of length {arr.shape[0]} does not match {self._n_sites} sites"
            )
        return arr.reshape(self._shape + arr.shape[1:])
