"""The domain ``D`` of particle types that can occupy a site.

Every site of the lattice takes a value from a finite set ``D``
(paper, section 2), conventionally containing ``"*"`` for a vacant
site.  Internally each species is a small unsigned integer so that a
configuration is a compact ``uint8`` numpy array; the registry maps
between the human-readable names used in model definitions and the
integer codes used by the kernels.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["SpeciesRegistry", "EMPTY"]

#: Conventional name of the vacant-site species.
EMPTY = "*"


class SpeciesRegistry:
    """Bidirectional mapping between species names and ``uint8`` codes.

    Codes are assigned in registration order starting at 0.  The
    registry is immutable once frozen (models freeze their registry on
    construction) so that compiled tables can never go stale.

    Examples
    --------
    >>> sp = SpeciesRegistry(["*", "CO", "O"])
    >>> sp.code("CO")
    1
    >>> sp.name(2)
    'O'
    >>> len(sp)
    3
    """

    __slots__ = ("_names", "_codes", "_frozen")

    def __init__(self, names: Iterable[str] = ()):
        self._names: list[str] = []
        self._codes: dict[str, int] = {}
        self._frozen = False
        for n in names:
            self.register(n)

    def register(self, name: str) -> int:
        """Add a species and return its code; idempotent for known names."""
        if name in self._codes:
            return self._codes[name]
        if self._frozen:
            raise RuntimeError(f"registry is frozen; cannot add species {name!r}")
        if not isinstance(name, str) or not name:
            raise ValueError(f"species name must be a non-empty string, got {name!r}")
        code = len(self._names)
        if code > np.iinfo(np.uint8).max:
            raise ValueError("more than 256 species are not supported")
        self._names.append(name)
        self._codes[name] = code
        return code

    def freeze(self) -> "SpeciesRegistry":
        """Disallow further registration; returns self for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether registration is closed."""
        return self._frozen

    def code(self, name: str) -> int:
        """Integer code of a species name."""
        try:
            return self._codes[name]
        except KeyError:
            raise KeyError(
                f"unknown species {name!r}; known: {self._names}"
            ) from None

    def name(self, code: int) -> str:
        """Species name of an integer code."""
        try:
            return self._names[int(code)]
        except IndexError:
            raise KeyError(f"unknown species code {code}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._codes

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """All species names in code order."""
        return tuple(self._names)

    def __repr__(self) -> str:
        return f"SpeciesRegistry({self._names!r})"

    def encode(self, names: Iterable[str]) -> np.ndarray:
        """Vector of codes for a sequence of names (``uint8``)."""
        return np.array([self.code(n) for n in names], dtype=np.uint8)

    def decode(self, codes: Iterable[int]) -> list[str]:
        """Names for a sequence of codes."""
        return [self.name(c) for c in codes]
