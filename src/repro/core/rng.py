"""Random number utilities: reproducible streams and block drawing.

All simulators consume randomness through ``numpy.random.Generator``
instances seeded explicitly — identical seeds give identical
trajectories on every platform.  For chunk-parallel execution, each
chunk/worker receives an independent child stream spawned from one
``SeedSequence`` (the standard recipe for parallel reproducibility).

Trials consume three random quantities: an anchor site, a reaction
type (rate-weighted) and a waiting-time increment.  The paper's
algorithms draw these per trial; drawing them in *blocks* is
semantically identical and an order of magnitude faster in numpy
(guide idiom: vectorise the loop's random draws, keep the loop for the
state mutation only).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rngs",
    "draw_types",
    "types_from_uniforms",
    "draw_sites",
    "draw_exponentials",
]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed (or pass through a Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent child generators from one seed."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def draw_types(rng: np.random.Generator, cum: np.ndarray, n: int) -> np.ndarray:
    """Draw ``n`` reaction-type indices from a cumulative rate table.

    ``cum`` is the output of
    :func:`repro.core.rates.selection_table`; type ``i`` is selected
    with probability ``k_i / K``.
    """
    return types_from_uniforms(cum, rng.random(n))


def types_from_uniforms(cum: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Map uniforms in ``[0, 1)`` to type indices against ``cum``.

    Elementwise equal to ``np.searchsorted(cum, u, side="right")`` for
    ``u < cum[-1]`` (guaranteed: :func:`repro.core.rates.selection_table`
    pins ``cum[-1] == 1.0`` and ``Generator.random`` draws from
    ``[0, 1)``).  For the small tables of a reaction model, summing one
    broadcast comparison per interior edge beats numpy's generic binary
    search by an order of magnitude on large blocks; big tables fall
    back to ``searchsorted``.
    """
    if len(cum) <= 16:
        out = np.zeros(u.shape, dtype=np.intp)
        for edge in cum[:-1]:
            out += u >= edge
        return out
    return np.searchsorted(cum, u, side="right").astype(np.intp)


def draw_sites(rng: np.random.Generator, n_sites: int, n: int) -> np.ndarray:
    """Draw ``n`` uniformly random anchor sites (flat indices)."""
    return rng.integers(0, n_sites, size=n, dtype=np.intp)


def draw_exponentials(rng: np.random.Generator, rate: float, n: int) -> np.ndarray:
    """``n`` waiting times with distribution ``1 - exp(-rate * t)``."""
    if rate <= 0:
        raise ValueError(f"exponential rate must be positive, got {rate}")
    return rng.exponential(scale=1.0 / rate, size=n)
