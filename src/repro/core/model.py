"""The simulation model: species domain + reaction types.

A :class:`Model` bundles the domain ``D`` (a
:class:`~repro.core.species.SpeciesRegistry`) with the set of reaction
types ``T`` and validates their mutual consistency.  A model is
independent of any particular lattice; binding a model to a
:class:`~repro.core.lattice.Lattice` produces a
:class:`~repro.core.compiled.CompiledModel` with the flat numpy tables
the simulation kernels run on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .lattice import Lattice, Offset
from .reaction import ReactionType
from .species import EMPTY, SpeciesRegistry

__all__ = ["Model"]


class Model:
    """A surface-reaction model: domain ``D`` and reaction-type set ``T``.

    Parameters
    ----------
    species:
        Either a :class:`SpeciesRegistry` or an iterable of species
        names (conventionally starting with ``"*"`` for vacant).
    reaction_types:
        The reaction types.  Names must be unique; every species they
        mention must be registered; all offsets must share one
        dimensionality.
    name:
        Optional human-readable model name used in reports.

    Examples
    --------
    >>> from repro.core.reaction import ReactionType
    >>> m = Model(["*", "A"], [ReactionType("ads", [((0,), "*", "A")], 2.0)],
    ...           name="1-d adsorption")
    >>> m.total_rate
    2.0
    """

    def __init__(
        self,
        species: SpeciesRegistry | Iterable[str],
        reaction_types: Sequence[ReactionType],
        name: str = "",
    ):
        if isinstance(species, SpeciesRegistry):
            self._species = species
        else:
            self._species = SpeciesRegistry(species)
        self._species.freeze()
        rts = tuple(reaction_types)
        if not rts:
            raise ValueError("a model needs at least one reaction type")
        names = [rt.name for rt in rts]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate reaction type names: {dupes}")
        ndim = rts[0].ndim
        if any(rt.ndim != ndim for rt in rts):
            raise ValueError("all reaction types must share one offset dimensionality")
        for rt in rts:
            for sp in rt.species():
                if sp not in self._species:
                    raise ValueError(
                        f"reaction type {rt.name!r} uses unknown species {sp!r}"
                    )
        self._reaction_types = rts
        self._ndim = ndim
        self.name = name or "model"
        self._rates = np.array([rt.rate for rt in rts], dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def species(self) -> SpeciesRegistry:
        """The domain ``D``."""
        return self._species

    @property
    def reaction_types(self) -> tuple[ReactionType, ...]:
        """The reaction-type set ``T`` in declaration order."""
        return self._reaction_types

    @property
    def n_types(self) -> int:
        """Number of reaction types |T|."""
        return len(self._reaction_types)

    @property
    def ndim(self) -> int:
        """Lattice dimensionality the model expects."""
        return self._ndim

    @property
    def rates(self) -> np.ndarray:
        """Rate constants ``k_i`` (read-only view)."""
        v = self._rates.view()
        v.setflags(write=False)
        return v

    @property
    def total_rate(self) -> float:
        """``K = sum_i k_i``, the paper's normalisation constant."""
        return float(self._rates.sum())

    def __repr__(self) -> str:
        return (
            f"Model(name={self.name!r}, species={list(self._species)},"
            f" n_types={self.n_types})"
        )

    # ------------------------------------------------------------------
    def type_index(self, name: str) -> int:
        """Index of a reaction type by name."""
        for i, rt in enumerate(self._reaction_types):
            if rt.name == name:
                return i
        raise KeyError(f"no reaction type named {name!r} in {self!r}")

    def types_in_group(self, group: str) -> list[int]:
        """Indices of all oriented variants sharing a group label."""
        out = [i for i, rt in enumerate(self._reaction_types) if rt.group == group]
        if not out:
            raise KeyError(f"no reaction types in group {group!r}")
        return out

    def groups(self) -> list[str]:
        """Distinct group labels, in first-appearance order."""
        seen: list[str] = []
        for rt in self._reaction_types:
            if rt.group not in seen:
                seen.append(rt.group)
        return seen

    def union_neighborhood(self) -> tuple[Offset, ...]:
        """Union of all reaction-type neighborhoods (offsets relative to s).

        This is the neighborhood relevant for the non-overlap rule of
        partitioned CA: two sites conflict if *any* pair of reaction
        types anchored at them touches a common site.
        """
        offs: set[Offset] = set()
        for rt in self._reaction_types:
            offs.update(rt.neighborhood)
        return tuple(sorted(offs))

    def empty_code(self) -> int:
        """Code of the vacant species ``"*"`` (raises if absent)."""
        return self._species.code(EMPTY)

    # ------------------------------------------------------------------
    def compile(self, lattice: Lattice) -> "CompiledModel":
        """Bind the model to a lattice, producing fast kernel tables."""
        from .compiled import CompiledModel

        return CompiledModel(self, lattice)

    def with_rates(self, rates: Mapping[str, float]) -> "Model":
        """Copy of the model with some rate constants replaced.

        ``rates`` maps *group* labels (or individual type names) to new
        rate constants; every oriented variant in a group gets the new
        value.
        """
        remaining = dict(rates)
        new_types = []
        for rt in self._reaction_types:
            if rt.name in remaining:
                new_types.append(rt.with_rate(remaining[rt.name]))
            elif rt.group in rates:
                new_types.append(rt.with_rate(rates[rt.group]))
                remaining.pop(rt.group, None)
            else:
                new_types.append(rt)
            remaining.pop(rt.name, None)
        if remaining:
            raise KeyError(f"unknown reaction types/groups in rates: {sorted(remaining)}")
        return Model(self._species, new_types, name=self.name)

    def describe(self) -> str:
        """Multi-line report of the model, one row per reaction type."""
        lines = [f"model {self.name!r}: D={list(self._species)}  K={self.total_rate:g}"]
        for i, rt in enumerate(self._reaction_types):
            lines.append(f"  [{i}] {rt.name:<14s} k={rt.rate:<10g} {rt.describe()}")
        return "\n".join(lines)
