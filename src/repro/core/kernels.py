"""Simulation kernels: the two execution primitives all algorithms share.

Every algorithm in the paper reduces to a stream of *trials*
``(site, reaction type)`` executed against the state:

* :func:`run_trials_sequential` — executes trials strictly one after
  another.  This is the exact semantics of RSM/NDCA and the fallback
  for partitions that are not conflict-free (the ``m = 1`` limit of
  L-PNDCA).  The loop is the package's hot path and is written
  accordingly: per-type tables are pre-bound as python lists, the state
  is accessed through a ``memoryview`` (scalar indexing on a
  memoryview is several times faster than on a numpy array), and all
  per-trial random numbers are drawn in blocks by the callers.

* :func:`run_trials_batch` — executes a set of trials *simultaneously*
  as vectorised numpy gathers/scatters.  This is only correct when the
  trial sites are pairwise conflict-free (distinct sites of one chunk
  of a validated partition): disjoint neighborhoods make the individual
  reactions commute, so any interleaving — including the simultaneous
  one — produces the same state.  This kernel is the package's
  realisation of the paper's chunk-parallelism (SIMD instead of
  multiple processors; the multiprocessing executor in
  :mod:`repro.parallel.executor` distributes exactly these batches).

* :func:`run_trials_batch_with_duplicates` — occurrence-batched variant
  for trial streams that may name the same site several times (L-PNDCA
  samples sites with replacement).  Trials are split into rounds such
  that each round touches each site at most once; per-site order is
  preserved, which (by commutation across distinct sites) reproduces
  the sequential result exactly.

Two further kernels lift the batch idea one axis higher, onto stacked
``(R, N)`` ensembles of R independent replicas (:mod:`repro.ensemble`):

* :func:`run_trials_stacked` — one conflict-free batch spanning many
  replicas at once (replica rows are disjoint, so cross-replica trials
  can never conflict).  Mixed reaction types are handled in a single
  gather/scatter through padded per-type tables
  (:func:`ensemble_tables`) instead of a per-type loop.

* :func:`run_trials_interleaved` — *exact* sequential semantics for R
  per-replica trial streams, executed concurrently: each replica's
  stream is cut greedily into conflict-free prefixes (a conservative
  site-difference LUT, :func:`conflict_lut`, detects potential
  footprint overlaps), and the union of the current prefixes across
  replicas runs as one simultaneous batch.  Because every batch is
  pairwise footprint-disjoint, the reactions commute and the result is
  bit-identical to running each replica through
  :func:`run_trials_sequential`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..lint.contracts import kernel
from .compiled import CompiledModel, CompiledType

__all__ = [
    "run_trials_sequential",
    "run_trials_batch",
    "run_trials_batch_with_duplicates",
    "run_trials_stacked",
    "run_trials_interleaved",
    "execute_type_everywhere",
    "seq_tables",
    "ensemble_tables",
    "conflict_lut",
]


# ----------------------------------------------------------------------
# sequential kernel
# ----------------------------------------------------------------------

@kernel(pure=True, reads=("compiled",))
def _table_key(compiled: CompiledModel) -> tuple:
    """Cache key tying derived tables to the exact model/lattice binding.

    Derived tables (:func:`seq_tables`, :func:`ensemble_tables`,
    :func:`conflict_lut`) are memoised on the compiled-model instance.
    A ``CompiledModel`` is constructed for one lattice, but nothing
    stops a caller from mutating the binding or reusing an instance
    across lattices of different shapes — the key makes a stale cache
    impossible: tables are rebuilt whenever the bound lattice shape or
    the type list no longer matches what they were built from.
    """
    return (compiled.lattice.shape, len(compiled.types))


@kernel(reads=("compiled",), caches=("compiled",))
def seq_tables(compiled: CompiledModel) -> list[tuple[list, list[int], list[int]]]:
    """Per-type ``(maps, srcs, tgts)`` with maps as python lists.

    Cached on the compiled model (keyed by the lattice shape and type
    count, see :func:`_table_key`).  Python-list neighbour maps make the
    sequential loop ~2x faster than numpy fancy-indexing scalars at the
    cost of ``O(n_types * pattern_size * N)`` ints of memory — fine for
    the lattice sizes the sequential path is used on.
    """
    key = _table_key(compiled)
    cached = getattr(compiled, "_seq_tables", None)
    if cached is None or cached[0] != key:
        tables = [
            (
                [m.tolist() for m in ct.maps],
                ct.srcs,
                ct.tgts,
            )
            for ct in compiled.types
        ]
        cached = (key, tables)
        compiled._seq_tables = cached  # type: ignore[attr-defined]
    return cached[1]


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts", "record"),
    caches=("compiled",),
    dtypes={"state": "uint8", "counts": "int64"},
)
def run_trials_sequential(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray | Sequence[int],
    types: np.ndarray | Sequence[int],
    counts: np.ndarray | None = None,
    record: list | None = None,
) -> int:
    """Execute trials one at a time; returns the number executed.

    Parameters
    ----------
    state:
        Flat ``uint8`` configuration array, mutated in place.
    sites, types:
        Equal-length trial streams (anchor site flat index, reaction
        type index).
    counts:
        Optional ``int64`` array of length ``n_types``; executed trials
        are accumulated per type.
    record:
        Optional list; for every *executed* trial the tuple
        ``(trial_index, type_index, site)`` is appended (used by the
        waiting-time / correctness analyses).
    """
    tables = seq_tables(compiled)
    mv = memoryview(state)
    site_list = sites.tolist() if isinstance(sites, np.ndarray) else list(sites)
    type_list = types.tolist() if isinstance(types, np.ndarray) else list(types)
    if len(site_list) != len(type_list):
        raise ValueError("sites and types must have equal length")
    n_exec = 0
    if record is None and counts is None:
        # tightest variant of the loop (no bookkeeping)
        for s, t in zip(site_list, type_list):
            maps, srcs, tgts = tables[t]
            for m, v in zip(maps, srcs):
                if mv[m[s]] != v:
                    break
            else:
                for m, v in zip(maps, tgts):
                    mv[m[s]] = v
                n_exec += 1
        return n_exec
    for i, (s, t) in enumerate(zip(site_list, type_list)):
        maps, srcs, tgts = tables[t]
        for m, v in zip(maps, srcs):
            if mv[m[s]] != v:
                break
        else:
            for m, v in zip(maps, tgts):
                mv[m[s]] = v
            n_exec += 1
            if counts is not None:
                counts[t] += 1
            if record is not None:
                record.append((i, t, s))
    return n_exec


# ----------------------------------------------------------------------
# batched (conflict-free) kernels
# ----------------------------------------------------------------------

@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    disjoint=("sites",),
    dtypes={"state": "uint8", "counts": "int64"},
)
def run_trials_batch(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: np.ndarray | None = None,
) -> int:
    """Execute a conflict-free trial batch simultaneously (vectorised).

    ``sites`` must be pairwise conflict-free for the model (distinct
    sites of a single chunk of a partition validated with
    :meth:`repro.partition.Partition.validate_conflict_free`).  The
    result is then identical to executing the trials sequentially in
    any order.  Returns the number executed.
    """
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    if sites.shape != types.shape:
        raise ValueError("sites and types must have equal length")
    n_exec = 0
    if sites.size == 0:
        return 0
    for t in np.unique(types):
        sel = sites[types == t]
        n = _execute_masked(state, compiled.types[t], sel)
        n_exec += n
        if counts is not None:
            counts[t] += n
    return n_exec


@kernel(
    reads=("ct", "sel"),
    writes=("state",),
    disjoint=("sel",),
    injective=("ct.maps",),
    dtypes={"state": "uint8"},
)
def _execute_masked(state: np.ndarray, ct: CompiledType, sel: np.ndarray) -> int:
    """Match one type at many anchors and execute where enabled.

    ``sel`` must be duplicate-free (``disjoint``) and ``ct.maps`` are
    injective periodic neighbour maps, so every per-change footprint
    gather ``m[hits]`` is itself duplicate-free — which is exactly the
    fact the kernel linter uses to prove the target scatters safe.
    """
    if sel.size == 0:
        return 0
    mask = state[ct.maps[0][sel]] == ct.srcs[0]
    for m, v in zip(ct.maps[1:], ct.srcs[1:]):
        mask &= state[m[sel]] == v
    hits = sel[mask]
    if hits.size:
        for m, v in zip(ct.maps, ct.tgts):
            state[m[hits]] = v
    return int(hits.size)


@kernel(
    reads=("sites", "types"),
    writes=("state", "counts"),
    dtypes={"state": "uint8", "counts": "int64"},
)
def run_trials_batch_with_duplicates(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: np.ndarray | None = None,
) -> int:
    """Vectorised execution of a trial stream that may repeat sites.

    The stream is partitioned into occurrence rounds: round ``r``
    contains the ``r``-th trial of every site.  Rounds run in order and
    each round is a conflict-free batch (pairwise-distinct sites).
    Per-site trial order is preserved, so — given that distinct sites
    of the stream are conflict-free, as inside a partition chunk — the
    final state equals that of :func:`run_trials_sequential` on the
    same stream.
    """
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    if sites.size == 0:
        return 0
    occ = _occurrence_index(sites)
    n_rounds = int(occ.max()) + 1
    if n_rounds == 1:
        return run_trials_batch(state, compiled, sites, types, counts)
    n_exec = 0
    for r in range(n_rounds):
        pick = occ == r
        n_exec += run_trials_batch(state, compiled, sites[pick], types[pick], counts)
    return n_exec


@kernel(pure=True, reads=("sites",), returns="occurrence_index")
def _occurrence_index(sites: np.ndarray) -> np.ndarray:
    """For each element, how many earlier elements have the same value.

    >>> _occurrence_index(np.array([7, 3, 7, 7, 3]))
    array([0, 0, 1, 2, 1])
    """
    _, inv = np.unique(sites, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    sorted_inv = inv[order]
    group_start = np.concatenate(([True], sorted_inv[1:] != sorted_inv[:-1]))
    # index within each group = position - position of group start
    idx = np.arange(sites.size)
    start_pos = idx[group_start][np.cumsum(group_start) - 1]
    occ_sorted = idx - start_pos
    occ = np.empty(sites.size, dtype=np.intp)
    occ[order] = occ_sorted
    return occ


# ----------------------------------------------------------------------
# stacked-ensemble kernels: R independent replicas on an (R, N) state
# ----------------------------------------------------------------------

@kernel(reads=("compiled",), caches=("compiled",))
def ensemble_tables(
    compiled: CompiledModel,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Padded per-type tables for mixed-type simultaneous execution.

    Returns ``(tmap, csrc, ctgt)`` with shapes ``(C, T * N)`` /
    ``(C, T)`` / ``(C, T)`` where ``C`` is the maximum number of
    changes over all reaction types.  Types with fewer changes repeat
    their first change: matching the same site twice against the same
    source and writing the same target twice is idempotent, so padding
    never alters semantics.

    The layout is chosen for gather speed: with the combined key
    ``base = type * N + site`` every per-change lookup is a *1-d* fancy
    gather ``tmap[c][base]`` / ``csrc[c][types]``.  The equivalent
    ``(T, C, N)`` layout needs two advanced indices per gather
    (``pmap[types, :, sites]``), which numpy serves through a ~10x
    slower generic take path.  With these tables a whole mixed-type
    trial batch matches and executes in ``O(C)`` cheap gathers instead
    of a python loop over the distinct types.

    Cached on the compiled model, keyed like :func:`seq_tables`.
    """
    key = _table_key(compiled)
    cached = getattr(compiled, "_ensemble_tables", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    n_types = len(compiled.types)
    c_max = max(len(ct.maps) for ct in compiled.types)
    n = compiled.n_sites
    # int32 indices halve the memory traffic of the dominant gathers;
    # they address the flat (R*N,) state, so this caps R * N at 2**31
    # (far beyond any ensemble that fits in memory for such an N)
    idx_dtype = np.int32 if n < 2**31 else np.intp
    tmap = np.empty((c_max, n_types * n), dtype=idx_dtype)
    csrc = np.empty((c_max, n_types), dtype=np.uint8)
    ctgt = np.empty((c_max, n_types), dtype=np.uint8)
    for t, ct in enumerate(compiled.types):
        for c in range(c_max):
            cc = c if c < len(ct.maps) else 0
            tmap[c, t * n : (t + 1) * n] = ct.maps[cc]
            csrc[c, t] = ct.srcs[cc]
            ctgt[c, t] = ct.tgts[cc]
    tables = (tmap, csrc, ctgt)
    compiled._ensemble_tables = (key, tables)  # type: ignore[attr-defined]
    return tables


@kernel(reads=("compiled",), caches=("compiled",))
def conflict_lut(compiled: CompiledModel) -> np.ndarray:
    """Conservative site-pair conflict table on flat-index differences.

    Boolean array of length ``2N - 1`` indexed by
    ``(s_i - s_j) + (N - 1)``: True whenever trials anchored at flat
    sites ``s_i`` and ``s_j`` *may* have overlapping footprints.  Built
    from the model's conflict-displacement difference set plus the zero
    displacement (a repeated anchor always conflicts with itself).

    Flat differences mix the row and column terms: for a displacement
    ``(dr, dc)`` on an ``(L0, L1)`` lattice the column term is either
    ``dc % L1`` or ``dc % L1 - L1`` (periodic borrow) and the row term
    contributes modulo ``N``, so each displacement registers several
    entries.  Some of them are unreachable — the table is a *superset*
    of the true conflict relation, which is exactly what the windowed
    executor needs: a false positive only cuts a prefix early (extra
    sequentialisation, same result); a false negative would break
    exactness.

    Cached on the compiled model, keyed like :func:`seq_tables`.
    """
    key = _table_key(compiled)
    cached = getattr(compiled, "_conflict_lut", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    from ..partition.partition import conflict_displacements

    n = compiled.n_sites
    shape = compiled.lattice.shape
    displacements = list(conflict_displacements(compiled.model.union_neighborhood()))
    displacements.append((0,) * compiled.lattice.ndim)
    lut = np.zeros(2 * n - 1, dtype=bool)
    for d in displacements:
        if compiled.lattice.ndim == 1:
            bases = [d[0] % shape[0]]
        else:
            dr, dc = d
            l0, l1 = shape
            bases = [(dr % l0) * l1 + dcc for dcc in (dc % l1, dc % l1 - l1)]
        for base in bases:
            for diff in (base % n, base % n - n):
                if -(n - 1) <= diff <= n - 1:
                    lut[diff + n - 1] = True
    compiled._conflict_lut = (key, lut)  # type: ignore[attr-defined]
    return lut


@kernel(
    reads=("reps", "types", "mask"),
    writes=("counts",),
    shapes={"counts": ("R", "T")},
    dtypes={"counts": "int64", "mask": "bool"},
)
def _stacked_counts(
    counts: np.ndarray, reps: np.ndarray, types: np.ndarray, mask: np.ndarray
) -> None:
    """Accumulate executed trials into a per-replica ``(R, T)`` table.

    The scatter-free formulation: duplicates in ``(rep, type)`` pairs
    are *expected* here, so the accumulation runs through
    ``np.bincount`` on the combined key followed by one whole-array
    ``+=`` — a reduce, not a fancy-index scatter, hence immune to the
    SR040 lost-update hazard by construction.
    """
    n_types = counts.shape[1]
    hits = np.bincount(
        reps[mask] * n_types + types[mask], minlength=counts.size
    )
    counts += hits.reshape(counts.shape)


@kernel(
    reads=("reps", "sites", "types"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={"states": ("R", "N"), "counts": ("R", "T")},
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_batch",
    rename={"states": "state"},
)
def run_trials_stacked(
    states: np.ndarray,
    compiled: CompiledModel,
    reps: np.ndarray,
    sites: np.ndarray,
    types: np.ndarray,
    counts: np.ndarray | None = None,
) -> int:
    """Execute one conflict-free trial batch spanning many replicas.

    Parameters
    ----------
    states:
        Stacked ``(R, N)`` ``uint8`` configuration array (C-contiguous),
        mutated in place.
    reps, sites, types:
        Equal-length trial streams: replica row, anchor site (flat index
        within the replica), reaction type.  Within each replica the
        sites must be pairwise conflict-free (e.g. distinct sites of one
        validated partition chunk); trials of different replicas can
        never conflict because their rows are disjoint.
    counts:
        Optional ``(R, T)`` ``int64`` array; executed trials are
        accumulated per replica and type.

    Returns the number executed.  Equivalent to running each replica's
    trials through :func:`run_trials_batch` on its own row, but in one
    simultaneous gather/scatter for all replicas and types.
    """
    if sites.size == 0:
        return 0
    tmap, csrc, ctgt = ensemble_tables(compiled)
    n = compiled.n_sites
    flat = states.reshape(-1)
    reps = np.asarray(reps, dtype=np.intp)
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    base = types * n
    base += sites
    roff = (reps * n).astype(tmap.dtype, copy=False)
    mask, idx_cols = _match_flat(flat, tmap, csrc, base, types, roff)
    n_hit = int(np.count_nonzero(mask))
    if n_hit:
        _write_flat(flat, ctgt, idx_cols, types, mask)
    if counts is not None:
        _stacked_counts(counts, reps, types, mask)
    return n_hit


@kernel(
    pure=True,
    reads=("flat", "tmap", "csrc", "base", "types", "roff"),
    shapes={
        "tmap": ("C", "TN"),
        "csrc": ("C", "T"),
        "base": ("B",),
        "types": ("B",),
        "roff": ("B",),
    },
    dtypes={"flat": "uint8"},
)
def _match_flat(
    flat: np.ndarray,
    tmap: np.ndarray,
    csrc: np.ndarray,
    base: np.ndarray,
    types: np.ndarray,
    roff: np.ndarray,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Match all changes of a trial batch via per-change 1-d gathers.

    Returns the hit mask and the per-change footprint indices (into the
    flat cross-replica state) for reuse by the write phase.  All matching
    completes before any write, so the caller's per-change scatters see a
    consistent pre-batch state.
    """
    mask: np.ndarray | None = None
    idx_cols: list[np.ndarray] = []
    for c in range(tmap.shape[0]):
        ic = tmap[c][base]
        ic += roff
        eq = flat[ic] == csrc[c][types]
        mask = eq if mask is None else mask & eq
        idx_cols.append(ic)
    assert mask is not None  # every reaction type has >= 1 change
    return mask, idx_cols


@kernel(
    reads=("ctgt", "idx_cols", "types", "mask"),
    writes=("flat",),
    shapes={"idx_cols": ("C", "B"), "ctgt": ("C", "T"), "types": ("B",)},
    dtypes={"flat": "uint8", "ctgt": "uint8", "mask": "bool"},
    justify={
        "SR041": "per-column indices of distinct hit trials are pairwise "
        "disjoint by the partition non-overlap theorem (the batch "
        "precondition of run_trials_stacked), and a within-trial repeat "
        "across columns is the intended later-column-wins order"
    },
)
def _write_flat(
    flat: np.ndarray,
    ctgt: np.ndarray,
    idx_cols: list[np.ndarray],
    types: np.ndarray,
    mask: np.ndarray,
) -> None:
    """Scatter targets of the hit trials, one change column at a time.

    Footprints of distinct trials in a conflict-free batch are disjoint,
    so per-column scatters cannot interfere across trials; within one
    trial later columns win on a repeated site, matching the in-memory
    order of the previous single fancy-scatter formulation (and padded
    columns rewrite change 0's value — idempotent).  The disjointness
    argument lives outside the analyzer's fragment (it is the partition
    theorem itself), hence the contract-level SR041 justification.
    """
    h_types = types[mask]
    for c in range(len(idx_cols)):
        flat[idx_cols[c][mask]] = ctgt[c][h_types]


@kernel(
    reads=("sites", "types", "starts", "stops"),
    writes=("states", "counts"),
    caches=("compiled",),
    shapes={
        "states": ("R", "N"),
        "sites": ("R", "B"),
        "types": ("R", "B"),
        "counts": ("R", "T"),
    },
    dtypes={"states": "uint8", "counts": "int64"},
    twin="run_trials_sequential",
    rename={"states": "state"},
)
def run_trials_interleaved(
    states: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    counts: np.ndarray | None = None,
    window: int = 16,
) -> int:
    """Exact sequential semantics for R trial streams, run concurrently.

    Parameters
    ----------
    states:
        Stacked ``(R, N)`` ``uint8`` configuration array, mutated in
        place.
    sites, types:
        ``(R, B)`` per-replica trial streams with strict sequential
        semantics — within a replica, each trial must see the writes of
        all its predecessors.
    starts, stops:
        Per-replica half-open ranges ``[starts[r], stops[r])`` of the
        stream to execute (a replica with ``starts[r] == stops[r]``
        is skipped).
    counts:
        Optional ``(R, T)`` ``int64`` per-replica/type executed counts.
    window:
        Lookahead per replica per round (performance knob only).

    The kernel advances all replicas in rounds.  Each round inspects the
    next ``window`` trials of every replica, cuts the stream at the
    first pair of trials whose anchors *may* conflict (conservative
    check via :func:`conflict_lut` on flat site differences), and
    executes the union of the conflict-free prefixes of all replicas as
    one simultaneous cross-replica batch.  Within a prefix the trials
    are pairwise footprint-disjoint, so they commute: the outcome is
    bit-identical to :func:`run_trials_sequential` applied per replica.

    Returns the number executed.
    """
    n = compiled.n_sites
    tmap, csrc, ctgt = ensemble_tables(compiled)
    lut = conflict_lut(compiled)
    flat = states.reshape(-1)
    n_reps, n_blk = sites.shape
    w = max(2, int(window))
    ii, jj = np.tril_indices(w, -1)
    ptr = np.asarray(starts, dtype=np.intp).copy()
    stops = np.asarray(stops, dtype=np.intp)
    col = np.arange(w, dtype=np.intp)
    rows = np.arange(n_reps, dtype=np.intp)[:, None]
    offsets = (np.arange(n_reps, dtype=np.intp) * n).astype(tmap.dtype, copy=False)
    n_exec = 0
    while True:
        remaining = np.maximum(stops - ptr, 0)
        if not remaining.any():
            break
        # window of upcoming sites; exhausted replicas read clipped
        # (ignored) positions — clipping can only *add* conflicts at
        # indices >= remaining, which the `remaining` clamp discards
        take = np.minimum(ptr[:, None] + col, n_blk - 1)
        s_win = sites[rows, take]
        conf = lut[(s_win[:, ii] - s_win[:, jj]) + (n - 1)]
        firstbad = np.where(conf, ii, w).min(axis=1)
        length = np.minimum(firstbad, remaining)
        sel = col < length[:, None]
        rr, cc = np.nonzero(sel)
        b_types = types[rr, ptr[rr] + cc]
        base = b_types * n
        base += s_win[rr, cc]
        mask, idx_cols = _match_flat(flat, tmap, csrc, base, b_types, offsets[rr])
        n_hit = int(np.count_nonzero(mask))
        if n_hit:
            _write_flat(flat, ctgt, idx_cols, b_types, mask)
        if counts is not None:
            _stacked_counts(counts, rr, b_types, mask)
        n_exec += n_hit
        ptr += length
    return n_exec


@kernel(
    reads=("type_index", "sites"),
    writes=("state",),
    dtypes={"state": "uint8"},
)
def execute_type_everywhere(
    state: np.ndarray,
    compiled: CompiledModel,
    type_index: int,
    sites: np.ndarray,
) -> int:
    """Execute one reaction type at every given anchor where enabled.

    Used by the reaction-type-partitioned algorithm (paper section 5,
    "another approach"): one oriented reaction type is applied to all
    sites of a chunk at once.  ``sites`` must be conflict-free *for
    this single type* (e.g. a checkerboard chunk for a two-site
    pattern).  Returns the number executed.
    """
    return _execute_masked(
        state, compiled.types[type_index], np.asarray(sites, dtype=np.intp)
    )
