"""Simulation kernels: the two execution primitives all algorithms share.

Every algorithm in the paper reduces to a stream of *trials*
``(site, reaction type)`` executed against the state:

* :func:`run_trials_sequential` — executes trials strictly one after
  another.  This is the exact semantics of RSM/NDCA and the fallback
  for partitions that are not conflict-free (the ``m = 1`` limit of
  L-PNDCA).  The loop is the package's hot path and is written
  accordingly: per-type tables are pre-bound as python lists, the state
  is accessed through a ``memoryview`` (scalar indexing on a
  memoryview is several times faster than on a numpy array), and all
  per-trial random numbers are drawn in blocks by the callers.

* :func:`run_trials_batch` — executes a set of trials *simultaneously*
  as vectorised numpy gathers/scatters.  This is only correct when the
  trial sites are pairwise conflict-free (distinct sites of one chunk
  of a validated partition): disjoint neighborhoods make the individual
  reactions commute, so any interleaving — including the simultaneous
  one — produces the same state.  This kernel is the package's
  realisation of the paper's chunk-parallelism (SIMD instead of
  multiple processors; the multiprocessing executor in
  :mod:`repro.parallel.executor` distributes exactly these batches).

* :func:`run_trials_batch_with_duplicates` — occurrence-batched variant
  for trial streams that may name the same site several times (L-PNDCA
  samples sites with replacement).  Trials are split into rounds such
  that each round touches each site at most once; per-site order is
  preserved, which (by commutation across distinct sites) reproduces
  the sequential result exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .compiled import CompiledModel, CompiledType

__all__ = [
    "run_trials_sequential",
    "run_trials_batch",
    "run_trials_batch_with_duplicates",
    "execute_type_everywhere",
    "seq_tables",
]


# ----------------------------------------------------------------------
# sequential kernel
# ----------------------------------------------------------------------

def seq_tables(compiled: CompiledModel) -> list[tuple[list, list[int], list[int]]]:
    """Per-type ``(maps, srcs, tgts)`` with maps as python lists.

    Cached on the compiled model.  Python-list neighbour maps make the
    sequential loop ~2x faster than numpy fancy-indexing scalars at the
    cost of ``O(n_types * pattern_size * N)`` ints of memory — fine for
    the lattice sizes the sequential path is used on.
    """
    cached = getattr(compiled, "_seq_tables", None)
    if cached is None:
        cached = [
            (
                [m.tolist() for m in ct.maps],
                ct.srcs,
                ct.tgts,
            )
            for ct in compiled.types
        ]
        compiled._seq_tables = cached  # type: ignore[attr-defined]
    return cached


def run_trials_sequential(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray | Sequence[int],
    types: np.ndarray | Sequence[int],
    counts: np.ndarray | None = None,
    record: list | None = None,
) -> int:
    """Execute trials one at a time; returns the number executed.

    Parameters
    ----------
    state:
        Flat ``uint8`` configuration array, mutated in place.
    sites, types:
        Equal-length trial streams (anchor site flat index, reaction
        type index).
    counts:
        Optional ``int64`` array of length ``n_types``; executed trials
        are accumulated per type.
    record:
        Optional list; for every *executed* trial the tuple
        ``(trial_index, type_index, site)`` is appended (used by the
        waiting-time / correctness analyses).
    """
    tables = seq_tables(compiled)
    mv = memoryview(state)
    site_list = sites.tolist() if isinstance(sites, np.ndarray) else list(sites)
    type_list = types.tolist() if isinstance(types, np.ndarray) else list(types)
    if len(site_list) != len(type_list):
        raise ValueError("sites and types must have equal length")
    n_exec = 0
    if record is None and counts is None:
        # tightest variant of the loop (no bookkeeping)
        for s, t in zip(site_list, type_list):
            maps, srcs, tgts = tables[t]
            for m, v in zip(maps, srcs):
                if mv[m[s]] != v:
                    break
            else:
                for m, v in zip(maps, tgts):
                    mv[m[s]] = v
                n_exec += 1
        return n_exec
    for i, (s, t) in enumerate(zip(site_list, type_list)):
        maps, srcs, tgts = tables[t]
        for m, v in zip(maps, srcs):
            if mv[m[s]] != v:
                break
        else:
            for m, v in zip(maps, tgts):
                mv[m[s]] = v
            n_exec += 1
            if counts is not None:
                counts[t] += 1
            if record is not None:
                record.append((i, t, s))
    return n_exec


# ----------------------------------------------------------------------
# batched (conflict-free) kernels
# ----------------------------------------------------------------------

def run_trials_batch(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: np.ndarray | None = None,
) -> int:
    """Execute a conflict-free trial batch simultaneously (vectorised).

    ``sites`` must be pairwise conflict-free for the model (distinct
    sites of a single chunk of a partition validated with
    :meth:`repro.partition.Partition.validate_conflict_free`).  The
    result is then identical to executing the trials sequentially in
    any order.  Returns the number executed.
    """
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    if sites.shape != types.shape:
        raise ValueError("sites and types must have equal length")
    n_exec = 0
    if sites.size == 0:
        return 0
    for t in np.unique(types):
        sel = sites[types == t]
        n = _execute_masked(state, compiled.types[t], sel)
        n_exec += n
        if counts is not None:
            counts[t] += n
    return n_exec


def _execute_masked(state: np.ndarray, ct: CompiledType, sel: np.ndarray) -> int:
    """Match one type at many anchors and execute where enabled."""
    if sel.size == 0:
        return 0
    mask = state[ct.maps[0][sel]] == ct.srcs[0]
    for m, v in zip(ct.maps[1:], ct.srcs[1:]):
        mask &= state[m[sel]] == v
    hits = sel[mask]
    if hits.size:
        for m, v in zip(ct.maps, ct.tgts):
            state[m[hits]] = v
    return int(hits.size)


def run_trials_batch_with_duplicates(
    state: np.ndarray,
    compiled: CompiledModel,
    sites: np.ndarray,
    types: np.ndarray,
    counts: np.ndarray | None = None,
) -> int:
    """Vectorised execution of a trial stream that may repeat sites.

    The stream is partitioned into occurrence rounds: round ``r``
    contains the ``r``-th trial of every site.  Rounds run in order and
    each round is a conflict-free batch (pairwise-distinct sites).
    Per-site trial order is preserved, so — given that distinct sites
    of the stream are conflict-free, as inside a partition chunk — the
    final state equals that of :func:`run_trials_sequential` on the
    same stream.
    """
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    if sites.size == 0:
        return 0
    occ = _occurrence_index(sites)
    n_rounds = int(occ.max()) + 1
    if n_rounds == 1:
        return run_trials_batch(state, compiled, sites, types, counts)
    n_exec = 0
    for r in range(n_rounds):
        pick = occ == r
        n_exec += run_trials_batch(state, compiled, sites[pick], types[pick], counts)
    return n_exec


def _occurrence_index(sites: np.ndarray) -> np.ndarray:
    """For each element, how many earlier elements have the same value.

    >>> _occurrence_index(np.array([7, 3, 7, 7, 3]))
    array([0, 0, 1, 2, 1])
    """
    _, inv = np.unique(sites, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    sorted_inv = inv[order]
    group_start = np.concatenate(([True], sorted_inv[1:] != sorted_inv[:-1]))
    # index within each group = position - position of group start
    idx = np.arange(sites.size)
    start_pos = idx[group_start][np.cumsum(group_start) - 1]
    occ_sorted = idx - start_pos
    occ = np.empty(sites.size, dtype=np.intp)
    occ[order] = occ_sorted
    return occ


def execute_type_everywhere(
    state: np.ndarray,
    compiled: CompiledModel,
    type_index: int,
    sites: np.ndarray,
) -> int:
    """Execute one reaction type at every given anchor where enabled.

    Used by the reaction-type-partitioned algorithm (paper section 5,
    "another approach"): one oriented reaction type is applied to all
    sites of a chunk at once.  ``sites`` must be conflict-free *for
    this single type* (e.g. a checkerboard chunk for a two-site
    pattern).  Returns the number executed.
    """
    return _execute_masked(
        state, compiled.types[type_index], np.asarray(sites, dtype=np.intp)
    )
