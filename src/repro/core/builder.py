"""A fluent builder for surface-reaction models.

Writing reaction types as raw ``(offset, src, tgt)`` tuples is exact
but verbose; the builder offers the vocabulary of the domain —
adsorption, desorption, dissociative adsorption, pair reactions,
hops — and expands orientations automatically::

    from repro.core.builder import ModelBuilder

    model = (
        ModelBuilder("my-ziff", species=("*", "CO", "O"))
        .adsorption("CO_ads", "CO", rate=1.0)
        .dissociative_adsorption("O2_ads", "O", rate=0.5)
        .pair_reaction("CO+O", "CO", "O", rate=2.0)   # products vacant
        .build()
    )

The result is an ordinary :class:`~repro.core.model.Model`; everything
the builder can express can also be written directly with
:class:`~repro.core.reaction.ReactionType`.
"""

from __future__ import annotations

from typing import Sequence

from .model import Model
from .reaction import ORIENTATIONS_2, ORIENTATIONS_4, Change, ReactionType, oriented
from .species import EMPTY, SpeciesRegistry

__all__ = ["ModelBuilder"]


class ModelBuilder:
    """Accumulates reaction types and builds a :class:`Model`.

    Parameters
    ----------
    name:
        Model name.
    species:
        The domain ``D``; defaults include the vacant species ``"*"``.
    ndim:
        Lattice dimensionality the reactions target (1 or 2; the
        orientation-expanding helpers require 2).
    """

    def __init__(self, name: str, species: Sequence[str], ndim: int = 2):
        if ndim not in (1, 2):
            raise ValueError(f"ndim must be 1 or 2, got {ndim}")
        self.name = name
        self.ndim = ndim
        self._species = SpeciesRegistry(species)
        self._types: list[ReactionType] = []

    # ------------------------------------------------------------------
    def _zero(self) -> tuple[int, ...]:
        return (0,) * self.ndim

    def _east(self) -> tuple[int, ...]:
        return (1,) if self.ndim == 1 else (1, 0)

    def _check(self, *names: str) -> None:
        for n in names:
            if n not in self._species:
                raise ValueError(
                    f"species {n!r} is not in the domain {list(self._species)}"
                )

    def _add_oriented(self, name, changes, rate, directions, group=None):
        if self.ndim == 2:
            self._types += oriented(name, changes, rate, directions, group=group)
        else:
            # 1-d: forward and (when the pattern is 2-site) backward
            fwd = [Change(*c) if not isinstance(c, Change) else c for c in changes]
            self._types.append(ReactionType(f"{name}(0)", tuple(fwd), rate, group=group or name))
            if any(any(c.offset) for c in fwd):
                bwd = tuple(
                    Change(tuple(-o for o in c.offset), c.src, c.tg) for c in fwd
                )
                self._types.append(
                    ReactionType(f"{name}(1)", bwd, rate, group=group or name)
                )
        return self

    # ------------------------------------------------------------------
    # single-site processes
    # ------------------------------------------------------------------
    def adsorption(self, name: str, species: str, rate: float) -> "ModelBuilder":
        """``* -> X`` on one site."""
        self._check(species)
        self._types.append(
            ReactionType(name, [(self._zero(), EMPTY, species)], rate)
        )
        return self

    def desorption(self, name: str, species: str, rate: float) -> "ModelBuilder":
        """``X -> *`` on one site."""
        self._check(species)
        self._types.append(
            ReactionType(name, [(self._zero(), species, EMPTY)], rate)
        )
        return self

    def transformation(
        self, name: str, src: str, tgt: str, rate: float
    ) -> "ModelBuilder":
        """``X -> Y`` on one site (isomerisation, phase flip, ...)."""
        self._check(src, tgt)
        self._types.append(ReactionType(name, [(self._zero(), src, tgt)], rate))
        return self

    # ------------------------------------------------------------------
    # pair processes (auto-oriented)
    # ------------------------------------------------------------------
    def dissociative_adsorption(
        self, name: str, species: str, rate: float
    ) -> "ModelBuilder":
        """``(*, *) -> (X, X)`` on an adjacent pair (2 orientations)."""
        self._check(species)
        changes = [(self._zero(), EMPTY, species), (self._east(), EMPTY, species)]
        directions = ORIENTATIONS_2 if self.ndim == 2 else None
        return self._add_oriented(
            name, changes, rate, directions or ORIENTATIONS_2
        )

    def pair_reaction(
        self,
        name: str,
        a: str,
        b: str,
        rate: float,
        product_a: str = EMPTY,
        product_b: str = EMPTY,
    ) -> "ModelBuilder":
        """``(A, B) -> (product_a, product_b)`` on an adjacent pair.

        Expanded into the 4 orientations (A anchored); use it for
        associative desorption (products vacant) or general two-site
        chemistry.
        """
        self._check(a, b, product_a, product_b)
        changes = [(self._zero(), a, product_a), (self._east(), b, product_b)]
        return self._add_oriented(name, changes, rate, ORIENTATIONS_4)

    def hop(self, name: str, species: str, rate: float) -> "ModelBuilder":
        """Diffusion: ``(X, *) -> (*, X)`` in every direction."""
        self._check(species)
        changes = [(self._zero(), species, EMPTY), (self._east(), EMPTY, species)]
        return self._add_oriented(name, changes, rate, ORIENTATIONS_4, group=name)

    # ------------------------------------------------------------------
    def reaction_type(self, rt: ReactionType) -> "ModelBuilder":
        """Append a hand-built reaction type unchanged."""
        self._types.append(rt)
        return self

    def build(self) -> Model:
        """Validate and produce the :class:`Model`."""
        if not self._types:
            raise ValueError("no reaction types were added")
        return Model(self._species, self._types, name=self.name)
