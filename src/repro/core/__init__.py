"""Core substrate: lattices, species, reaction types, models, kernels.

This subpackage implements the mathematical model of section 2 of the
paper (lattice ``Omega``, domain ``D``, reaction types ``T`` with rate
constants) plus the compiled representation and execution kernels
shared by every simulation algorithm.
"""

from .builder import ModelBuilder
from .compiled import CompiledModel, CompiledType
from .conservation import (
    conserved_quantities,
    is_conserved,
    stoichiometry_matrix,
)
from .events import Event, EventTrace
from .lattice import Lattice
from .model import Model
from .rates import ArrheniusRate, arrhenius, selection_table
from .reaction import ORIENTATIONS_2, ORIENTATIONS_4, Change, ReactionType, oriented
from .species import EMPTY, SpeciesRegistry
from .state import Configuration

__all__ = [
    "Lattice",
    "SpeciesRegistry",
    "EMPTY",
    "Change",
    "ReactionType",
    "oriented",
    "ORIENTATIONS_2",
    "ORIENTATIONS_4",
    "Model",
    "CompiledModel",
    "CompiledType",
    "Configuration",
    "arrhenius",
    "ArrheniusRate",
    "selection_table",
    "Event",
    "EventTrace",
    "ModelBuilder",
    "stoichiometry_matrix",
    "conserved_quantities",
    "is_conserved",
]
