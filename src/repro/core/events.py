"""Event records and execution traces.

A *reaction event* is the occurrence of a reaction: a reaction type
executed at an anchor site at a simulation time.  Simulators can
optionally collect events into an :class:`EventTrace`; the waiting-time
correctness analyses (Segers criteria, see
:mod:`repro.analysis.waiting_times`) are computed from such traces.

Traces are stored column-wise in growable numpy buffers so that
collecting millions of events stays cheap and the analysis code gets
flat arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Event", "EventTrace"]


@dataclass(frozen=True)
class Event:
    """One executed reaction."""

    time: float
    type_index: int
    site: int


class EventTrace:
    """Column-wise growable store of executed reactions.

    Attributes (after :meth:`freeze` or via the properties):
    ``times`` (float64), ``type_indices`` (int32), ``sites`` (intp).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._times = np.empty(capacity, dtype=np.float64)
        self._types = np.empty(capacity, dtype=np.int32)
        self._sites = np.empty(capacity, dtype=np.intp)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, time: float, type_index: int, site: int) -> None:
        """Record one event."""
        if self._n == self._times.size:
            self._grow(self._n * 2)
        i = self._n
        self._times[i] = time
        self._types[i] = type_index
        self._sites[i] = site
        self._n = i + 1

    def extend(self, times: np.ndarray, type_indices: np.ndarray, sites: np.ndarray) -> None:
        """Record a block of events (equal-length arrays)."""
        k = len(times)
        if not (len(type_indices) == len(sites) == k):
            raise ValueError("event columns must have equal length")
        if self._n + k > self._times.size:
            self._grow(max(self._n + k, self._times.size * 2))
        sl = slice(self._n, self._n + k)
        self._times[sl] = times
        self._types[sl] = type_indices
        self._sites[sl] = sites
        self._n += k

    def _grow(self, capacity: int) -> None:
        for name in ("_times", "_types", "_sites"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Event times (view of the filled part of the buffer)."""
        return self._times[: self._n]

    @property
    def type_indices(self) -> np.ndarray:
        """Event reaction-type indices."""
        return self._types[: self._n]

    @property
    def sites(self) -> np.ndarray:
        """Event anchor sites."""
        return self._sites[: self._n]

    def __getitem__(self, i: int) -> Event:
        if not -self._n <= i < self._n:
            raise IndexError(i)
        i %= self._n
        return Event(float(self._times[i]), int(self._types[i]), int(self._sites[i]))

    def of_type(self, type_index: int) -> "EventTrace":
        """Sub-trace containing only events of one reaction type."""
        return self.select(self.type_indices == type_index)

    def at_site(self, site: int) -> "EventTrace":
        """Sub-trace containing only events anchored at one site."""
        return self.select(self.sites == site)

    def select(self, mask: np.ndarray) -> "EventTrace":
        """Sub-trace of events where ``mask`` is true."""
        out = EventTrace(capacity=max(1, int(np.count_nonzero(mask))))
        out.extend(self.times[mask], self.type_indices[mask], self.sites[mask])
        return out

    def waiting_times(self) -> np.ndarray:
        """Inter-event times (first event measured from t = 0)."""
        t = self.times
        if t.size == 0:
            return np.empty(0)
        return np.diff(t, prepend=0.0)

    def __repr__(self) -> str:
        return f"EventTrace(n={self._n})"
