"""Rate constants and the Arrhenius expression.

Each reaction type has a rate constant ``k``, the probability per unit
time that an enabled reaction occurs.  Physically (paper, section 2)

    k = nu * exp(-E / (kB * T))

with activation energy ``E``, pre-exponential factor ``nu`` and
temperature ``T``.  Simulations only ever see the resulting ``k``; this
module provides the conversion plus small helpers used across the
package (normalised selection tables).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["BOLTZMANN_EV", "arrhenius", "ArrheniusRate", "selection_table"]

#: Boltzmann constant in eV / K, the conventional unit for activation energies.
BOLTZMANN_EV = 8.617333262e-5


def arrhenius(nu: float, activation_energy: float, temperature: float) -> float:
    """Rate constant ``nu * exp(-E / kB T)``.

    Parameters
    ----------
    nu:
        Pre-exponential (attempt) frequency, in 1/time.  Must be > 0.
    activation_energy:
        Activation energy ``E`` in eV.  Must be >= 0.
    temperature:
        Absolute temperature in K.  Must be > 0.
    """
    if nu <= 0:
        raise ValueError(f"pre-exponential factor must be positive, got {nu}")
    if activation_energy < 0:
        raise ValueError(f"activation energy must be non-negative, got {activation_energy}")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return nu * math.exp(-activation_energy / (BOLTZMANN_EV * temperature))


@dataclass(frozen=True)
class ArrheniusRate:
    """A temperature-dependent rate constant.

    Useful when the same model is instantiated at several temperatures:
    store the ``(nu, E)`` pair once and evaluate per temperature.
    """

    nu: float
    activation_energy: float

    def at(self, temperature: float) -> float:
        """Rate constant at the given temperature (K)."""
        return arrhenius(self.nu, self.activation_energy, temperature)


def selection_table(rates: np.ndarray) -> tuple[np.ndarray, float]:
    """Cumulative probability table for rate-weighted selection.

    Returns ``(cum, total)`` where ``cum`` is the cumulative sum of
    ``rates / total`` with ``cum[-1] == 1`` exactly.  Selecting an index
    with probability ``rates[i] / total`` is then
    ``np.searchsorted(cum, u, side="right")`` for ``u ~ U[0, 1)``.
    """
    rates = np.asarray(rates, dtype=np.float64)
    if rates.ndim != 1 or rates.size == 0:
        raise ValueError("rates must be a non-empty 1-d array")
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    total = float(rates.sum())
    if total <= 0:
        raise ValueError("total rate must be positive")
    cum = np.cumsum(rates) / total
    cum[-1] = 1.0
    return cum, total
