"""Spatial correlations of lattice configurations.

The partitioned algorithms bias *correlations* before they bias
coverages (paper, section 5: "simulating all the chunks per step in
order or randomly introduces correlations in the occupancy of the
sites").  This module measures exactly that:

* :func:`pair_correlation` — the conditional probability of finding
  species B at displacement d from species A, normalised so that an
  uncorrelated lattice gives 1;
* :func:`nn_pair_fraction` — the density of adjacent A-B pairs (the
  quantity driving all two-site reaction rates);
* :func:`structure_factor` — the FFT power spectrum of a species
  indicator field (detects superstructures such as the c(2x2) O
  ordering in CO oxidation).
"""

from __future__ import annotations

import numpy as np

from ..core.lattice import Offset
from ..core.state import Configuration

__all__ = [
    "pair_correlation",
    "nn_pair_fraction",
    "structure_factor",
    "PairCorrelationObserver",
]


def pair_correlation(
    state: Configuration, a: str, b: str, displacement: Offset
) -> float:
    """``P(B at s+d | A at s) / theta_B`` — 1 means uncorrelated.

    Returns ``nan`` when species ``a`` or ``b`` is absent.
    """
    lat = state.lattice
    ca = state.species.code(a)
    cb = state.species.code(b)
    mask_a = state.array == ca
    n_a = int(mask_a.sum())
    theta_b = float((state.array == cb).mean())
    if n_a == 0 or theta_b == 0.0:
        return float("nan")
    shifted = state.array[lat.neighbor_map(displacement)]
    joint = int(np.count_nonzero(mask_a & (shifted == cb)))
    return (joint / n_a) / theta_b


def nn_pair_fraction(state: Configuration, a: str, b: str) -> float:
    """Fraction of (ordered) nearest-neighbour site pairs occupied A-B.

    Counts over all ``N * 2 * ndim`` ordered nearest-neighbour pairs of
    the periodic lattice; this is the density entering the rate of an
    A+B pair reaction.
    """
    lat = state.lattice
    ca = state.species.code(a)
    cb = state.species.code(b)
    if lat.ndim == 1:
        offsets = [(1,), (-1,)]
    else:
        offsets = [(1, 0), (-1, 0), (0, 1), (0, -1)]
    mask_a = state.array == ca
    total = 0
    for off in offsets:
        shifted = state.array[lat.neighbor_map(off)]
        total += int(np.count_nonzero(mask_a & (shifted == cb)))
    return total / (lat.n_sites * len(offsets))


class PairCorrelationObserver:
    """Samples ``pair_correlation(a, b, d)`` on a simulation-time grid.

    A drop-in observer (same protocol as
    :class:`repro.dmc.base.CoverageObserver`); the steady-state
    pair correlation is then the time average over the post-transient
    samples — far lower variance than a single final-state snapshot.
    """

    def __init__(
        self,
        interval: float,
        a: str,
        b: str,
        displacement: Offset,
        t0: float = 0.0,
    ):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = float(interval)
        self.t0 = float(t0)
        self._k = 0
        self.a = a
        self.b = b
        self.displacement = tuple(displacement)
        self._times: list[float] = []
        self._values: list[float] = []

    @property
    def next_due(self) -> float:
        """Next grid time (computed multiplicatively: no float drift)."""
        return self.t0 + self._k * self.interval

    def start(self, sim) -> None:  # Observer protocol
        """Observer-protocol hook (nothing to initialise)."""
        pass

    def maybe_sample(self, t: float, state: Configuration) -> None:
        """Sample at every grid point up to and including time t."""
        while self.next_due <= t:
            self.sample(self.next_due, state)
            self._k += 1

    def sample(self, t: float, state: Configuration) -> None:
        """Record one pair-correlation sample."""
        self._times.append(t)
        self._values.append(
            pair_correlation(state, self.a, self.b, self.displacement)
        )

    def data(self) -> dict:
        """Collected samples as plain arrays."""
        key = f"g[{self.a},{self.b}]{self.displacement}"
        return {
            "pair_corr_times": np.array(self._times),
            key: np.array(self._values),
        }

    def steady_mean(self, discard_fraction: float = 0.5) -> float:
        """Time-averaged correlation over the post-transient samples."""
        vals = np.array(self._values)
        vals = vals[int(discard_fraction * len(vals)):]
        vals = vals[np.isfinite(vals)]
        if vals.size == 0:
            return float("nan")
        return float(vals.mean())


def structure_factor(state: Configuration, species: str) -> np.ndarray:
    """Normalised FFT power spectrum of the species indicator field.

    Returns ``|FFT(ind - mean)|^2 / N`` with the same shape as the
    lattice; peaks away from the origin signal spatial ordering (e.g.
    a checkerboard phase peaks at (pi, pi), i.e. index (L0/2, L1/2)).
    """
    lat = state.lattice
    ind = (state.array == state.species.code(species)).astype(np.float64)
    field = lat.as_grid(ind - ind.mean())
    spec = np.abs(np.fft.fftn(field)) ** 2 / lat.n_sites
    return spec
