"""Ensemble statistics: averaging independent runs.

"The necessary statistics may be obtained from the averaging of a
large number of small, independent simulations" (paper, section 1,
third parallelisation route).  This module runs a simulator factory
over independent seeds and aggregates the sampled coverages into mean
and standard-deviation bands — the reference yardstick against which
single approximate-algorithm runs are compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..dmc.base import SimulationResult, SimulatorBase

__all__ = ["EnsembleResult", "run_ensemble", "stack_statistics"]


@dataclass
class EnsembleResult:
    """Aggregated coverage statistics over independent runs."""

    times: np.ndarray
    mean: dict[str, np.ndarray]
    std: dict[str, np.ndarray]
    n_runs: int
    results: list[SimulationResult]

    def band(self, species: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, mean, std) for one species."""
        return self.times, self.mean[species], self.std[species]

    def stderr(self, species: str) -> np.ndarray:
        """Standard error of the ensemble mean, ``std / sqrt(n_runs)``."""
        return self.std[species] / np.sqrt(self.n_runs)


def stack_statistics(
    times: np.ndarray,
    stacks: dict[str, np.ndarray],
    results: list[SimulationResult] | None = None,
) -> EnsembleResult:
    """Reduce stacked ``(R, G)`` coverage series to mean/std bands.

    This is the reduction used both by :func:`run_ensemble` (which
    stacks the series itself from R sequential runs) and by the
    vectorised ensemble engine
    (:meth:`repro.ensemble.EnsembleRunResult.statistics`), so the two
    execution paths report through the identical statistics code.
    """
    if not stacks:
        raise ValueError("no coverage series to reduce; sample with an interval")
    n_runs = {arr.shape[0] for arr in stacks.values()}
    if len(n_runs) != 1:
        raise ValueError(f"inconsistent replica counts across species: {n_runs}")
    r = n_runs.pop()
    if r < 1:
        raise ValueError("need at least one replica")
    return EnsembleResult(
        times=np.asarray(times),
        mean={sp: arr.mean(axis=0) for sp, arr in stacks.items()},
        std={
            sp: arr.std(axis=0, ddof=1 if r > 1 else 0)
            for sp, arr in stacks.items()
        },
        n_runs=r,
        results=results or [],
    )


def run_ensemble(
    factory: Callable[[int], SimulatorBase],
    seeds: Sequence[int],
    until: float,
    keep_results: bool = False,
) -> EnsembleResult:
    """Run ``factory(seed)`` for every seed and average the coverages.

    Every simulator must carry at least one coverage observer sampling
    the *same* time grid (same interval and origin); runs are truncated
    to the shortest sampled grid before averaging.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results: list[SimulationResult] = []
    for seed in seeds:
        sim = factory(int(seed))
        results.append(sim.run(until=until))
    n_keep = min(len(r.times) for r in results)
    if n_keep == 0:
        raise ValueError("runs produced no coverage samples; add a CoverageObserver")
    times = results[0].times[:n_keep]
    for r in results[1:]:
        if not np.allclose(r.times[:n_keep], times):
            raise ValueError("runs sampled different time grids; use one observer config")
    species = list(results[0].coverage)
    stacks = {
        sp: np.vstack([r.coverage[sp][:n_keep] for r in results]) for sp in species
    }
    return stack_statistics(times, stacks, results if keep_results else [])
