"""Automatic mean-field (site-approximation) equations for any model.

For a reaction type with rate ``k`` whose source pattern requires
species ``(X1, ..., Xn)`` on its n sites, the site approximation
replaces the joint occupation probability by the product of coverages:

    event rate per anchor site  ~  k * theta_X1 * ... * theta_Xn

and each event shifts the coverages by the type's stoichiometry
vector divided by the lattice size.  Summing over reaction types
yields a closed ODE system ``d theta / dt = F(theta)`` — the classical
mean-field kinetics of the model, derived *automatically* from the
same reaction-type objects the simulators execute.

Uses: fast qualitative exploration (the Pt(100) oscillatory regime was
located this way), sanity baselines for simulated coverages in the
low-correlation regime, and detecting when correlations matter (the
ZGB transitions famously shift between mean field and the lattice).

The site approximation ignores spatial correlations; diffusion-type
reactions (which only move particles) contribute exactly zero, as they
must.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.integrate import solve_ivp

from ..core.conservation import stoichiometry_matrix
from ..core.model import Model

__all__ = ["mean_field_rates", "mean_field_rhs_for", "integrate_mean_field"]


def mean_field_rates(model: Model, theta: np.ndarray) -> np.ndarray:
    """Per-site event rate of each reaction type at coverages ``theta``.

    ``theta`` holds one coverage per species (in registry order,
    summing to 1).  Returns ``k_i * prod(theta[src])`` per type.
    """
    theta = np.asarray(theta, dtype=np.float64)
    if theta.shape != (len(model.species),):
        raise ValueError(
            f"theta must have one entry per species "
            f"({len(model.species)}), got shape {theta.shape}"
        )
    out = np.empty(model.n_types)
    for i, rt in enumerate(model.reaction_types):
        r = rt.rate
        for c in rt.changes:
            r *= theta[model.species.code(c.src)]
        out[i] = r
    return out


def mean_field_rhs_for(model: Model) -> Callable[[np.ndarray], np.ndarray]:
    """The mean-field ODE right-hand side ``F(theta)`` of a model.

    Returns a function mapping coverages to their time derivative;
    ``sum(F) == 0`` identically (site count conservation), and every
    conserved quantity of the stoichiometry is conserved by ``F``.
    """
    s = stoichiometry_matrix(model).astype(np.float64)

    def rhs(theta: np.ndarray) -> np.ndarray:
        return mean_field_rates(model, theta) @ s

    return rhs


def integrate_mean_field(
    model: Model,
    theta0: Sequence[float] | dict[str, float],
    t_end: float,
    n_samples: int = 200,
    rtol: float = 1e-8,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Integrate the mean-field kinetics; returns (times, coverages).

    ``theta0`` is either a vector in species order or a dict (missing
    species get the remaining probability on the first absent one —
    pass a complete dict to be explicit).
    """
    n_sp = len(model.species)
    if isinstance(theta0, dict):
        vec = np.zeros(n_sp)
        for name, v in theta0.items():
            vec[model.species.code(name)] = v
        rest = 1.0 - vec.sum()
        if abs(rest) > 1e-9:
            # assign the remainder to the first species not specified
            for j, name in enumerate(model.species.names):
                if name not in theta0:
                    vec[j] = rest
                    break
            else:
                raise ValueError("theta0 must sum to 1")
    else:
        vec = np.asarray(theta0, dtype=np.float64)
    if vec.shape != (n_sp,) or abs(vec.sum() - 1.0) > 1e-6 or (vec < 0).any():
        raise ValueError(f"invalid initial coverages {vec}")
    rhs = mean_field_rhs_for(model)
    sol = solve_ivp(
        lambda t, y: rhs(y),
        (0.0, float(t_end)),
        vec,
        t_eval=np.linspace(0.0, float(t_end), n_samples),
        rtol=rtol,
        atol=1e-10,
        max_step=max(t_end / 100.0, 1e-3),
    )
    if not sol.success:  # pragma: no cover - scipy failure surface
        raise RuntimeError(f"mean-field integration failed: {sol.message}")
    coverages = {
        name: sol.y[model.species.code(name)] for name in model.species.names
    }
    return sol.t, coverages
