"""Analysis toolkit: waiting times, oscillations, curve comparison, ensembles."""

from .correlations import (
    PairCorrelationObserver,
    nn_pair_fraction,
    pair_correlation,
    structure_factor,
)
from .meanfield import integrate_mean_field, mean_field_rates, mean_field_rhs_for
from .compare import (
    common_grid,
    curve_max_dev,
    curve_rmse,
    ensemble_band_distance,
    phase_shift,
)
from .oscillations import OscillationSummary, analyze_oscillations, resample_uniform
from .statistics import EnsembleResult, run_ensemble, stack_statistics
from .waiting_times import (
    ExponentialityReport,
    check_exponential_waiting_times,
    interevent_times,
    ks_exponential,
    type_selection_ratio,
)

__all__ = [
    "ks_exponential",
    "interevent_times",
    "type_selection_ratio",
    "ExponentialityReport",
    "check_exponential_waiting_times",
    "OscillationSummary",
    "analyze_oscillations",
    "resample_uniform",
    "common_grid",
    "curve_rmse",
    "curve_max_dev",
    "phase_shift",
    "ensemble_band_distance",
    "EnsembleResult",
    "run_ensemble",
    "stack_statistics",
    "pair_correlation",
    "nn_pair_fraction",
    "structure_factor",
    "PairCorrelationObserver",
    "mean_field_rates",
    "mean_field_rhs_for",
    "integrate_mean_field",
]
