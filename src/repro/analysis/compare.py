"""Curve comparison metrics: how far is an approximation from RSM?

The paper's accuracy claims are comparisons of coverage curves
(L-PNDCA vs RSM for various ``m``, ``L`` and chunk schedules).  This
module provides the metrics the reproduction benches report:

* :func:`curve_rmse` / :func:`curve_max_dev` — pointwise deviations on
  a common time grid;
* :func:`phase_shift` — the time lag maximising cross-correlation
  (Fig. 9's "deviation in time of the oscillations");
* :func:`ensemble_band_distance` — deviation of a curve from an
  ensemble mean in units of the ensemble standard deviation (the
  statistical yardstick for "gives the same results").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "common_grid",
    "curve_rmse",
    "curve_max_dev",
    "phase_shift",
    "ensemble_band_distance",
]


def common_grid(
    t1: np.ndarray, y1: np.ndarray, t2: np.ndarray, y2: np.ndarray, n: int = 256
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interpolate two series onto a shared uniform grid (overlap only)."""
    t1, y1, t2, y2 = map(np.asarray, (t1, y1, t2, y2))
    lo = max(t1[0], t2[0])
    hi = min(t1[-1], t2[-1])
    if hi <= lo:
        raise ValueError("series do not overlap in time")
    grid = np.linspace(lo, hi, n)
    return grid, np.interp(grid, t1, y1), np.interp(grid, t2, y2)


def curve_rmse(t1, y1, t2, y2, n: int = 256) -> float:
    """Root-mean-square deviation between two time series."""
    _, a, b = common_grid(t1, y1, t2, y2, n)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def curve_max_dev(t1, y1, t2, y2, n: int = 256) -> float:
    """Maximum absolute deviation between two time series."""
    _, a, b = common_grid(t1, y1, t2, y2, n)
    return float(np.max(np.abs(a - b)))


def phase_shift(t1, y1, t2, y2, max_lag_fraction: float = 0.5, n: int = 512) -> float:
    """Time lag of series 2 relative to series 1 (cross-correlation peak).

    Positive result: series 2 lags (is shifted later than) series 1.
    Both series are detrended before correlating.  The search is
    restricted to ``|lag| <= max_lag_fraction * overlap span``.
    """
    grid, a, b = common_grid(t1, y1, t2, y2, n)
    a = a - a.mean()
    b = b - b.mean()
    dt = grid[1] - grid[0]
    corr = np.correlate(b, a, mode="full")
    lags = np.arange(-len(a) + 1, len(a)) * dt
    span = grid[-1] - grid[0]
    window = np.abs(lags) <= max_lag_fraction * span
    if not window.any():
        raise ValueError("max_lag_fraction leaves no admissible lags")
    idx = np.flatnonzero(window)[np.argmax(corr[window])]
    return float(lags[idx])


def ensemble_band_distance(
    t_ref: np.ndarray,
    mean_ref: np.ndarray,
    std_ref: np.ndarray,
    t: np.ndarray,
    y: np.ndarray,
    floor: float = 1e-3,
) -> float:
    """Mean |y - mean| / max(std, floor) over the overlap window.

    Values around 1 mean the curve is statistically indistinguishable
    from a member of the reference ensemble; values much larger flag a
    systematic bias.
    """
    grid, m, yy = common_grid(t_ref, mean_ref, t, y)
    s = np.interp(grid, t_ref, std_ref)
    return float(np.mean(np.abs(yy - m) / np.maximum(s, floor)))
