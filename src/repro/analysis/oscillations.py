"""Oscillation analysis for the Pt(100) coverage curves (Figs. 8-10).

The paper compares algorithms through the oscillatory coverages of the
reconstruction model: correct algorithms preserve the oscillations;
large ``L`` shifts/damps them; extreme parameters kill them.  This
module turns a sampled coverage series into the quantities those
comparisons need: dominant period (FFT), amplitude, an oscillation
"strength" score (normalised autocorrelation at the dominant period),
and peak positions for phase-shift estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OscillationSummary", "analyze_oscillations", "resample_uniform"]


def resample_uniform(times: np.ndarray, values: np.ndarray, n: int | None = None):
    """Resample a (possibly non-uniform) series onto a uniform grid."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.ndim != 1 or times.shape != values.shape:
        raise ValueError("times and values must be equal-length 1-d arrays")
    if times.size < 4:
        raise ValueError("need at least 4 samples")
    if np.any(np.diff(times) <= 0):
        raise ValueError("times must be strictly increasing")
    if n is None:
        n = times.size
    grid = np.linspace(times[0], times[-1], n)
    return grid, np.interp(grid, times, values)


@dataclass(frozen=True)
class OscillationSummary:
    """Summary statistics of one coverage series."""

    period: float          # dominant period (time units); nan if none found
    amplitude: float       # half peak-to-peak of the detrended series
    mean: float            # series mean over the analysis window
    strength: float        # autocorrelation at one period (1 = perfectly periodic)
    peak_times: np.ndarray  # times of local maxima of the smoothed series

    @property
    def oscillating(self) -> bool:
        """Heuristic: a real period with meaningful amplitude and coherence."""
        return (
            np.isfinite(self.period)
            and self.amplitude > 0.02
            and self.strength > 0.2
        )


def analyze_oscillations(
    times: np.ndarray,
    values: np.ndarray,
    discard_fraction: float = 0.2,
    smooth_window: int = 5,
) -> OscillationSummary:
    """Extract period/amplitude/strength from a coverage time series.

    The initial ``discard_fraction`` of the series (transient) is
    dropped; the remainder is resampled uniformly, detrended (mean
    removal), and analysed by FFT (dominant period) and normalised
    autocorrelation (strength at that period).  Peak times are found on
    a moving-average-smoothed copy.
    """
    if not 0.0 <= discard_fraction < 1.0:
        raise ValueError(f"discard_fraction must be in [0, 1), got {discard_fraction}")
    grid, y = resample_uniform(times, values)
    start = int(discard_fraction * len(grid))
    grid, y = grid[start:], y[start:]
    if len(y) < 8:
        raise ValueError("series too short after transient removal")
    dt = grid[1] - grid[0]
    x = y - y.mean()
    amplitude = float((x.max() - x.min()) / 2.0)

    # dominant period from the FFT power spectrum (ignore DC)
    spec = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(len(x), d=dt)
    if len(spec) > 1 and spec[1:].max() > 0:
        kmax = 1 + int(np.argmax(spec[1:]))
        period = float(1.0 / freqs[kmax]) if freqs[kmax] > 0 else float("nan")
    else:
        period = float("nan")

    # autocorrelation at one period
    strength = 0.0
    if np.isfinite(period):
        lag = int(round(period / dt))
        if 0 < lag < len(x):
            denom = float(np.dot(x, x))
            if denom > 0:
                strength = float(np.dot(x[:-lag], x[lag:]) / denom)

    # peak detection on a smoothed copy
    w = max(1, int(smooth_window))
    kernel = np.ones(w) / w
    smooth = np.convolve(x, kernel, mode="same")
    interior = np.arange(1, len(smooth) - 1)
    is_peak = (smooth[interior] > smooth[interior - 1]) & (
        smooth[interior] >= smooth[interior + 1]
    ) & (smooth[interior] > 0.25 * amplitude)
    peak_times = grid[interior[is_peak]]

    return OscillationSummary(
        period=period,
        amplitude=amplitude,
        mean=float(y.mean()),
        strength=max(0.0, strength),
        peak_times=peak_times,
    )
