"""Waiting-time analyses: the Segers correctness criteria.

Based on the Gillespie hypothesis, Segers gives two criteria a
simulation algorithm must satisfy to be a correct realisation of the
Master Equation (paper, section 6):

1. the waiting time for a reaction of type ``i`` (the time that
   elapses before it occurs, while it stays enabled) has an
   exponential distribution ``exp(-k_i t)``;
2. the next reaction type is ``i`` with probability proportional to
   ``k_i`` times the number of enabled reactions of type ``i``.

The cleanest experimental probe is a model where reactions never
disable each other (so waiting times are pure exponentials): e.g. a
single-species "recolour" model whose reaction types are enabled in
every state.  The helpers here extract empirical waiting-time samples
from :class:`~repro.core.events.EventTrace` objects and test them with
Kolmogorov-Smirnov statistics (scipy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.events import EventTrace

__all__ = [
    "ks_exponential",
    "interevent_times",
    "type_selection_ratio",
    "ExponentialityReport",
    "check_exponential_waiting_times",
]


def interevent_times(trace: EventTrace, type_index: int | None = None) -> np.ndarray:
    """Times between consecutive events (optionally of one type)."""
    sub = trace if type_index is None else trace.of_type(type_index)
    t = sub.times
    if t.size < 2:
        return np.empty(0)
    return np.diff(t)


def ks_exponential(samples: np.ndarray, rate: float) -> tuple[float, float]:
    """KS test of samples against ``Exp(rate)``; returns (statistic, p).

    ``rate`` is the intended exponential rate (mean ``1/rate``).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 5:
        raise ValueError(f"need at least 5 samples, got {samples.size}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    res = stats.kstest(samples, "expon", args=(0.0, 1.0 / rate))
    return float(res.statistic), float(res.pvalue)


def type_selection_ratio(trace: EventTrace, n_types: int) -> np.ndarray:
    """Empirical fraction of events per reaction type (length ``n_types``)."""
    if len(trace) == 0:
        return np.zeros(n_types)
    counts = np.bincount(trace.type_indices, minlength=n_types)
    return counts / counts.sum()


@dataclass(frozen=True)
class ExponentialityReport:
    """Outcome of the criterion-1 check for one reaction type."""

    type_index: int
    n_samples: int
    empirical_rate: float
    expected_rate: float
    ks_statistic: float
    p_value: float

    @property
    def passed(self) -> bool:
        """Conventional alpha = 0.01 acceptance."""
        return self.p_value > 0.01

    def __str__(self) -> str:
        flag = "ok" if self.passed else "FAIL"
        return (
            f"type {self.type_index}: n={self.n_samples}, "
            f"rate {self.empirical_rate:.4g} (expected {self.expected_rate:.4g}), "
            f"KS={self.ks_statistic:.3f}, p={self.p_value:.3f} [{flag}]"
        )


def check_exponential_waiting_times(
    trace: EventTrace, type_index: int, expected_rate: float
) -> ExponentialityReport:
    """Criterion 1 for one always-enabled reaction type.

    The inter-event times of a type that is *always enabled* (and whose
    enabled count is constant, e.g. one anchor site) must be
    ``Exp(expected_rate)``.
    """
    samples = interevent_times(trace, type_index)
    if samples.size < 5:
        raise ValueError(
            f"type {type_index} has only {samples.size} inter-event samples"
        )
    ks, p = ks_exponential(samples, expected_rate)
    return ExponentialityReport(
        type_index=type_index,
        n_samples=int(samples.size),
        empirical_rate=float(1.0 / samples.mean()),
        expected_rate=float(expected_rate),
        ks_statistic=ks,
        p_value=p,
    )
