"""Ablations for the design choices DESIGN.md calls out.

* **Chunk-selection strategies** (PNDCA options 1-4, section 5): how
  do ordered / random-order / random / weighted schedules trade
  accuracy (deviation from RSM on the oscillatory workload) against
  throughput (the weighted schedule pays an enabling scan per draw)?
* **Kernels**: the same trial stream through the sequential
  (python-loop) kernel vs the vectorised conflict-free batch kernel —
  the single-machine stand-in for the paper's chunk parallelism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ca.pndca import PNDCA, STRATEGIES
from ..core.kernels import run_trials_batch, run_trials_sequential
from ..core.lattice import Lattice
from ..core.rng import draw_types, make_rng
from ..io.report import format_table
from ..lint import preflight_partition
from ..models.pt100 import hex_surface
from ..models.zgb import ziff_model
from ..partition.tilings import five_chunk_partition
from .oscillation_common import Curve, make_observer, rsm_factory, run_curve

__all__ = [
    "StrategyAblation",
    "run_strategy_ablation",
    "strategy_ablation_report",
    "KernelAblation",
    "run_kernel_ablation",
    "kernel_ablation_report",
]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

@dataclass
class StrategyAblation:
    """Curves, deviations and throughputs per chunk-selection strategy."""
    rsm: Curve
    null_rmse: float
    curves: dict[str, Curve] = field(default_factory=dict)
    rmse: dict[str, float] = field(default_factory=dict)
    trials_per_second: dict[str, float] = field(default_factory=dict)


def _pndca_factory(seed: int, strategy: str):
    from ..dmc.base import SimulatorBase

    def build(model, lattice) -> SimulatorBase:
        p5 = five_chunk_partition(lattice)
        preflight_partition(p5, model)
        return PNDCA(
            model, lattice, seed=seed, initial=hex_surface(lattice, model),
            partition=p5, strategy=strategy, observers=[make_observer()],
        )

    return build


def run_strategy_ablation(
    side: int = 25, until: float = 40.0, seed: int = 41
) -> StrategyAblation:
    # side must be a multiple of 5 for the five-chunk tiling
    """Run all four PNDCA chunk-selection strategies against RSM."""
    rsm = run_curve("RSM", rsm_factory(seed), side, until)
    rsm_alt = run_curve("RSM'", rsm_factory(seed + 100), side, until)
    out = StrategyAblation(rsm=rsm, null_rmse=rsm_alt.rmse_to(rsm))
    for i, strategy in enumerate(STRATEGIES):
        c = run_curve(
            f"PNDCA {strategy}",
            _pndca_factory(seed + 200 + i, strategy),
            side,
            until,
        )
        out.curves[strategy] = c
        out.rmse[strategy] = c.rmse_to(rsm)
        out.trials_per_second[strategy] = (
            c.n_trials / c.wall_time if c.wall_time > 0 else float("inf")
        )
    return out


def strategy_ablation_report(result: StrategyAblation | None = None) -> str:
    """Render the strategy ablation (runs with defaults when no result given)."""
    r = result or run_strategy_ablation()
    body = []
    for strategy, c in r.curves.items():
        body.append(
            (
                strategy,
                f"{r.rmse[strategy]:.3f}",
                f"{c.oscillation.strength:.2f}",
                "yes" if c.oscillation.oscillating else "no",
                f"{r.trials_per_second[strategy] / 1e6:.2f}",
            )
        )
    return (
        "Ablation - PNDCA chunk-selection strategies (Pt(100) model)\n"
        + format_table(
            ["strategy", "rmse vs RSM", "strength", "oscillating", "Mtrials/s"],
            body,
        )
        + f"\nnull RSM-vs-RSM rmse: {r.null_rmse:.3f}"
    )


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------

@dataclass
class KernelAblation:
    """Timings of the sequential vs vectorised kernels on identical batches."""
    n_trials: int
    sequential_seconds: float
    batch_seconds: float
    identical_states: bool

    @property
    def speedup(self) -> float:
        """Vectorised-over-sequential wall-clock ratio."""
        return self.sequential_seconds / self.batch_seconds


def run_kernel_ablation(side: int = 100, repeats: int = 20, seed: int = 5) -> KernelAblation:
    """Time both kernels over identical conflict-free trial batches."""
    model = ziff_model()
    lattice = Lattice((side, side))
    comp = model.compile(lattice)
    p5 = five_chunk_partition(lattice)
    preflight_partition(p5, model)
    rng = make_rng(seed)
    # a mixed state so matches both succeed and fail
    state0 = rng.integers(0, 3, size=lattice.n_sites).astype(np.uint8)

    batches = []
    for _ in range(repeats):
        for chunk in p5.chunks:
            batches.append((chunk, draw_types(rng, comp.type_cum, chunk.size)))

    seq_state = state0.copy()
    t0 = time.perf_counter()
    for sites, types in batches:
        run_trials_sequential(seq_state, comp, sites, types)
    t_seq = time.perf_counter() - t0

    bat_state = state0.copy()
    t0 = time.perf_counter()
    for sites, types in batches:
        run_trials_batch(bat_state, comp, sites, types)
    t_bat = time.perf_counter() - t0

    n_trials = sum(len(s) for s, _ in batches)
    return KernelAblation(
        n_trials=n_trials,
        sequential_seconds=t_seq,
        batch_seconds=t_bat,
        identical_states=bool(np.array_equal(seq_state, bat_state)),
    )


def kernel_ablation_report(result: KernelAblation | None = None) -> str:
    """Render the kernel ablation (runs with defaults when no result given)."""
    r = result or run_kernel_ablation()
    body = [
        ("sequential (python loop)", f"{r.sequential_seconds:.3f}",
         f"{r.n_trials / r.sequential_seconds / 1e6:.2f}"),
        ("vectorised batch", f"{r.batch_seconds:.3f}",
         f"{r.n_trials / r.batch_seconds / 1e6:.2f}"),
    ]
    return (
        "Ablation - sequential vs vectorised chunk kernel (Ziff model)\n"
        + format_table(["kernel", "seconds", "Mtrials/s"], body)
        + f"\nspeedup {r.speedup:.1f}x; identical final states: {r.identical_states}"
    )


if __name__ == "__main__":
    print(strategy_ablation_report())
    print()
    print(kernel_ablation_report())
