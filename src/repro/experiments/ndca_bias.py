"""Extra experiment: the NDCA site-selection bias (Ising / single-file).

Section 4 of the paper: "This difference in selecting a site
introduces biases in the rates of the reactions and causes NDCA to
give degenerate results for some systems (Ising models, Single-File
models, etc.)".  Two probes:

* **Ising**: at low temperature, equilibrium magnetisation statistics
  under RSM (correct Glauber dynamics) vs the once-per-site NDCA sweep
  — the sweep's systematic site ordering alters the dynamics (in the
  extreme synchronous limit it produces Vichniac's anti-ferromagnetic
  blinking artefacts);
* **Single-file**: tracer mean-squared displacement in a 1-d pore,
  whose subdiffusive scaling is sensitive to the order in which hop
  opportunities are offered.

The driver reports the observable pairs; the reproduction claim is a
*measurable systematic difference* between the methods on these
systems (the paper cites, not plots, this effect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ca.ndca import NDCA
from ..core.lattice import Lattice
from ..dmc.rsm import RSM
from ..io.report import format_table
from ..models.ising import ising_model_2d, magnetization, random_spins
from ..models.single_file import equally_spaced, single_file_model, tracer_displacements

__all__ = ["BiasResult", "run_ndca_bias", "ndca_bias_report"]


@dataclass
class BiasResult:
    """RSM-vs-NDCA observable pairs for the bias probes."""
    ising_abs_m_rsm: float
    ising_abs_m_ndca: float
    ising_flips_rsm: float       # executed flips per site per unit time
    ising_flips_ndca: float
    sf_msd_rsm: float            # tracer MSD at the horizon
    sf_msd_ndca: float


def _ising_stats(algorithm: str, beta: float, side: int, until: float, seeds) -> tuple[float, float]:
    model = ising_model_2d(beta)
    lattice = Lattice((side, side))
    abs_m = []
    rate = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        initial = random_spins(lattice, model, rng)
        cls = RSM if algorithm == "RSM" else NDCA
        sim = cls(model, lattice, seed=seed, initial=initial)
        r = sim.run(until=until)
        abs_m.append(abs(magnetization(r.final_state)))
        rate.append(r.n_executed / (lattice.n_sites * r.final_time))
    return float(np.mean(abs_m)), float(np.mean(rate))


def _single_file_msd(algorithm: str, length: int, n_particles: int, until: float, seeds) -> float:
    model = single_file_model()
    lattice = Lattice((length,))
    msds = []
    for seed in seeds:
        initial = equally_spaced(lattice, model, n_particles)
        cls = RSM if algorithm == "RSM" else NDCA
        sim = cls(
            model, lattice, seed=seed, initial=initial, record_events=True
        )
        sim.run(until=until)
        disp = tracer_displacements(initial, sim.trace, model)
        msds.append(float(np.mean(disp.astype(float) ** 2)))
    return float(np.mean(msds))


def run_ndca_bias(
    beta: float = 0.6,
    side: int = 16,
    ising_until: float = 30.0,
    sf_length: int = 64,
    sf_particles: int = 32,
    sf_until: float = 50.0,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> BiasResult:
    """Run the Ising and single-file probes under RSM and NDCA."""
    m_rsm, f_rsm = _ising_stats("RSM", beta, side, ising_until, seeds)
    m_ndca, f_ndca = _ising_stats("NDCA", beta, side, ising_until, seeds)
    msd_rsm = _single_file_msd("RSM", sf_length, sf_particles, sf_until, seeds)
    msd_ndca = _single_file_msd("NDCA", sf_length, sf_particles, sf_until, seeds)
    return BiasResult(
        ising_abs_m_rsm=m_rsm,
        ising_abs_m_ndca=m_ndca,
        ising_flips_rsm=f_rsm,
        ising_flips_ndca=f_ndca,
        sf_msd_rsm=msd_rsm,
        sf_msd_ndca=msd_ndca,
    )


def ndca_bias_report(result: BiasResult | None = None) -> str:
    """Render the bias table (runs with defaults when no result given)."""
    r = result or run_ndca_bias()
    body = [
        ("Ising |m| (beta=0.6)", f"{r.ising_abs_m_rsm:.3f}", f"{r.ising_abs_m_ndca:.3f}"),
        ("Ising flips/site/time", f"{r.ising_flips_rsm:.3f}", f"{r.ising_flips_ndca:.3f}"),
        ("single-file tracer MSD", f"{r.sf_msd_rsm:.2f}", f"{r.sf_msd_ndca:.2f}"),
    ]
    return (
        "NDCA site-selection bias probes (RSM = reference)\n"
        + format_table(["observable", "RSM", "NDCA"], body)
        + "\n(the once-per-site sweep changes kinetic observables on "
        "correlation-sensitive models - the degeneracy the paper cites)"
    )


if __name__ == "__main__":
    print(ndca_bias_report())
