"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes ``run_*`` (returns structured data) and
``*_report`` (plain-text rendering); each module is runnable as
``python -m repro.experiments.<name>``.  The mapping to the paper:

==================  ====================================================
module              reproduces
==================  ====================================================
``tables``          Table I (reaction types), Table II (type split)
``fig2_conflicts``  Fig. 2 (synchronous-update conflicts)
``fig3_bca``        Fig. 3 (1-d Block CA with shifting blocks)
``fig4_partition``  Fig. 4 (optimal five-chunk partition)
``fig6_typepart``   Figs. 5/6 (pattern overlap; 2-chunk type partitions)
``fig7_speedup``    Fig. 7 (speedup surface on the modelled machine)
``fig8_limits``     Fig. 8 (L-PNDCA limit cases coincide with RSM)
``fig9_l_effect``   Fig. 9 (effect of L with five chunks)
``fig10_random_order``  Fig. 10 (random chunk order at maximal L)
``criteria``        section 6 (Segers correctness criteria)
``phase_diagram``   "simulation of Ziff model" (kinetic phase diagram)
``ndca_bias``       section 4 (NDCA degeneracy: Ising / single-file)
``fast_diffusion``  section 6 closing claim (fast diffusion -> accurate CA)
``ablations``       design-choice ablations (strategies, kernels)
==================  ====================================================
"""

from . import (
    ablations,
    criteria,
    fast_diffusion,
    fig2_conflicts,
    fig3_bca,
    fig4_partition,
    fig6_typepart,
    fig7_speedup,
    fig8_limits,
    fig9_l_effect,
    fig10_random_order,
    ndca_bias,
    oscillation_common,
    paper_scale,
    phase_diagram,
    tables,
)

#: experiment id -> (module, report callable name)
REGISTRY = {
    "table1": (tables, "table1_report"),
    "table2": (tables, "table2_report"),
    "fig2": (fig2_conflicts, "fig2_report"),
    "fig3": (fig3_bca, "fig3_report"),
    "fig4": (fig4_partition, "fig4_report"),
    "fig6": (fig6_typepart, "fig6_report"),
    "fig7": (fig7_speedup, "fig7_report"),
    "fig8": (fig8_limits, "fig8_report"),
    "fig9": (fig9_l_effect, "fig9_report"),
    "fig10": (fig10_random_order, "fig10_report"),
    "criteria": (criteria, "criteria_report"),
    "phase-diagram": (phase_diagram, "phase_diagram_report"),
    "ndca-bias": (ndca_bias, "ndca_bias_report"),
    "fast-diffusion": (fast_diffusion, "fast_diffusion_report"),
    "ablation-strategies": (ablations, "strategy_ablation_report"),
    "ablation-kernels": (ablations, "kernel_ablation_report"),
}


def report(experiment_id: str) -> str:
    """Run one experiment by id and return its text report."""
    try:
        module, fn = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return getattr(module, fn)()


__all__ = ["REGISTRY", "report"]
