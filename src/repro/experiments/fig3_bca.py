"""Fig. 3: the 1-d Block CA with three-site blocks.

The paper's example: nine sites, states 0/1, rule "a site becomes 0 if
at least one of its neighbours is 0"; the BCA applies the rule within
blocks of three and shifts the block boundaries between steps.  The
driver replays the figure from its initial row and also contrasts the
BCA against the plain synchronous (global-neighbour) CA to show how
the shifting boundaries let information cross block edges over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ca.bca import BlockCA
from ..core.lattice import Lattice
from ..models.majority import FIG3_INITIAL, zero_spreads_block_rule, zero_spreads_global

__all__ = ["Fig3Result", "run_fig3", "fig3_report"]


@dataclass
class Fig3Result:
    """Step-by-step histories of the BCA and the global-rule reference."""
    history_bca: list[np.ndarray]     # state after each BCA step
    history_global: list[np.ndarray]  # state after each global-CA step
    steps_to_fixpoint_bca: int
    steps_to_fixpoint_global: int


def run_fig3(n_steps: int = 8) -> Fig3Result:
    """Replay Fig. 3 and the global-rule reference from the same start."""
    lattice = Lattice((len(FIG3_INITIAL),))
    bca = BlockCA(lattice, block_shape=(3,), rule=zero_spreads_block_rule)
    state = FIG3_INITIAL.copy()
    history_bca = bca.run(state, n_steps)

    g = FIG3_INITIAL.copy()
    history_global = []
    for _ in range(n_steps):
        g = zero_spreads_global(g)
        history_global.append(g.copy())

    def fixpoint(hist: list[np.ndarray]) -> int:
        prev = FIG3_INITIAL
        for i, h in enumerate(hist):
            if np.array_equal(h, prev):
                return i
            prev = h
        return len(hist)

    return Fig3Result(
        history_bca=history_bca,
        history_global=history_global,
        steps_to_fixpoint_bca=fixpoint(history_bca),
        steps_to_fixpoint_global=fixpoint(history_global),
    )


def fig3_report(result: Fig3Result | None = None) -> str:
    """Render the Fig. 3 replay (runs with defaults when no result given)."""
    r = result or run_fig3()

    def row(arr: np.ndarray) -> str:
        return " ".join(str(int(v)) for v in arr)

    lines = ["Fig. 3 - 1-d Block CA, blocks of three, shifting boundaries", ""]
    lines.append("initial : " + row(FIG3_INITIAL))
    for i, h in enumerate(r.history_bca):
        lines.append(f"BCA {i + 1:4d} : {row(h)}")
    lines.append("")
    lines.append("global-rule reference (no blocks):")
    lines.append("initial : " + row(FIG3_INITIAL))
    for i, h in enumerate(r.history_global):
        lines.append(f"CA  {i + 1:4d} : {row(h)}")
    lines.append("")
    lines.append(
        f"fixpoint reached after {r.steps_to_fixpoint_bca} BCA steps vs "
        f"{r.steps_to_fixpoint_global} global steps (blocks slow the spread "
        "of zeros across block edges; the shifting boundaries keep it moving)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig3_report())
