"""Tables I and II: the CO-oxidation reaction types and their type split.

Table I lists the seven reaction types of the CO-oxidation (Ziff)
model as transformations applied at a site ``s``; Table II their
partition into orientation-pure subsets ``T0``/``T1``.  The drivers
generate both from the package's model definitions and render them in
the paper's notation, plus machine-checkable row data used by the
tests (which assert the generated tables match the paper's rows
exactly — up to the documented typo in ``Rt^(3)_{CO+O}``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.report import format_table
from ..models.zgb import ziff_model
from ..partition.typesplit import TypeSplit, split_by_orientation

__all__ = ["Table1Row", "table1_rows", "table1_report", "table2_split", "table2_report"]

#: The rows of Table I as printed in the paper (orientation -> set of
#: (offset, src, tg) triples).  Row ``CO+O`` orientation 3 is given in
#: its *intended* form (src "O", not the printed typo "CO").
PAPER_TABLE1 = {
    "CO+O": {
        0: {((0, 0), "CO", "*"), ((1, 0), "O", "*")},
        1: {((0, 0), "CO", "*"), ((0, 1), "O", "*")},
        2: {((0, 0), "CO", "*"), ((-1, 0), "O", "*")},
        3: {((0, 0), "CO", "*"), ((0, -1), "O", "*")},
    },
    "O2_ads": {
        0: {((0, 0), "*", "O"), ((1, 0), "*", "O")},
        1: {((0, 0), "*", "O"), ((0, 1), "*", "O")},
    },
    "CO_ads": {0: {((0, 0), "*", "CO")}},
}

#: Table II: subset membership by reaction-type name.
PAPER_TABLE2 = {
    "T0": {"CO+O(0)", "CO+O(2)", "O2_ads(0)", "CO_ads"},
    "T1": {"CO+O(1)", "CO+O(3)", "O2_ads(1)"},
}


@dataclass(frozen=True)
class Table1Row:
    """One generated reaction type in Table I form."""

    group: str
    orientation: int
    name: str
    triples: frozenset
    rendered: str

    def matches_paper(self) -> bool:
        """Does this generated row equal the corresponding printed Table I row?"""
        expected = PAPER_TABLE1.get(self.group, {}).get(self.orientation)
        return expected is not None and frozenset(expected) == self.triples


def table1_rows() -> list[Table1Row]:
    """Generate Table I from :func:`repro.models.zgb.ziff_model`."""
    model = ziff_model()
    rows = []
    for rt in model.reaction_types:
        if "(" in rt.name:
            orientation = int(rt.name.split("(")[1].rstrip(")"))
        else:
            orientation = 0
        triples = frozenset(
            (c.offset, c.src, c.tg) for c in rt.changes
        )
        rows.append(
            Table1Row(
                group=rt.group,
                orientation=orientation,
                name=rt.name,
                triples=triples,
                rendered=rt.describe(),
            )
        )
    return rows


def table1_report() -> str:
    """Render Table I (with a paper-match flag per row)."""
    rows = table1_rows()
    body = [
        (r.group, r.orientation, r.rendered, "ok" if r.matches_paper() else "MISMATCH")
        for r in rows
    ]
    return "Table I - reaction types of the CO-oxidation model\n" + format_table(
        ["group", "orient", "transformation at s", "vs paper"], body
    )


def table2_split() -> TypeSplit:
    """Generate Table II's type split from the model."""
    return split_by_orientation(ziff_model())


def table2_report() -> str:
    """Render Table II (with a paper-match flag per subset)."""
    split = table2_split()
    model = split.model
    body = []
    for s in split.subsets:
        names = {model.reaction_types[i].name for i in s.type_indices}
        expected = PAPER_TABLE2.get(f"T{s.index}")
        flag = "ok" if expected == names else "MISMATCH"
        body.append((f"T{s.index}", ", ".join(sorted(names)), f"{s.total_rate:g}", flag))
    return "Table II - reaction-type subsets\n" + format_table(
        ["subset", "members", "K_Tj", "vs paper"], body
    )


if __name__ == "__main__":
    print(table1_report())
    print()
    print(table2_report())
