"""Fig. 4: the optimal five-chunk partition for von-Neumann patterns.

The paper's Fig. 4 shows a 5x5 tile whose sites are labelled 0..4 by
chunk, such that the pair patterns of the CO-oxidation model never
overlap within one chunk.  The driver regenerates the tile from the
``(i + 2j) mod 5`` tiling, validates the non-overlap rule, and proves
*optimality*: the clique lower bound of the model's conflict graph is
also 5, so no conflict-free partition can have fewer chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.lattice import Lattice
from ..lint import prove_tiling
from ..models.zgb import ziff_model
from ..partition.coloring import clique_lower_bound, greedy_partition
from ..partition.tilings import find_modular_tiling, five_chunk_partition

__all__ = ["Fig4Result", "run_fig4", "fig4_report"]

#: The 5x5 tile as printed in Fig. 4 of the paper.
PAPER_FIG4_TILE = np.array(
    [
        [0, 1, 2, 3, 4],
        [3, 4, 0, 1, 2],
        [1, 2, 3, 4, 0],
        [4, 0, 1, 2, 3],
        [2, 3, 4, 0, 1],
    ]
)


@dataclass
class Fig4Result:
    """The generated tile plus the optimality evidence."""
    tile: np.ndarray              # generated 5x5 chunk labels
    matches_paper: bool           # identical to Fig. 4 up to relabelling
    conflict_free: bool
    clique_bound: int             # lower bound on |P|
    searched_m: int               # smallest modular tiling found by search
    greedy_m: int                 # chunks used by greedy colouring
    proof: str = ""               # symbolic all-sizes conflict-freedom proof


def _same_up_to_relabel(a: np.ndarray, b: np.ndarray) -> bool:
    """Do two label grids define the same partition (renamed chunks)?"""
    mapping: dict[int, int] = {}
    for x, y in zip(a.ravel().tolist(), b.ravel().tolist()):
        if mapping.setdefault(x, y) != y:
            return False
    return len(set(mapping.values())) == len(mapping)


def run_fig4(side: int = 5) -> Fig4Result:
    """Regenerate the Fig. 4 tile and prove the 5-chunk optimality."""
    model = ziff_model()
    lattice = Lattice((side, side))
    p = five_chunk_partition(lattice)
    ok, _ = p.check_conflict_free(model)
    proof, _counterexamples = prove_tiling(model, 5, (1, 2))
    tile = p.grid_labels()[:5, :5]
    m_found, _coeffs = find_modular_tiling(model)
    greedy = greedy_partition(Lattice((10, 10)), model, validate=True)
    return Fig4Result(
        tile=tile,
        matches_paper=_same_up_to_relabel(tile, PAPER_FIG4_TILE),
        conflict_free=ok,
        clique_bound=clique_lower_bound(model),
        searched_m=m_found,
        greedy_m=greedy.m,
        proof=proof.statement() if proof is not None else "",
    )


def fig4_report(result: Fig4Result | None = None) -> str:
    """Render the Fig. 4 report (runs with defaults when no result given)."""
    r = result or run_fig4()
    lines = ["Fig. 4 - five-chunk partition ((i + 2j) mod 5)", ""]
    for row in r.tile:
        lines.append("  " + " ".join(str(int(v)) for v in row))
    lines.append("")
    lines.append(f"matches the paper's tile (up to relabelling): {r.matches_paper}")
    lines.append(f"non-overlap rule holds: {r.conflict_free}")
    if r.proof:
        lines.append(r.proof)
    lines.append(
        f"optimality: clique lower bound = {r.clique_bound}, smallest modular "
        f"tiling found = {r.searched_m} chunks -> 5 is optimal"
    )
    lines.append(
        f"(greedy colouring uses {r.greedy_m} chunks - constructions beat "
        "generic colouring here)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig4_report())
