"""Fig. 10: random chunk order keeps oscillations even at maximal L.

The paper's Fig. 10: with the five-chunk partition and the *maximal*
work per chunk (``L = N/m``, every chunk's full share), the chunk
schedule decides the outcome —

* selecting chunks at random *with replacement* (each selection
  probability ``|Pi|/N``, Fig. 9's schedule) starves chunks for long
  stretches; at this L the correlations wash the oscillations out;
* visiting **all chunks exactly once per step in random order**
  retains the oscillatory behaviour even at maximal L — full
  parallelisation with accurate results (the paper's closing point).

The driver runs RSM plus both schedules at ``L = N/m`` and reports
oscillation summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.report import format_table
from .oscillation_common import (
    DEFAULT_SIDE,
    DEFAULT_UNTIL,
    Curve,
    lpndca_factory,
    rsm_factory,
    run_curve,
)

__all__ = ["Fig10Result", "run_fig10", "fig10_report"]


@dataclass
class Fig10Result:
    """The three curves of the Fig. 10 schedule comparison."""
    rsm: Curve
    random_order: Curve      # all chunks once per step, shuffled (Fig. 10)
    with_replacement: Curve  # size-proportional repeat selection (Fig. 9 schedule)

    @property
    def random_order_oscillates(self) -> bool:
        """The paper's headline claim: does the random-order schedule oscillate?"""
        return self.random_order.oscillation.oscillating

    @property
    def rmse_random_order(self) -> float:
        """CO-curve RMS deviation of the random-order schedule from RSM."""
        return self.random_order.rmse_to(self.rsm)

    @property
    def rmse_with_replacement(self) -> float:
        """CO-curve RMS deviation of the with-replacement schedule from RSM."""
        return self.with_replacement.rmse_to(self.rsm)


def run_fig10(
    side: int = DEFAULT_SIDE, until: float = DEFAULT_UNTIL, seed: int = 31
) -> Fig10Result:
    """Run RSM and both maximal-L chunk schedules on the Pt(100) workload."""
    rsm = run_curve("RSM", rsm_factory(seed), side, until)
    random_order = run_curve(
        "L-PNDCA m=5 L=N/m random-order",
        lpndca_factory(
            seed + 200, partition="five", L="chunk", chunk_selection="random-order"
        ),
        side,
        until,
    )
    with_replacement = run_curve(
        "L-PNDCA m=5 L=N/m with-replacement",
        lpndca_factory(
            seed + 300, partition="five", L="chunk",
            chunk_selection="size-proportional",
        ),
        side,
        until,
    )
    return Fig10Result(
        rsm=rsm, random_order=random_order, with_replacement=with_replacement
    )


def fig10_report(result: Fig10Result | None = None) -> str:
    """Render the Fig. 10 comparison (runs with defaults when no result given)."""
    r = result or run_fig10()
    body = []
    for c in (r.rsm, r.random_order, r.with_replacement):
        body.append(
            (
                c.label,
                f"{c.oscillation.period:.1f}",
                f"{c.oscillation.amplitude:.3f}",
                f"{c.oscillation.strength:.2f}",
                "yes" if c.oscillation.oscillating else "no",
            )
        )
    lines = [
        "Fig. 10 - chunk schedules at maximal L = N/m (Pt(100) model)",
        "",
        format_table(
            ["curve", "period", "amplitude", "strength", "oscillating"], body
        ),
        "",
        f"rmse vs RSM: random-order = {r.rmse_random_order:.3f}, "
        f"with-replacement = {r.rmse_with_replacement:.3f}",
        f"random-order schedule keeps the oscillations: "
        f"{r.random_order_oscillates} (the paper's full-parallelisation case)",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig10_report())
