"""Fig. 8: the L-PNDCA limit parameterisations coincide with RSM.

The paper's Fig. 8 overlays the RSM coverage curves of the oscillatory
CO-oxidation model with L-PNDCA at the two extreme parameterisations

* ``m = 1,  L = N``  — one chunk holding the whole lattice, and
* ``m = N,  L = 1``  — one site per chunk,

both of which reduce the algorithm to RSM (section 5), so the curves
must agree *statistically* (they are independent stochastic runs, not
the same trajectory).  The driver runs the three simulators from the
same initial state, reports oscillation summaries, and quantifies
agreement by comparing the RMS deviation of each limit curve from RSM
against the *null* deviation between two independent RSM runs — the
limits match RSM exactly when their deviation is of the same size as
the null.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.report import format_table
from .oscillation_common import (
    DEFAULT_SIDE,
    DEFAULT_UNTIL,
    Curve,
    lpndca_factory,
    rsm_factory,
    run_curve,
)

__all__ = ["Fig8Result", "run_fig8", "fig8_report"]


@dataclass
class Fig8Result:
    """The four curves of the Fig. 8 comparison plus deviation metrics."""
    rsm: Curve
    rsm_alt: Curve          # second independent RSM run (the null)
    single_chunk: Curve     # m=1, L=N
    singletons: Curve       # m=N, L=1
    null_rmse: float
    single_rmse: float
    singleton_rmse: float

    @property
    def limits_match(self) -> bool:
        """Are both limit curves within 2x the RSM-vs-RSM null deviation?"""
        bound = 2.0 * self.null_rmse
        return self.single_rmse <= bound and self.singleton_rmse <= bound


def run_fig8(
    side: int = DEFAULT_SIDE, until: float = DEFAULT_UNTIL, seed: int = 11
) -> Fig8Result:
    """Run RSM (twice) and both L-PNDCA limits on the Pt(100) workload."""
    n = side * side
    rsm = run_curve("RSM", rsm_factory(seed), side, until)
    rsm_alt = run_curve("RSM'", rsm_factory(seed + 100), side, until)
    single = run_curve(
        "L-PNDCA m=1 L=N",
        lpndca_factory(seed + 200, partition="single", L=n),
        side,
        until,
    )
    singles = run_curve(
        "L-PNDCA m=N L=1",
        lpndca_factory(seed + 300, partition="singletons", L=1),
        side,
        until,
    )
    return Fig8Result(
        rsm=rsm,
        rsm_alt=rsm_alt,
        single_chunk=single,
        singletons=singles,
        null_rmse=rsm_alt.rmse_to(rsm),
        single_rmse=single.rmse_to(rsm),
        singleton_rmse=singles.rmse_to(rsm),
    )


def fig8_report(result: Fig8Result | None = None) -> str:
    """Render the Fig. 8 comparison (runs with defaults when no result given)."""
    r = result or run_fig8()
    curves = [r.rsm, r.rsm_alt, r.single_chunk, r.singletons]
    body = [
        (
            c.label,
            f"{c.oscillation.period:.1f}",
            f"{c.oscillation.amplitude:.3f}",
            f"{c.oscillation.strength:.2f}",
            "yes" if c.oscillation.oscillating else "no",
            c.n_trials,
        )
        for c in curves
    ]
    lines = [
        "Fig. 8 - RSM vs the L-PNDCA limit parameterisations (Pt(100) model)",
        "",
        format_table(
            ["curve", "period", "amplitude", "strength", "oscillating", "trials"],
            body,
        ),
        "",
        f"CO-curve RMS deviation from RSM: null (RSM vs RSM) = {r.null_rmse:.3f}, "
        f"m=1/L=N = {r.single_rmse:.3f}, m=N/L=1 = {r.singleton_rmse:.3f}",
        f"limits statistically match RSM (within 2x null): {r.limits_match}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig8_report())
