"""Fig. 2: conflicts of the naive synchronous CA on a diffusion model.

The paper's Fig. 2 shows two particles flanking one vacancy, both
eligible to hop into it during the same synchronous step.  This driver
quantifies the problem: it runs the naive synchronous CA on the 2-d
diffusion model at several densities and reports

* the conflict rate (fraction of proposals whose neighborhoods
  overlap another proposal's),
* the particle-conservation error of each conflict policy (the
  ``discard`` policy conserves particles but suppresses boundary
  hops; *ignoring* conflicts — executing overlapping proposals anyway
  — is shown to break conservation via a deliberately unsafe replay).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ca.sync import SynchronousCA
from ..core.lattice import Lattice
from ..io.report import format_table
from ..models.diffusion import diffusion_model_2d, random_gas

__all__ = ["Fig2Point", "run_fig2", "fig2_report"]


@dataclass(frozen=True)
class Fig2Point:
    """Conflict and conservation statistics at one particle density."""
    density: float
    conflict_rate: float
    particles_before: int
    particles_after_discard: int
    particles_after_unsafe: int

    @property
    def discard_conserves(self) -> bool:
        """Did the discard policy conserve the particle number?"""
        return self.particles_after_discard == self.particles_before

    @property
    def unsafe_violates(self) -> bool:
        """Did executing conflicting proposals change the particle number?"""
        return self.particles_after_unsafe != self.particles_before


def _unsafe_synchronous_step(state, compiled, rng) -> None:
    """Execute *all* matching proposals simultaneously, conflicts included.

    This is the broken update of Fig. 2: overlapping writes are applied
    in arbitrary order, so two particles can hop into one vacancy and
    one of them vanishes.  For demonstration only.
    """
    from ..core.rng import draw_types

    n = compiled.n_sites
    sites = np.arange(n, dtype=np.intp)
    types = draw_types(rng, compiled.type_cum, n)
    old = state.copy()  # true synchronous semantics: match on the OLD state
    for t in np.unique(types):
        pick = sites[types == t]
        mask = compiled.match_sites(old, int(t), pick)
        hits = pick[mask]
        ct = compiled.types[t]
        for m, v in zip(ct.maps, ct.tgts):
            state[m[hits]] = v


def run_fig2(
    densities=(0.1, 0.3, 0.5, 0.7),
    side: int = 32,
    steps: int = 50,
    seed: int = 0,
) -> list[Fig2Point]:
    """Measure conflict rates and conservation at several densities."""
    model = diffusion_model_2d()
    lattice = Lattice((side, side))
    out = []
    for rho in densities:
        rng = np.random.default_rng(seed)
        initial = random_gas(lattice, model, rho, rng)
        n0 = int(np.count_nonzero(initial.array))

        sim = SynchronousCA(
            model, lattice, seed=seed, initial=initial, on_conflict="discard"
        )
        sim.run(until=np.inf, max_steps=steps)
        n_discard = int(np.count_nonzero(sim.state.array))

        compiled = model.compile(lattice)
        unsafe = initial.copy()
        rng2 = np.random.default_rng(seed)
        for _ in range(steps):
            _unsafe_synchronous_step(unsafe.array, compiled, rng2)
        n_unsafe = int(np.count_nonzero(unsafe.array))

        out.append(
            Fig2Point(
                density=rho,
                conflict_rate=sim.conflict_rate(),
                particles_before=n0,
                particles_after_discard=n_discard,
                particles_after_unsafe=n_unsafe,
            )
        )
    return out


def fig2_report(points: list[Fig2Point] | None = None) -> str:
    """Render the Fig. 2 table (runs with defaults when no points given)."""
    points = points or run_fig2()
    body = [
        (
            p.density,
            f"{p.conflict_rate:.3f}",
            p.particles_before,
            p.particles_after_discard,
            p.particles_after_unsafe,
            "ok" if (p.discard_conserves and p.unsafe_violates) else "UNEXPECTED",
        )
        for p in points
    ]
    return (
        "Fig. 2 - synchronous-update conflicts (2-d diffusion)\n"
        + format_table(
            [
                "density",
                "conflict rate",
                "particles t=0",
                "after discard-CA",
                "after unsafe-CA",
                "conservation",
            ],
            body,
        )
    )


if __name__ == "__main__":
    print(fig2_report())
