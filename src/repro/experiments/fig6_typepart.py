"""Figs. 5/6: pattern overlap at a site and the two-chunk partitions per Tj.

Fig. 5 shows that the four oriented pair patterns of the CO-oxidation
model all overlap at the central site — which is why the all-types
partition needs five chunks.  Fig. 6 shows the remedy: after splitting
the reaction types by orientation (Table II), each subset only needs
the two-chunk checkerboard partition.  The driver regenerates both
facts and demonstrates the resulting type-partitioned CA on the Ziff
model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ca.typepart import TypePartitionedCA, validate_partition_for_single_types
from ..core.lattice import Lattice
from ..dmc.base import CoverageObserver
from ..dmc.rsm import RSM
from ..io.report import format_table
from ..models.zgb import ziff_model
from ..partition.coloring import clique_lower_bound
from ..partition.tilings import checkerboard
from ..partition.typesplit import split_by_orientation

__all__ = ["Fig6Result", "run_fig6", "fig6_report"]


@dataclass
class Fig6Result:
    """Partition facts and coverage comparison of the Fig. 5/6 experiment."""
    overlap_count_all_types: int   # sites overlapping at s over all patterns
    chunks_all_types: int          # chunks needed for the union (Fig. 4: 5)
    chunks_per_subset: int         # chunks per Tj (Fig. 6: 2)
    checkerboard_valid: bool
    subsets: list[tuple[str, list[str]]]
    final_coverages_typepart: dict[str, float]
    final_coverages_rsm: dict[str, float]


def run_fig6(side: int = 20, until: float = 5.0, seed: int = 0) -> Fig6Result:
    """Regenerate the Fig. 5/6 facts and demo the type-partitioned CA."""
    model = ziff_model()
    lattice = Lattice((side, side))

    # Fig. 5: all pair patterns share the central site
    union = model.union_neighborhood()
    overlap = len(union)  # anchors + the four pair partners

    split = split_by_orientation(model)
    cb = checkerboard(lattice)
    try:
        validate_partition_for_single_types(cb, model)
        cb_valid = True
    except ValueError:
        cb_valid = False

    sim = TypePartitionedCA(
        model, lattice, seed=seed, type_split=split, partition=cb,
        observers=[CoverageObserver(1.0)],
    )
    r_tp = sim.run(until=until)
    r_rsm = RSM(
        model, lattice, seed=seed, observers=[CoverageObserver(1.0)]
    ).run(until=until)

    subsets = [
        (
            f"T{s.index}",
            [model.reaction_types[i].name for i in s.type_indices],
        )
        for s in split.subsets
    ]
    return Fig6Result(
        overlap_count_all_types=overlap,
        chunks_all_types=clique_lower_bound(model),
        chunks_per_subset=cb.m,
        checkerboard_valid=cb_valid,
        subsets=subsets,
        final_coverages_typepart=r_tp.final_state.coverages(),
        final_coverages_rsm=r_rsm.final_state.coverages(),
    )


def fig6_report(result: Fig6Result | None = None) -> str:
    """Render the Fig. 5/6 report (runs with defaults when no result given)."""
    r = result or run_fig6()
    lines = [
        "Figs. 5/6 - reaction-type partitioning",
        "",
        f"Fig. 5: the union neighborhood of all reaction types spans "
        f"{r.overlap_count_all_types} sites around s -> any all-types "
        f"partition needs >= {r.chunks_all_types} chunks",
        f"Fig. 6: after the Table II split, each subset Tj is served by the "
        f"{r.chunks_per_subset}-chunk checkerboard "
        f"(valid: {r.checkerboard_valid})",
        "",
    ]
    for name, members in r.subsets:
        lines.append(f"  {name}: " + ", ".join(members))
    lines.append("")
    body = [
        (sp, f"{r.final_coverages_typepart.get(sp, 0):.3f}",
         f"{r.final_coverages_rsm.get(sp, 0):.3f}")
        for sp in r.final_coverages_rsm
    ]
    lines.append(
        format_table(["species", "TypePartCA coverage", "RSM coverage"], body)
    )
    lines.append(
        "(the type-partitioned CA trades accuracy for 2-chunk concurrency - "
        "mass application of one type amplifies correlations)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig6_report())
