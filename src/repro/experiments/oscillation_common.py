"""Shared machinery for the oscillation experiments (Figs. 8-10).

All three figures compare coverage curves of the Pt(100)
reconstruction model between RSM and L-PNDCA variants.  This module
provides the common runner (model, initial state, observers, CO/O
series extraction) and the default experiment scale.

Scale note: the paper uses 100x100 lattices and horizons of 200-300
time units; the default here is 32x32 over ~60 time units (<= a
minute per curve on one CPU core), which shows 4-5 oscillation
periods — enough for every qualitative comparison.  All drivers take
``side``/``until`` parameters to run at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..analysis.compare import curve_rmse, phase_shift
from ..analysis.oscillations import OscillationSummary, analyze_oscillations
from ..core.lattice import Lattice
from ..core.model import Model
from ..dmc.base import CoverageObserver, SimulatorBase
from ..lint import preflight_partition
from ..models.pt100 import hex_surface, pt100_model

__all__ = ["Curve", "run_curve", "make_pt100", "DEFAULT_SIDE", "DEFAULT_UNTIL"]

DEFAULT_SIDE = 40
DEFAULT_UNTIL = 70.0
SAMPLE_DT = 0.25


def make_pt100() -> Model:
    """The oscillatory Pt(100) model with the package's tuned rates."""
    return pt100_model()


@dataclass
class Curve:
    """One simulated coverage curve plus its oscillation summary."""

    label: str
    times: np.ndarray
    co: np.ndarray     # total CO coverage (hex + square phase)
    o: np.ndarray      # O coverage
    oscillation: OscillationSummary
    n_trials: int
    wall_time: float

    def rmse_to(self, other: "Curve") -> float:
        """RMS deviation of the CO curves."""
        return curve_rmse(other.times, other.co, self.times, self.co)

    def phase_shift_to(self, other: "Curve") -> float:
        """Time lag of this CO curve relative to another."""
        return phase_shift(other.times, other.co, self.times, self.co)


def run_curve(
    label: str,
    factory: Callable[[Model, Lattice], SimulatorBase],
    side: int = DEFAULT_SIDE,
    until: float = DEFAULT_UNTIL,
    sample_dt: float = SAMPLE_DT,
) -> Curve:
    """Run one simulator on the Pt(100) workload and summarise its curve.

    ``factory(model, lattice)`` must build a simulator that already
    carries a ``CoverageObserver``-compatible observer — to keep the
    grids identical the factory should use :func:`make_observer`.
    """
    model = make_pt100()
    lattice = Lattice((side, side))
    sim = factory(model, lattice)
    if not sim.observers:
        sim.observers.append(make_observer(sample_dt))
    result = sim.run(until=until)
    co = result.coverage["hC"] + result.coverage["sC"]
    o = result.coverage["sO"]
    return Curve(
        label=label,
        times=result.times,
        co=co,
        o=o,
        oscillation=analyze_oscillations(result.times, co),
        n_trials=result.n_trials,
        wall_time=result.wall_time,
    )


def make_observer(sample_dt: float = SAMPLE_DT) -> CoverageObserver:
    """The standard coverage observer of the oscillation experiments."""
    return CoverageObserver(sample_dt, species=("hC", "sC", "sO"))


# ----------------------------------------------------------------------
# standard simulator factories
# ----------------------------------------------------------------------

def rsm_factory(seed: int, sample_dt: float = SAMPLE_DT):
    """RSM on a clean hex surface (the figures' reference curve)."""
    from ..dmc.rsm import RSM

    def build(model: Model, lattice: Lattice) -> SimulatorBase:
        return RSM(
            model, lattice, seed=seed, initial=hex_surface(lattice, model),
            observers=[make_observer(sample_dt)],
        )

    return build


def lpndca_factory(
    seed: int,
    partition: str = "five",
    L: int | str = 1,
    chunk_selection: str = "size-proportional",
    sample_dt: float = SAMPLE_DT,
):
    """L-PNDCA on a clean hex surface.

    ``partition``: ``"five"`` (Fig. 4), ``"single"`` (m=1) or
    ``"singletons"`` (m=N).
    """
    from ..ca.lpndca import LPNDCA
    from ..partition.partition import Partition
    from ..partition.tilings import five_chunk_partition

    def build(model: Model, lattice: Lattice) -> SimulatorBase:
        if partition == "five":
            p = five_chunk_partition(lattice)
            preflight_partition(p, model)
        elif partition == "single":
            p = Partition.single_chunk(lattice)
        elif partition == "singletons":
            p = Partition.singletons(lattice)
            preflight_partition(p, model)
        else:
            raise ValueError(f"unknown partition kind {partition!r}")
        return LPNDCA(
            model, lattice, seed=seed, initial=hex_surface(lattice, model),
            partition=p, L=L, chunk_selection=chunk_selection,
            require_conflict_free=False,
            observers=[make_observer(sample_dt)],
        )

    return build
