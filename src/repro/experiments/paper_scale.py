"""Paper-scale runs of the oscillation experiments (Figs. 8-10).

The default experiment scale (40x40, t = 70) keeps the benchmark suite
minutes-fast; the paper itself uses 100x100 lattices and horizons of
200-300 time units.  This module provides the paper-scale presets and
a small runner that executes them, saves each run's coverage series as
an npz archive (:mod:`repro.io.trace`) and prints the reports — the
"overnight" companion to the quick benchmarks::

    python -m repro.experiments.paper_scale            # all three figures
    python -m repro.experiments.paper_scale fig9       # one of them

Budget estimate on one ~2 Mtrials/s core: each RSM-like curve at
100x100 / t = 200 is ~3x10^8 trials, i.e. a few minutes; the full set
of figures runs in well under an hour.
"""

from __future__ import annotations

import argparse
from contextlib import nullcontext
from pathlib import Path

from . import fig8_limits, fig9_l_effect, fig10_random_order

__all__ = ["PAPER_SIDE", "PAPER_UNTIL", "run_paper_scale"]

#: the paper's lattice side and a horizon covering ~15 oscillation periods
PAPER_SIDE = 100
PAPER_UNTIL = 200.0

_RUNNERS = {
    "fig8": (fig8_limits.run_fig8, fig8_limits.fig8_report),
    "fig9": (fig9_l_effect.run_fig9, fig9_l_effect.fig9_report),
    "fig10": (fig10_random_order.run_fig10, fig10_random_order.fig10_report),
}


def run_paper_scale(
    which: str | None = None,
    side: int = PAPER_SIDE,
    until: float = PAPER_UNTIL,
    out_dir: str | Path = "paper_scale_results",
    checkpoint_dir: str | Path | None = None,
) -> dict[str, str]:
    """Run the selected figures at paper scale; returns id -> report.

    ``checkpoint_dir`` makes the overnight runs interruptible: every
    engine ``run()`` inside the loop checkpoints there periodically
    (``repro.ckpt/1`` files, one tag per figure), and SIGINT/SIGTERM
    flush a final checkpoint at the next step boundary before exiting —
    Ctrl-C or a batch-scheduler kill costs at most one checkpoint
    interval, not the whole night.
    """
    keys = [which] if which else list(_RUNNERS)
    unknown = [k for k in keys if k not in _RUNNERS]
    if unknown:
        raise KeyError(f"unknown figure(s) {unknown}; choose from {sorted(_RUNNERS)}")
    out = {}
    out_path = Path(out_dir)
    out_path.mkdir(exist_ok=True)
    for key in keys:
        if checkpoint_dir is not None:
            from ..resilience.checkpoint import (
                Checkpointer,
                CheckpointPolicy,
                use_checkpoints,
            )

            ctx = use_checkpoints(
                Checkpointer(
                    Path(checkpoint_dir),
                    CheckpointPolicy(every_steps=None, every_seconds=30.0),
                    tag=key,
                )
            )
        else:
            ctx = nullcontext()
        run, report = _RUNNERS[key]
        with ctx:
            result = run(side=side, until=until)
        text = report(result)
        (out_path / f"{key}.txt").write_text(text + "\n")
        out[key] = text
    return out


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("which", nargs="?", help="one of fig8/fig9/fig10 (default all)")
    parser.add_argument("--side", type=int, default=PAPER_SIDE)
    parser.add_argument("--until", type=float, default=PAPER_UNTIL)
    parser.add_argument("--out-dir", default="paper_scale_results")
    parser.add_argument(
        "--checkpoint-dir",
        help="periodic repro.ckpt/1 checkpoints + SIGINT/SIGTERM final flush",
    )
    a = parser.parse_args()
    for key, text in run_paper_scale(
        a.which, side=a.side, until=a.until,
        out_dir=a.out_dir, checkpoint_dir=a.checkpoint_dir,
    ).items():
        print(text)
        print()
