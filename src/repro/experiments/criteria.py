"""The Segers correctness criteria as an executable experiment.

Section 6 of the paper: an algorithm simulates the Master Equation
correctly iff only enabled reactions execute and

1. the waiting time of a reaction of type ``i`` is ``Exp(k_i)``;
2. the next reaction is of type ``i`` with probability proportional
   to ``k_i`` (times the number of enabled instances).

The probe model makes the criteria directly measurable: "tick"
reaction types that are enabled in *every* state (they rewrite a site
to its current species), so each type's event stream must be a Poisson
process of rate ``k_i * N`` and the type mix must follow the rate
ratios.  The driver runs the probe through any of the package's
simulators and applies KS tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.waiting_times import (
    check_exponential_waiting_times,
    type_selection_ratio,
)
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import ReactionType
from ..io.report import format_table

__all__ = ["tick_model", "CriteriaResult", "run_criteria", "criteria_report"]


def tick_model(rates: tuple[float, ...] = (0.7, 1.3, 2.0)) -> Model:
    """Always-enabled single-site reaction types (state never changes)."""
    rts = [
        ReactionType(f"tick{i}", [((0, 0), "A", "A")], k)
        for i, k in enumerate(rates)
    ]
    return Model(["A"], rts, name="tick")


@dataclass
class CriteriaResult:
    """Outcome of the two Segers criteria for one algorithm."""
    algorithm: str
    n_events: int
    p_values: list[float]            # criterion 1 KS p-value per type
    empirical_ratios: np.ndarray     # criterion 2: observed type mix
    expected_ratios: np.ndarray

    @property
    def criterion1_ok(self) -> bool:
        """Are all per-type waiting times compatible with exponentials (KS)?"""
        return all(p > 0.01 for p in self.p_values)

    @property
    def criterion2_ok(self) -> bool:
        """Does the event type mix follow the rate ratios k_i/K?"""
        return bool(
            np.all(np.abs(self.empirical_ratios - self.expected_ratios) < 0.02)
        )


def run_criteria(
    simulator_cls=None,
    rates: tuple[float, ...] = (0.7, 1.3, 2.0),
    side: int = 4,
    until: float = 400.0,
    seed: int = 0,
    **sim_kwargs,
) -> CriteriaResult:
    """Run the tick probe through a simulator class (default RSM)."""
    from ..dmc.rsm import RSM

    simulator_cls = simulator_cls or RSM
    model = tick_model(rates)
    lattice = Lattice((side, side))
    sim = simulator_cls(
        model, lattice, seed=seed, record_events=True, **sim_kwargs
    )
    sim.run(until=until)
    trace = sim.trace
    n = lattice.n_sites
    p_values = []
    for i, k in enumerate(rates):
        # the type's event stream over the whole lattice is Poisson of
        # rate k * N (N independent always-enabled instances)
        rep = check_exponential_waiting_times(trace, i, expected_rate=k * n)
        p_values.append(rep.p_value)
    ratios = type_selection_ratio(trace, model.n_types)
    expected = np.array(rates) / sum(rates)
    return CriteriaResult(
        algorithm=sim.algorithm,
        n_events=len(trace),
        p_values=p_values,
        empirical_ratios=ratios,
        expected_ratios=expected,
    )


def criteria_report(results: list[CriteriaResult] | None = None) -> str:
    """Render the criteria table (defaults: RSM and NDCA probes)."""
    if results is None:
        from ..ca.ndca import NDCA
        from ..dmc.rsm import RSM

        results = [run_criteria(RSM), run_criteria(NDCA)]
    body = []
    for r in results:
        body.append(
            (
                r.algorithm,
                r.n_events,
                " ".join(f"{p:.2f}" for p in r.p_values),
                " ".join(f"{x:.3f}" for x in r.empirical_ratios),
                " ".join(f"{x:.3f}" for x in r.expected_ratios),
                "ok" if (r.criterion1_ok and r.criterion2_ok) else "FAIL",
            )
        )
    return (
        "Segers correctness criteria (tick probe)\n"
        + format_table(
            [
                "algorithm",
                "events",
                "KS p per type",
                "type mix",
                "expected mix",
                "verdict",
            ],
            body,
        )
    )


if __name__ == "__main__":
    print(criteria_report())
