"""The paper's closing claim: fast diffusion makes full parallelism accurate.

Section 6, on Fig. 10: "if we consider very fast diffusion and small
probabilities for chemical reactions in the cells, the deviations are
so small that DMC and L-PNDCA give similar results.  We can have in
this case full parallelization and very accurate results."

The mechanism: partitioned updates bias the *local correlations*
(chunk sweeps create/destroy neighbour pairs in lockstep); fast
diffusion re-mixes the adsorbate between chunk visits and erases the
bias.  The probe model makes this quantitative:

* dissociative adsorption ``(*,*) -> (O,O)`` — creates correlated
  nearest-neighbour pairs,
* monomer desorption ``O -> *`` — a genuinely non-equilibrium pairing
  (a reversible dimer ads/des system would relax to a *product*
  measure with g = 1; the monomer desorption keeps freshly adsorbed
  pairs over-represented),
* hops ``(O,*) -> (*,O)`` at a swept rate ``k_diff``.

At slow diffusion the steady state has a strong nearest-neighbour O-O
correlation (g_OO(1) ~ 2.5 in the default regime); fast diffusion
mixes it away toward 1, and with it the chemistry becomes insensitive
to the order in which chunks are visited.  The observable is the
*time-averaged* g_OO(1) (a :class:`PairCorrelationObserver`), compared
between RSM and the Fig. 10 L-PNDCA configuration (five chunks,
maximal L, random order).  Expected shape: the absolute CA-vs-RSM
deviation of g_OO(1) decreases as ``k_diff`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.correlations import PairCorrelationObserver
from ..ca.lpndca import LPNDCA
from ..core.lattice import Lattice
from ..core.model import Model
from ..core.reaction import ORIENTATIONS_2, ORIENTATIONS_4, ReactionType, oriented
from ..dmc.rsm import RSM
from ..io.report import format_table
from ..lint import preflight_partition
from ..partition.tilings import five_chunk_partition

__all__ = [
    "pairing_model",
    "FastDiffusionResult",
    "run_fast_diffusion",
    "fast_diffusion_report",
]


def pairing_model(
    k_ads: float = 0.1, k_des: float = 5.0, k_diff: float = 1.0
) -> Model:
    """Dimer adsorption + monomer desorption + diffusion (probe model)."""
    rts: list[ReactionType] = []
    rts += oriented(
        "O2_ads", [((0, 0), "*", "O"), ((1, 0), "*", "O")],
        rate=k_ads, directions=ORIENTATIONS_2,
    )
    rts.append(ReactionType("O_des", [((0, 0), "O", "*")], k_des))
    rts += oriented(
        "hop", [((0, 0), "O", "*"), ((1, 0), "*", "O")],
        rate=k_diff, directions=ORIENTATIONS_4,
    )
    return Model(["*", "O"], rts, name=f"pairing(kdiff={k_diff:g})")


@dataclass
class FastDiffusionResult:
    """Per-diffusion-rate correlations and CA-vs-RSM deviations."""
    k_diffs: list[float]
    g_rsm: dict[float, float] = field(default_factory=dict)
    g_rsm_std: dict[float, float] = field(default_factory=dict)
    g_ca: dict[float, float] = field(default_factory=dict)
    abs_deviation: dict[float, float] = field(default_factory=dict)

    @property
    def correlations_decay_with_diffusion(self) -> bool:
        """Does g_OO(1) under RSM fall toward 1 as diffusion grows?"""
        lo, hi = min(self.k_diffs), max(self.k_diffs)
        return self.g_rsm[hi] - 1.0 < 0.5 * (self.g_rsm[lo] - 1.0)

    @property
    def deviation_shrinks(self) -> bool:
        """The paper's claim: CA deviation small once diffusion is fast."""
        lo, hi = min(self.k_diffs), max(self.k_diffs)
        return self.abs_deviation[hi] < self.abs_deviation[lo]


def _steady_g(
    model: Model,
    lattice: Lattice,
    algorithm: str,
    seeds,
    until: float,
) -> tuple[float, float]:
    """Time-averaged steady-state g_OO(1), mean and spread over seeds."""
    p5 = five_chunk_partition(lattice)
    preflight_partition(p5, model)
    means = []
    for seed in seeds:
        obs = PairCorrelationObserver(until / 60.0, "O", "O", (1, 0))
        if algorithm == "RSM":
            sim = RSM(model, lattice, seed=seed, observers=[obs])
        else:
            sim = LPNDCA(
                model, lattice, seed=seed, partition=p5,
                L="chunk", chunk_selection="random-order", observers=[obs],
            )
        sim.run(until=until)
        means.append(obs.steady_mean())
    return float(np.mean(means)), float(np.std(means, ddof=1))


def run_fast_diffusion(
    k_diffs: tuple[float, ...] = (0.1, 1.0, 4.0, 16.0),
    side: int = 40,
    until: float = 30.0,
    n_seeds: int = 3,
    seed0: int = 0,
) -> FastDiffusionResult:
    """Sweep the diffusion rate and compare g_OO(1) between RSM and CA."""
    out = FastDiffusionResult(k_diffs=list(k_diffs))
    lattice = Lattice((side, side))
    for kd in k_diffs:
        model = pairing_model(k_diff=kd)
        g_rsm, spread = _steady_g(
            model, lattice, "RSM", range(seed0, seed0 + n_seeds), until
        )
        g_ca, _ = _steady_g(
            model, lattice, "CA", range(seed0 + 50, seed0 + 50 + n_seeds), until
        )
        out.g_rsm[kd] = g_rsm
        out.g_rsm_std[kd] = spread
        out.g_ca[kd] = g_ca
        out.abs_deviation[kd] = abs(g_ca - g_rsm)
    return out


def fast_diffusion_report(result: FastDiffusionResult | None = None) -> str:
    """Render the diffusion sweep (runs with defaults when no result given)."""
    r = result or run_fast_diffusion()
    body = [
        (
            kd,
            f"{r.g_rsm[kd]:.3f} +- {r.g_rsm_std[kd]:.3f}",
            f"{r.g_ca[kd]:.3f}",
            f"{r.abs_deviation[kd]:.3f}",
        )
        for kd in r.k_diffs
    ]
    return (
        "Fast diffusion vs L-PNDCA accuracy (pairing probe, time-averaged "
        "g_OO at distance 1)\n"
        + format_table(
            ["k_diff", "g_OO RSM (ensemble)", "g_OO L-PNDCA", "|deviation|"],
            body,
        )
        + f"\ncorrelations decay with diffusion: {r.correlations_decay_with_diffusion}"
        + f"\nCA deviation shrinks with diffusion: {r.deviation_shrinks} "
        "(the paper's full-parallelisation-with-accuracy regime)"
    )


if __name__ == "__main__":
    print(fast_diffusion_report())
