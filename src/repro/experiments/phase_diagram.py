"""Extra experiment: the ZGB kinetic phase diagram ("Ziff model").

The paper's abstract promises "experimental data for the simulation of
Ziff model"; the model's famous feature is its kinetic phase diagram
over the CO mole fraction ``y``: an O-poisoned phase below
``y1 ~ 0.39``, a reactive window, and a discontinuous transition to a
CO-poisoned phase at ``y2 ~ 0.525``.  This driver sweeps ``y`` with
the (fast, vectorised) PNDCA and verifies selected points with RSM —
showcasing exactly the trade the paper proposes: a partitioned CA
doing the heavy scanning at DMC-compatible accuracy.

Expected reproduction shape: O coverage ~1 for small y; CO coverage
jumping to ~1 above the second transition; a reactive window in
between with both coverages well below 1; transition locations within
a few 0.01 of the literature values (finite size, finite reaction
rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ca.pndca import PNDCA
from ..core.lattice import Lattice
from ..dmc.rsm import RSM
from ..ensemble import EnsemblePNDCA, EnsembleRSM
from ..io.report import format_table
from ..lint import preflight_model, preflight_partition
from ..models.zgb import empty_surface, zgb_model
from ..partition.tilings import five_chunk_partition

__all__ = ["PhasePoint", "PhaseDiagram", "run_phase_diagram", "phase_diagram_report"]


@dataclass(frozen=True)
class PhasePoint:
    """Steady-state coverages of one y point of the sweep.

    With ``n_replicas > 1`` the coverages are ensemble means over
    independent replicas (vectorised via :mod:`repro.ensemble`) and the
    ``stderr_*`` fields carry the standard errors of those means;
    single-run points keep the default zero stderr.
    """
    y: float
    theta_co: float
    theta_o: float
    theta_empty: float
    algorithm: str
    n_replicas: int = 1
    stderr_co: float = 0.0
    stderr_o: float = 0.0
    stderr_empty: float = 0.0

    @property
    def poisoned(self) -> str:
        """Poisoning classification: "O", "CO" or "-" (reactive)."""
        if self.theta_o > 0.95:
            return "O"
        if self.theta_co > 0.95:
            return "CO"
        return "-"


@dataclass
class PhaseDiagram:
    """The swept phase points plus RSM verification runs."""
    points: list[PhasePoint] = field(default_factory=list)
    rsm_checks: list[PhasePoint] = field(default_factory=list)

    def transition_estimates(self) -> tuple[float, float]:
        """(y1, y2): first y that leaves the O-poisoned phase, first
        that enters the CO-poisoned phase (midpoints of the bracketing
        grid intervals; nan when not bracketed)."""
        ys = np.array([p.y for p in self.points])
        o_poisoned = np.array([p.poisoned == "O" for p in self.points])
        co_poisoned = np.array([p.poisoned == "CO" for p in self.points])
        y1 = float("nan")
        y2 = float("nan")
        for i in range(len(ys) - 1):
            if o_poisoned[i] and not o_poisoned[i + 1] and np.isnan(y1):
                y1 = float((ys[i] + ys[i + 1]) / 2)
            if not co_poisoned[i] and co_poisoned[i + 1] and np.isnan(y2):
                y2 = float((ys[i] + ys[i + 1]) / 2)
        return y1, y2


def _steady_point(
    y: float,
    side: int,
    until: float,
    seed: int,
    algorithm: str,
    n_replicas: int = 1,
) -> PhasePoint:
    model = zgb_model(y)
    preflight_model(model)
    lattice = Lattice((side, side))
    initial = empty_surface(lattice, model)
    if algorithm not in ("PNDCA", "RSM"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if n_replicas > 1:
        return _steady_point_ensemble(
            model, lattice, initial, until, seed, algorithm, n_replicas, y
        )
    if algorithm == "PNDCA":
        p5 = five_chunk_partition(lattice)
        preflight_partition(p5, model)
        sim = PNDCA(model, lattice, seed=seed, initial=initial, partition=p5)
    else:
        sim = RSM(model, lattice, seed=seed, initial=initial)
    r = sim.run(until=until)
    cov = r.final_state.coverages()
    return PhasePoint(
        y=y,
        theta_co=cov["CO"],
        theta_o=cov["O"],
        theta_empty=cov["*"],
        algorithm=algorithm,
    )


def _steady_point_ensemble(
    model, lattice, initial, until, seed, algorithm, n_replicas, y
) -> PhasePoint:
    """One y point as the mean over a stacked replica ensemble."""
    if algorithm == "PNDCA":
        p5 = five_chunk_partition(lattice)
        preflight_partition(p5, model)
        ens = EnsemblePNDCA(
            model, lattice, n_replicas=n_replicas, seed=seed,
            initial=initial, partition=p5,
        )
    else:
        ens = EnsembleRSM(
            model, lattice, n_replicas=n_replicas, seed=seed, initial=initial
        )
    res = ens.run(until=until)
    cov = res.mean_final_coverages()
    sem = res.stderr_final_coverages()
    return PhasePoint(
        y=y,
        theta_co=cov["CO"],
        theta_o=cov["O"],
        theta_empty=cov["*"],
        algorithm=algorithm,
        n_replicas=n_replicas,
        stderr_co=sem["CO"],
        stderr_o=sem["O"],
        stderr_empty=sem["*"],
    )


def run_phase_diagram(
    ys: np.ndarray | None = None,
    side: int = 50,  # must be a multiple of 5 (five-chunk tiling)
    until: float = 150.0,  # poisoning needs long horizons to complete
    seed: int = 0,
    rsm_check_ys: tuple[float, ...] = (0.45,),
    n_replicas: int = 1,
    checkpoint_dir: str | None = None,
) -> PhaseDiagram:
    """Sweep y with PNDCA; verify selected points with RSM.

    ``n_replicas > 1`` switches every point to the stacked ensemble
    engine: each coverage becomes a mean over that many independent
    replicas (with stderr on the :class:`PhasePoint`), at far less than
    ``n_replicas`` times the single-run cost.

    ``checkpoint_dir`` makes the sweep interruptible: each y point's
    engine run checkpoints there periodically, and SIGINT/SIGTERM flush
    a final checkpoint at the next step boundary before exiting.
    """
    if ys is None:
        ys = np.concatenate(
            [
                np.arange(0.30, 0.60 + 1e-9, 0.025),
            ]
        )
    if checkpoint_dir is not None:
        from ..resilience.checkpoint import (
            Checkpointer,
            CheckpointPolicy,
            use_checkpoints,
        )

        ckpt = Checkpointer(
            checkpoint_dir,
            CheckpointPolicy(every_steps=None, every_seconds=30.0),
            tag="phase-diagram",
        )
        with use_checkpoints(ckpt):
            return run_phase_diagram(
                ys, side, until, seed, rsm_check_ys, n_replicas, None
            )
    out = PhaseDiagram()
    for y in ys:
        out.points.append(
            _steady_point(float(y), side, until, seed, "PNDCA", n_replicas)
        )
    for y in rsm_check_ys:
        out.rsm_checks.append(
            _steady_point(float(y), side, until, seed, "RSM", n_replicas)
        )
    return out


def phase_diagram_report(diagram: PhaseDiagram | None = None) -> str:
    """Render the phase diagram (runs with defaults when no diagram given)."""
    d = diagram or run_phase_diagram()
    ensembled = any(p.n_replicas > 1 for p in d.points)

    def _fmt(v: float, sem: float) -> str:
        return f"{v:.3f}±{sem:.3f}" if ensembled else f"{v:.3f}"

    body = [
        (f"{p.y:.3f}", _fmt(p.theta_co, p.stderr_co),
         _fmt(p.theta_o, p.stderr_o),
         _fmt(p.theta_empty, p.stderr_empty), p.poisoned)
        for p in d.points
    ]
    y1, y2 = d.transition_estimates()
    title = "ZGB kinetic phase diagram (PNDCA sweep, five chunks)"
    if ensembled:
        r = max(p.n_replicas for p in d.points)
        title += f" — ensemble means over R={r} replicas"
    lines = [
        title,
        "",
        format_table(["y", "theta_CO", "theta_O", "theta_*", "poisoned"], body),
        "",
        f"transition estimates: y1 ~ {y1:.3f} (literature ~0.39), "
        f"y2 ~ {y2:.3f} (literature ~0.525)",
    ]
    if d.rsm_checks:
        lines.append("")
        lines.append("RSM verification points:")
        for p in d.rsm_checks:
            q = min(d.points, key=lambda pp: abs(pp.y - p.y))
            lines.append(
                f"  y={p.y:.3f}: RSM CO={p.theta_co:.3f} O={p.theta_o:.3f}  |  "
                f"PNDCA CO={q.theta_co:.3f} O={q.theta_o:.3f}"
            )
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--side", type=int, default=50)
    parser.add_argument("--until", type=float, default=150.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument(
        "--checkpoint-dir",
        help="periodic repro.ckpt/1 checkpoints + SIGINT/SIGTERM final flush",
    )
    a = parser.parse_args()
    print(phase_diagram_report(run_phase_diagram(
        side=a.side, until=a.until, seed=a.seed,
        n_replicas=a.replicas, checkpoint_dir=a.checkpoint_dir,
    )))
