"""Fig. 9: the effect of the trials-per-chunk parameter L (five chunks).

The paper's Fig. 9 compares RSM against L-PNDCA with the optimal
five-chunk partition and size-proportional random chunk selection:

* (a) ``L = 1``  — L-PNDCA gives almost the same results as DMC;
* (b) ``L = 100`` — the correlations introduced by spending more
  consecutive trials inside one chunk shift the oscillations in time
  and degrade the agreement; for very large ``L`` the oscillations
  disappear altogether.

The driver runs RSM and a sweep of ``L`` values, reporting oscillation
summaries, RMS deviation from RSM and the estimated time shift of the
oscillations, plus the RSM-vs-RSM null deviation as the yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..io.report import format_table
from .oscillation_common import (
    DEFAULT_SIDE,
    DEFAULT_UNTIL,
    Curve,
    lpndca_factory,
    rsm_factory,
    run_curve,
)

__all__ = ["Fig9Result", "run_fig9", "fig9_report"]


@dataclass
class Fig9Result:
    """Curves and deviation metrics of the Fig. 9 comparison."""
    rsm: Curve
    null_rmse: float
    by_L: dict[int, Curve] = field(default_factory=dict)
    rmse_by_L: dict[int, float] = field(default_factory=dict)
    shift_by_L: dict[int, float] = field(default_factory=dict)

    @property
    def small_L_matches(self) -> bool:
        """Does the smallest L track RSM (within 2x the null deviation)?"""
        l_min = min(self.by_L)
        return self.rmse_by_L[l_min] <= 2.0 * self.null_rmse

    @property
    def all_oscillate(self) -> bool:
        """Do all swept L values retain oscillatory behaviour?"""
        return all(c.oscillation.oscillating for c in self.by_L.values())


def run_fig9(
    side: int = DEFAULT_SIDE,
    until: float = DEFAULT_UNTIL,
    seed: int = 21,
    Ls: tuple[int, ...] = (1, 100),
) -> Fig9Result:
    """Run RSM plus an L sweep of L-PNDCA on the Pt(100) workload."""
    rsm = run_curve("RSM", rsm_factory(seed), side, until)
    rsm_alt = run_curve("RSM'", rsm_factory(seed + 100), side, until)
    out = Fig9Result(rsm=rsm, null_rmse=rsm_alt.rmse_to(rsm))
    for i, L in enumerate(Ls):
        c = run_curve(
            f"L-PNDCA m=5 L={L}",
            lpndca_factory(seed + 200 + i, partition="five", L=int(L)),
            side,
            until,
        )
        out.by_L[int(L)] = c
        out.rmse_by_L[int(L)] = c.rmse_to(rsm)
        out.shift_by_L[int(L)] = c.phase_shift_to(rsm)
    return out


def fig9_report(result: Fig9Result | None = None) -> str:
    """Render the Fig. 9 comparison (runs with defaults when no result given)."""
    r = result or run_fig9()
    body = [
        (
            "RSM",
            f"{r.rsm.oscillation.period:.1f}",
            f"{r.rsm.oscillation.amplitude:.3f}",
            f"{r.rsm.oscillation.strength:.2f}",
            "-",
            "-",
        )
    ]
    for L, c in sorted(r.by_L.items()):
        body.append(
            (
                f"L={L}",
                f"{c.oscillation.period:.1f}",
                f"{c.oscillation.amplitude:.3f}",
                f"{c.oscillation.strength:.2f}",
                f"{r.rmse_by_L[L]:.3f}",
                f"{r.shift_by_L[L]:+.1f}",
            )
        )
    lines = [
        "Fig. 9 - L-PNDCA with five chunks: the effect of L (Pt(100) model)",
        "",
        format_table(
            ["curve", "period", "amplitude", "strength", "rmse vs RSM", "time shift"],
            body,
        ),
        "",
        f"null RSM-vs-RSM rmse: {r.null_rmse:.3f}",
        f"L=1 statistically matches RSM: {r.small_L_matches}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(fig9_report())
