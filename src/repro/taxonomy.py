"""A taxonomy of the implemented simulation algorithms.

The paper cites Segers' taxonomy of no fewer than 48 DMC algorithm
variants; this module provides the reproduction's own organised view:
one descriptor per implemented algorithm with its classification
(exact DMC vs approximate CA), parallelism story and parameters, plus
a uniform factory so that experiment scripts can be written
algorithm-agnostically::

    from repro.taxonomy import make_simulator, list_algorithms

    sim = make_simulator("pndca", model, lattice, seed=1,
                         partition=my_partition, strategy="ordered")

Descriptors double as documentation: ``describe_all()`` renders the
comparison table of the method landscape the paper walks through in
sections 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ca import LPNDCA, NDCA, PNDCA, SynchronousCA, TypePartitionedCA
from .core.lattice import Lattice
from .core.model import Model
from .dmc import FRM, RSM, VSSM
from .dmc.base import SimulatorBase
from .io.report import format_table
from .parallel.domain import DomainDecomposedRSM

__all__ = [
    "AlgorithmInfo",
    "REGISTRY",
    "ENSEMBLE_REGISTRY",
    "list_algorithms",
    "make_simulator",
    "make_ensemble",
    "describe_all",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata describing one simulation algorithm."""

    key: str
    cls: type
    family: str          # "DMC" | "CA"
    exact: bool          # simulates the Master Equation exactly
    parallel: str        # the parallelism story, one phrase
    paper_section: str   # where the paper treats it
    notes: str

    def make(self, model: Model, lattice: Lattice, **kwargs) -> SimulatorBase:
        """Construct this algorithm's simulator (kwargs passed through)."""
        return self.cls(model, lattice, **kwargs)


REGISTRY: dict[str, AlgorithmInfo] = {
    info.key: info
    for info in [
        AlgorithmInfo(
            key="rsm",
            cls=RSM,
            family="DMC",
            exact=True,
            parallel="none (sequential trials)",
            paper_section="3",
            notes="Random Selection Method; the paper's reference algorithm",
        ),
        AlgorithmInfo(
            key="vssm",
            cls=VSSM,
            family="DMC",
            exact=True,
            parallel="none",
            paper_section="3 (taxonomy)",
            notes="Variable Step Size / Gillespie direct; rejection-free",
        ),
        AlgorithmInfo(
            key="frm",
            cls=FRM,
            family="DMC",
            exact=True,
            parallel="none",
            paper_section="3 (taxonomy)",
            notes="First Reaction Method; heap of tentative times",
        ),
        AlgorithmInfo(
            key="ndca",
            cls=NDCA,
            family="CA",
            exact=False,
            parallel="conceptually all sites; conflicts force sequential sweep",
            paper_section="4",
            notes="one rate-weighted trial per site per step; biased for "
            "ki/K ~ 1 and transport-sensitive models",
        ),
        AlgorithmInfo(
            key="sync-ca",
            cls=SynchronousCA,
            family="CA",
            exact=False,
            parallel="fully synchronous, but ill-defined under conflicts",
            paper_section="4 (Fig. 2)",
            notes="naive synchronous update with conflict detection; "
            "demonstrates why partitions are needed",
        ),
        AlgorithmInfo(
            key="pndca",
            cls=PNDCA,
            family="CA",
            exact=False,
            parallel="all sites of a conflict-free chunk simultaneously",
            paper_section="5",
            notes="the paper's central algorithm; 4 chunk-selection strategies",
        ),
        AlgorithmInfo(
            key="lpndca",
            cls=LPNDCA,
            family="CA",
            exact=False,
            parallel="chunk-simultaneous; L interpolates to exact RSM",
            paper_section="5",
            notes="general parameterised family; m=1/L=N and m=N/L=1 are RSM",
        ),
        AlgorithmInfo(
            key="typepart",
            cls=TypePartitionedCA,
            family="CA",
            exact=False,
            parallel="half the lattice per sweep (2-chunk checkerboard)",
            paper_section="5 (Table II, Fig. 6)",
            notes="partitions Omega x T; Kortluke-style mass application "
            "of one oriented type",
        ),
        AlgorithmInfo(
            key="dd-rsm",
            cls=DomainDecomposedRSM,
            family="DMC",
            exact=False,
            parallel="contiguous strips with halo exchange (Segers)",
            paper_section="3 (prior work)",
            notes="the comparison point: boundary communication scales "
            "with strip perimeter",
        ),
    ]
}


def list_algorithms() -> list[str]:
    """The registered algorithm keys."""
    return sorted(REGISTRY)


#: algorithms with a stacked multi-replica (ensemble) implementation;
#: each is bit-identical per replica to the sequential class above
ENSEMBLE_REGISTRY: dict[str, type] = {}


def _fill_ensemble_registry() -> None:
    # deferred import: repro.ensemble imports kernels/partition machinery
    from .ensemble import EnsembleNDCA, EnsemblePNDCA, EnsembleRSM

    ENSEMBLE_REGISTRY.update(
        {"rsm": EnsembleRSM, "ndca": EnsembleNDCA, "pndca": EnsemblePNDCA}
    )


def make_ensemble(key: str, model: Model, lattice: Lattice, **kwargs):
    """Construct the stacked multi-replica variant of an algorithm.

    Same keys as :func:`make_simulator` for the algorithms that have an
    ensemble implementation (``rsm``, ``ndca``, ``pndca``); kwargs are
    the ensemble constructor's (``seeds`` / ``n_replicas`` + ``seed``,
    ``sample_interval``, per-algorithm knobs).
    """
    if not ENSEMBLE_REGISTRY:
        _fill_ensemble_registry()
    try:
        cls = ENSEMBLE_REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"no ensemble implementation for {key!r}; "
            f"known: {sorted(ENSEMBLE_REGISTRY)}"
        ) from None
    return cls(model, lattice, **kwargs)


def make_simulator(
    key: str, model: Model, lattice: Lattice, **kwargs
) -> SimulatorBase:
    """Construct a simulator by taxonomy key (kwargs passed through)."""
    try:
        info = REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {key!r}; known: {list_algorithms()}"
        ) from None
    return info.make(model, lattice, **kwargs)


def describe_all() -> str:
    """Render the algorithm landscape as a comparison table."""
    rows = [
        (
            info.key,
            info.family,
            "exact" if info.exact else "approx",
            info.parallel,
            info.paper_section,
        )
        for info in REGISTRY.values()
    ]
    return format_table(
        ["key", "family", "ME", "parallelism", "paper"], rows
    )
