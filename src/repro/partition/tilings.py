"""Constructive partitions: modular tilings, blocks, checkerboards, stripes.

The partitions the paper actually uses are periodic *tilings*:

* **Modular tilings** ``chunk(i, j) = (a*i + b*j) mod m`` — Fig. 4 is
  the case ``(a, b, m) = (1, 2, 5)``, the optimal 5-chunk partition for
  von-Neumann pair patterns.  :func:`find_modular_tiling` searches the
  smallest valid ``(m, a, b)`` for an arbitrary model, checking the
  non-overlap rule on the displacement difference set directly.
* **Checkerboards / stripes** — the 2-chunk partitions used by the
  reaction-type-partitioned algorithm (Fig. 6), valid when only a
  single pattern orientation is in play.
* **Block partitions** — contiguous rectangular blocks, the classic
  Block-CA / domain-decomposition partition (Fig. 3); *not* conflict
  free at the edges, provided for the BCA and the Segers-style
  comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.lattice import Lattice, Offset
from ..core.model import Model
from .partition import Partition, TilingSpec, conflict_displacements

__all__ = [
    "modular_tiling",
    "find_modular_tiling",
    "checkerboard",
    "stripes",
    "block_partition",
    "five_chunk_partition",
]


def modular_tiling(
    lattice: Lattice, m: int, coeffs: Sequence[int], name: str = ""
) -> Partition:
    """Partition by ``chunk(x) = (coeffs . x) mod m``.

    For a 2-d lattice ``coeffs = (a, b)`` gives the labelling
    ``(a*i + b*j) mod m``; Fig. 4 of the paper is ``m=5, coeffs=(1,2)``.
    For equal chunk sizes, each lattice side should be a multiple of
    ``m`` where the corresponding coefficient is coprime with ``m``;
    unequal sizes are allowed (sizes are whatever the labelling gives)
    but the non-overlap rule may then fail at the wrap — always
    validate against the model.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if len(coeffs) != lattice.ndim:
        raise ValueError("one coefficient per lattice axis required")
    grids = np.meshgrid(
        *(np.arange(s, dtype=np.intp) for s in lattice.shape), indexing="ij"
    )
    lab = np.zeros(lattice.shape, dtype=np.intp)
    for g, c in zip(grids, coeffs):
        lab += int(c) * g
    lab %= m
    p = Partition.from_labels(
        lattice, lab, name=name or f"modular(m={m}, coeffs={tuple(coeffs)})"
    )
    # construction metadata: makes the partition eligible for the
    # symbolic race detector (repro.lint), which proves/refutes the
    # non-overlap rule by residue arithmetic instead of a site scan
    p.tiling = TilingSpec(m, tuple(int(c) for c in coeffs))
    return p


def _tiling_is_conflict_free(
    displacements: list[Offset], m: int, coeffs: Sequence[int]
) -> bool:
    """Does the modular labelling separate all conflicting displacements?

    Sites ``s`` and ``s + d`` get different labels iff
    ``(coeffs . d) mod m != 0`` — an infinite-lattice criterion,
    independent of lattice size (finite lattices additionally need
    sides compatible with the tiling; validated separately).
    """
    for d in displacements:
        if sum(c * x for c, x in zip(coeffs, d)) % m == 0:
            return False
    return True


def find_modular_tiling(
    model: Model, max_m: int = 64
) -> tuple[int, tuple[int, ...]]:
    """Smallest modular tiling ``(m, coeffs)`` that is conflict-free.

    Searches ``m`` upward from 2 and coefficients in ``[0, m)``; the
    first hit is returned.  For the CO-oxidation model this finds
    ``m = 5`` (the paper's Fig. 4 optimum).  Raises ``ValueError`` if
    nothing is found up to ``max_m``.
    """
    displacements = conflict_displacements(model.union_neighborhood())
    ndim = model.ndim
    for m in range(2, max_m + 1):
        coeffs_list: list[tuple[int, ...]]
        if ndim == 1:
            coeffs_list = [(a,) for a in range(1, m)]
        else:
            coeffs_list = [(a, b) for a in range(m) for b in range(m) if a or b]
        for coeffs in coeffs_list:
            if _tiling_is_conflict_free(displacements, m, coeffs):
                return m, coeffs
    raise ValueError(f"no conflict-free modular tiling with m <= {max_m}")


def five_chunk_partition(lattice: Lattice) -> Partition:
    """The paper's Fig. 4 partition: ``(i + 2j) mod 5`` on a 2-d lattice.

    Optimal (5 chunks, matching the clique lower bound) for any model
    whose patterns are anchors plus nearest-neighbour sites (von
    Neumann).  Lattice sides should be multiples of 5 for equal chunks
    and a clean wrap.
    """
    if lattice.ndim != 2:
        raise ValueError("the five-chunk partition is 2-d")
    return modular_tiling(lattice, 5, (1, 2), name="five-chunk (Fig. 4)")


def five_chunk_family(lattice: Lattice) -> list[Partition]:
    """All four inequivalent optimal 5-chunk tilings for pair patterns.

    ``(i + 2j)``, ``(2i + j)``, ``(i + 3j)`` and ``(3i + j)`` mod 5 are
    pairwise different partitions (different same-chunk displacement
    lattices), each conflict-free for von-Neumann pair patterns.
    Feeding the family to :class:`~repro.ca.pndca.PNDCA` with a
    partition schedule alternates the tiling between steps — the
    paper's "choose a partition P" — washing out the anisotropic
    correlations a single fixed tiling would imprint.
    """
    if lattice.ndim != 2:
        raise ValueError("the five-chunk family is 2-d")
    return [
        modular_tiling(lattice, 5, coeffs, name=f"five-chunk{coeffs}")
        for coeffs in ((1, 2), (2, 1), (1, 3), (3, 1))
    ]


def checkerboard(lattice: Lattice, name: str = "checkerboard") -> Partition:
    """Two chunks by parity ``(i + j) mod 2`` (the Fig. 6 partition).

    Conflict-free for any *single* nearest-neighbour pair orientation
    (and trivially for single-site patterns) — the partition used per
    reaction-type subset by the type-partitioned algorithm.  Both
    lattice sides must be even for a clean periodic wrap.
    """
    if lattice.ndim == 1:
        return modular_tiling(lattice, 2, (1,), name=name)
    return modular_tiling(lattice, 2, (1, 1), name=name)


def stripes(lattice: Lattice, axis: int, m: int = 2) -> Partition:
    """Chunks by coordinate parity along one axis (``coord mod m``).

    ``stripes(lat, axis=1, m=2)`` = even/odd columns: conflict-free for
    horizontal pair patterns.
    """
    if not 0 <= axis < lattice.ndim:
        raise ValueError(f"axis {axis} out of range")
    coeffs = [0] * lattice.ndim
    coeffs[axis] = 1
    return modular_tiling(lattice, m, coeffs, name=f"stripes(axis={axis}, m={m})")


def block_partition(lattice: Lattice, block_shape: Sequence[int], shift: Sequence[int] | None = None) -> Partition:
    """Contiguous rectangular blocks (the Block-CA partition of Fig. 3).

    Every lattice side must be divisible by the corresponding block
    side.  ``shift`` displaces all block boundaries periodically (the
    BCA alternates between shifted partitions between steps).  The
    result is generally *not* conflict-free — neighbouring sites on two
    sides of a block edge conflict; it exists for the BCA and for
    domain decomposition, where edge effects are handled explicitly.
    """
    block_shape = tuple(int(b) for b in block_shape)
    if len(block_shape) != lattice.ndim:
        raise ValueError("block shape must match lattice dimensionality")
    if any(b < 1 for b in block_shape):
        raise ValueError(f"invalid block shape {block_shape}")
    if any(s % b for s, b in zip(lattice.shape, block_shape)):
        raise ValueError(
            f"lattice {lattice.shape} not divisible into blocks {block_shape}"
        )
    if shift is None:
        shift = (0,) * lattice.ndim
    grids = np.meshgrid(
        *(np.arange(s, dtype=np.intp) for s in lattice.shape), indexing="ij"
    )
    lab = np.zeros(lattice.shape, dtype=np.intp)
    for g, b, s, sh in zip(grids, block_shape, lattice.shape, shift):
        blocks_along = s // b
        lab = lab * blocks_along + ((g - sh) % s) // b
    return Partition.from_labels(
        lattice, lab, name=f"blocks{block_shape}+shift{tuple(shift)}"
    )
