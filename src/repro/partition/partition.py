"""Partitions of the lattice into conflict-free chunks.

A *partition* ``P`` (paper, section 5) is a collection of disjoint
subsets of the lattice — *chunks* ``P_i`` — that together cover all of
``Omega``.  The generalisation beyond contiguous blocks is the paper's
key move: chunks may contain *non-adjacent* sites, chosen so that
reactions anchored at distinct sites of the same chunk can never
conflict:

    for all s != t in P_i and all reaction types Rt, Rt':
        Nb_Rt(s)  ∩  Nb_Rt'(t)  =  ∅            (the non-overlap rule)

All sites of a chunk can then be simulated simultaneously.  Since the
degree of parallelism is ``~N/|P|``, one wants as *few* chunks as
possible (see :mod:`repro.partition.coloring` for optimality bounds
and :mod:`repro.partition.tilings` for the constructions used in the
paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..core.lattice import Lattice, Offset
from ..core.model import Model

if TYPE_CHECKING:  # pragma: no cover
    from ..lint.offsets import Conflict

__all__ = ["Partition", "TilingSpec", "conflict_displacements"]


@dataclass(frozen=True)
class TilingSpec:
    """Construction metadata of a modular tiling partition.

    Chunk membership is the residue class ``(coeffs . x) mod m`` of the
    site coordinates.  Partitions carrying this metadata (attached by
    :func:`repro.partition.tilings.modular_tiling`) are eligible for
    the *symbolic* race detector of :mod:`repro.lint.partition_lint`,
    which decides conflict-freedom by residue arithmetic instead of
    enumerating lattice sites.
    """

    m: int
    coeffs: tuple[int, ...]


def conflict_displacements(
    neighborhood: Iterable[Offset],
) -> list[Offset]:
    """Displacements ``d != 0`` such that sites ``s`` and ``s + d`` conflict.

    Two sites conflict precisely when their (union) neighborhoods
    intersect: ``(s + a) == (t + b)`` for offsets ``a, b`` in the
    neighborhood, i.e. ``t - s  in  { a - b }``.  The returned list is
    the difference set of the neighborhood, without the zero vector.
    """
    offs = [tuple(o) for o in neighborhood]
    if not offs:
        raise ValueError("empty neighborhood")
    out: set[Offset] = set()
    for a in offs:
        for b in offs:
            d = tuple(x - y for x, y in zip(a, b))
            if any(d):
                out.add(d)
    return sorted(out)


class Partition:
    """A partition of the lattice sites into chunks.

    Parameters
    ----------
    lattice:
        The lattice being partitioned.
    chunks:
        Sequence of flat-index arrays.  They must be disjoint and cover
        the lattice (validated on construction).
    name:
        Optional label for reports.

    Attributes
    ----------
    m:
        Number of chunks, the paper's ``|P|``.
    conflict_free_for:
        Set of model names this partition has been *validated*
        conflict-free for (see :meth:`validate_conflict_free`).
        Simulators use :meth:`is_conflict_free` to decide between the
        simultaneous (vectorised / parallel) and the sequential kernel.
    """

    def __init__(self, lattice: Lattice, chunks: Sequence[np.ndarray], name: str = ""):
        self.lattice = lattice
        self.chunks: list[np.ndarray] = []
        total = 0
        for c in chunks:
            arr = np.asarray(c, dtype=np.intp).ravel()
            arr = np.sort(arr)
            arr.setflags(write=False)
            self.chunks.append(arr)
            total += arr.size
        if total != lattice.n_sites:
            raise ValueError(
                f"chunks contain {total} sites, lattice has {lattice.n_sites}"
            )
        seen = np.concatenate(self.chunks) if self.chunks else np.empty(0, np.intp)
        uniq = np.unique(seen)
        if uniq.size != lattice.n_sites or (uniq.size and (uniq[0] != 0 or uniq[-1] != lattice.n_sites - 1)):
            raise ValueError("chunks are not disjoint or do not cover the lattice")
        if any(c.size == 0 for c in self.chunks):
            raise ValueError("empty chunks are not allowed")
        self.name = name or f"partition(m={len(self.chunks)})"
        self.conflict_free_for: set[str] = set()
        #: modular-tiling construction metadata, when known (enables the
        #: symbolic race detector of repro.lint)
        self.tiling: TilingSpec | None = None

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of chunks ``|P|``."""
        return len(self.chunks)

    @property
    def sizes(self) -> np.ndarray:
        """Chunk sizes ``|P_i|``."""
        return np.array([c.size for c in self.chunks], dtype=np.intp)

    def __len__(self) -> int:
        return len(self.chunks)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.chunks[i]

    def __repr__(self) -> str:
        return f"Partition({self.name!r}, m={self.m}, lattice={self.lattice!r})"

    def chunk_of(self) -> np.ndarray:
        """Per-site chunk label (length ``N`` array)."""
        lab = np.empty(self.lattice.n_sites, dtype=np.intp)
        for i, c in enumerate(self.chunks):
            lab[c] = i
        return lab

    def grid_labels(self) -> np.ndarray:
        """Chunk labels reshaped to the lattice (for rendering Fig. 4)."""
        return self.lattice.as_grid(self.chunk_of())

    # ------------------------------------------------------------------
    # the non-overlap rule
    # ------------------------------------------------------------------
    def find_conflicts(self, model: Model, limit: int = 16) -> "list[Conflict]":
        """All non-overlap-rule violations, as attributed counterexamples.

        Returns at most ``limit`` :class:`~repro.lint.offsets.Conflict`
        records, each naming the site pair, the chunk, the reaction pair
        anchored there and the overlapping lattice cell; an empty list
        means the partition is conflict-free for the model.

        Partitions carrying :class:`TilingSpec` metadata delegate to the
        *symbolic* detector (residue + borrow analysis, ``O(|D|)``
        arithmetic); explicit partitions fall back to the vectorised
        per-site scan (``O(N * |D|)``).  Either way each unordered site
        pair is reported once.

        A violation found here surfaces through the lint layer as
        ``SR003`` (or ``SR001``/``SR002`` for tiling-level conflicts);
        the full ``SR001``..``SR051`` registry lives in
        :data:`repro.lint.diagnostics.CODES` and is printed by
        ``python -m repro lint --list-codes``.  The kernel-level
        complement — proving the *kernels* cannot reintroduce a race
        through aliasing scatters — is ``SR040``/``SR041`` in
        :mod:`repro.lint.kernel_lint`.
        """
        from ..lint.offsets import Conflict, conflict_witnesses

        lat = self.lattice
        if self.tiling is not None:
            from ..lint.partition_lint import tiling_conflicts_on_shape

            labels = self.chunk_of()
            out = []
            for c in tiling_conflicts_on_shape(
                model, self.tiling.m, self.tiling.coeffs, lat.shape, limit=limit
            ):
                # the symbolic detector reports the residue class; remap
                # to this partition's actual chunk index
                chunk = int(labels[lat.flat_index(c.site_s)])
                out.append(
                    Conflict(
                        site_s=c.site_s,
                        site_t=c.site_t,
                        chunk=chunk,
                        displacement=c.displacement,
                        reaction_a=c.reaction_a,
                        offset_a=c.offset_a,
                        reaction_b=c.reaction_b,
                        offset_b=c.offset_b,
                        cell=c.cell,
                    )
                )
            return out

        witnesses = conflict_witnesses(model)
        labels = self.chunk_of()
        out = []
        seen_pairs: set[frozenset[int]] = set()
        for d in sorted(witnesses):
            nbr = lat.neighbor_map(d)
            clash = labels == labels[nbr]
            for s in np.flatnonzero(clash):
                s = int(s)
                t = int(nbr[s])
                if s == t:
                    # the displacement wraps onto the site itself
                    # (lattice smaller than twice the pattern) — not a
                    # two-site conflict
                    break
                pair = frozenset((s, t))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                w = witnesses[d]
                site_s = lat.coords(s)
                cell = lat.wrap(tuple(x + a for x, a in zip(site_s, w.offset_a)))
                out.append(
                    Conflict(
                        site_s=site_s,
                        site_t=lat.coords(t),
                        chunk=int(labels[s]),
                        displacement=d,
                        reaction_a=w.reaction_a,
                        offset_a=w.offset_a,
                        reaction_b=w.reaction_b,
                        offset_b=w.offset_b,
                        cell=cell,
                    )
                )
                if len(out) >= limit:
                    return out
        return out

    def check_conflict_free(self, model: Model) -> tuple[bool, str]:
        """Check the non-overlap rule for a model; returns (ok, reason).

        On failure the reason lists *all* conflicts found up to a
        bounded report (16 counterexamples), each naming the site pair,
        the reaction pair and the overlapping cell — not just the first
        offending displacement.  Tiling-backed partitions are decided
        symbolically (no site enumeration); explicit partitions cost
        ``O(N * |D|)`` where ``|D|`` is the displacement difference set.

        The lint-layer equivalent is diagnostic code ``SR003`` (see
        :data:`repro.lint.diagnostics.CODES` for the complete
        ``SR001``..``SR051`` registry and ``python -m repro lint
        --list-codes`` to print it).
        """
        conflicts = self.find_conflicts(model, limit=16)
        if not conflicts:
            return True, "ok"
        lines = [c.describe() for c in conflicts]
        suffix = "" if len(conflicts) < 16 else " (report truncated at 16)"
        return False, f"{len(conflicts)} conflict(s){suffix}: " + "; ".join(lines)

    def validate_conflict_free(self, model: Model) -> "Partition":
        """Assert the non-overlap rule holds; marks the partition validated.

        Raises ``ValueError`` with the first offending site pair
        otherwise.  Returns self for chaining.
        """
        ok, reason = self.check_conflict_free(model)
        if not ok:
            raise ValueError(f"{self!r} violates the non-overlap rule: {reason}")
        self.conflict_free_for.add(model.name)
        return self

    def is_conflict_free(self, model: Model) -> bool:
        """Has this partition been validated conflict-free for the model?"""
        return model.name in self.conflict_free_for

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_chunk(cls, lattice: Lattice) -> "Partition":
        """The trivial partition ``m = 1`` (whole lattice in one chunk).

        Not conflict-free for any model with multi-site patterns; used
        for the L-PNDCA limit that reduces to RSM.
        """
        return cls(lattice, [lattice.all_flat()], name="single-chunk")

    @classmethod
    def singletons(cls, lattice: Lattice) -> "Partition":
        """The finest partition ``m = N`` (one site per chunk).

        Trivially conflict-free (chunks have no site pairs); the other
        L-PNDCA limit that reduces to RSM.
        """
        p = cls(
            lattice,
            list(np.arange(lattice.n_sites, dtype=np.intp).reshape(-1, 1)),
            name="singletons",
        )
        return p

    @classmethod
    def from_labels(cls, lattice: Lattice, labels: np.ndarray, name: str = "") -> "Partition":
        """Build from a per-site integer label array (flat or grid shaped)."""
        lab = np.asarray(labels).ravel()
        if lab.size != lattice.n_sites:
            raise ValueError("label array does not match the lattice")
        values = np.unique(lab)
        chunks = [np.flatnonzero(lab == v) for v in values]
        return cls(lattice, chunks, name=name)
