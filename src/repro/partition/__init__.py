"""Partition machinery: conflict-free chunks, colouring, tilings, type splits."""

from .coloring import (
    chunk_count_bounds,
    clique_lower_bound,
    conflict_graph,
    greedy_partition,
)
from .partition import Partition, conflict_displacements
from .tilings import (
    block_partition,
    checkerboard,
    find_modular_tiling,
    five_chunk_family,
    five_chunk_partition,
    modular_tiling,
    stripes,
)
from .typesplit import TypeSplit, TypeSubset, split_by_orientation

__all__ = [
    "Partition",
    "conflict_displacements",
    "conflict_graph",
    "greedy_partition",
    "clique_lower_bound",
    "chunk_count_bounds",
    "modular_tiling",
    "find_modular_tiling",
    "five_chunk_partition",
    "five_chunk_family",
    "checkerboard",
    "stripes",
    "block_partition",
    "TypeSplit",
    "TypeSubset",
    "split_by_orientation",
]
