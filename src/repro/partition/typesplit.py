"""Partitioning the reaction-type set ``T`` (Table II of the paper).

The second partitioning approach of section 5 partitions the product
``Omega x T``: the reaction types are split into subsets ``T_j`` whose
patterns fit a *single pair orientation* (up to translation and
reversal), so that the non-overlap rule only has to hold per subset.
A 2-chunk checkerboard site partition then suffices for each ``T_j``
(instead of the 5 chunks required for the union neighborhood), at the
price of less work per chunk.

For the CO-oxidation model this reproduces Table II:

    T0 = { CO+O(0), CO+O(2), O2(0), CO }     (x-axis pairs + on-site)
    T1 = { CO+O(1), CO+O(3), O2(1) }          (y-axis pairs)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.lattice import Offset
from ..core.model import Model
from ..core.rates import selection_table

__all__ = ["TypeSubset", "TypeSplit", "split_by_orientation"]


@dataclass(frozen=True)
class TypeSubset:
    """One subset ``T_j``: reaction-type indices plus selection tables."""

    index: int
    axis_key: Offset
    type_indices: tuple[int, ...]
    rates: np.ndarray
    total_rate: float
    cum: np.ndarray

    def __len__(self) -> int:
        return len(self.type_indices)


class TypeSplit:
    """A partition ``T = sum_j T_j`` of a model's reaction types.

    Attributes
    ----------
    subsets:
        The ``T_j`` in construction order.
    subset_cum:
        Cumulative table selecting subset ``j`` with probability
        ``K_Tj / K`` (the algorithm's outer selection).
    """

    def __init__(self, model: Model, groups: list[tuple[Offset, list[int]]]):
        flat = [i for _, idxs in groups for i in idxs]
        if sorted(flat) != list(range(model.n_types)):
            raise ValueError("type subsets must partition the reaction-type set")
        self.model = model
        self.subsets: list[TypeSubset] = []
        for j, (key, idxs) in enumerate(groups):
            rates = np.array(
                [model.reaction_types[i].rate for i in idxs], dtype=np.float64
            )
            cum, total = selection_table(rates)
            self.subsets.append(
                TypeSubset(j, key, tuple(idxs), rates, total, cum)
            )
        totals = np.array([s.total_rate for s in self.subsets])
        self.subset_cum, self.total_rate = selection_table(totals)

    @property
    def n_subsets(self) -> int:
        """Number of subsets |T|."""
        return len(self.subsets)

    def __len__(self) -> int:
        return len(self.subsets)

    def __getitem__(self, j: int) -> TypeSubset:
        return self.subsets[j]

    def describe(self) -> str:
        """Render the split in the style of Table II."""
        lines = [f"type split of {self.model.name!r} into {self.n_subsets} subsets:"]
        for s in self.subsets:
            names = [self.model.reaction_types[i].name for i in s.type_indices]
            lines.append(
                f"  T{s.index} (axis {s.axis_key}, K_T={s.total_rate:g}): "
                + ", ".join(names)
            )
        return "\n".join(lines)


def _pair_axis(model: Model, type_index: int) -> Offset | None:
    """Canonical pair direction of a reaction type, or None for on-site.

    Two-site patterns ``{s, s + v}`` map to the canonical
    representative of ``{v, -v}`` (lexicographically non-negative).
    Raises for patterns with three or more sites — those do not fit the
    single-pair framework of Table II.
    """
    rt = model.reaction_types[type_index]
    offsets = [o for o in rt.neighborhood if any(o)]
    if not offsets:
        return None
    if len(offsets) > 1:
        raise ValueError(
            f"reaction type {rt.name!r} touches {len(offsets) + 1} sites; "
            "orientation splitting only applies to patterns of at most two sites"
        )
    v = offsets[0]
    neg = tuple(-x for x in v)
    return max(v, neg)  # canonical up to reversal


def split_by_orientation(model: Model) -> TypeSplit:
    """Split ``T`` into subsets of a single pair orientation each.

    Pair reaction types are grouped by their canonical pair axis;
    on-site (single-site) reaction types conflict with nothing and are
    appended to the first subset (matching the paper, which puts
    ``Rt_CO`` into ``T0``).  Subset order follows first appearance of
    each axis in the model's type order.
    """
    buckets: dict[Offset, list[int]] = {}
    onsite: list[int] = []
    order: list[Offset] = []
    for i in range(model.n_types):
        key = _pair_axis(model, i)
        if key is None:
            onsite.append(i)
            continue
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(i)
    groups: list[tuple[Offset, list[int]]] = []
    if not order:
        # purely on-site model: a single subset
        zero = (0,) * model.ndim
        groups.append((zero, onsite))
    else:
        for n, key in enumerate(order):
            idxs = list(buckets[key])
            if n == 0:
                idxs += onsite
            groups.append((key, idxs))
    return TypeSplit(model, groups)
