"""Conflict graphs and graph-colouring construction of partitions.

The non-overlap rule induces a *conflict graph* on the lattice sites:
``s ~ t`` iff some pair of reaction types anchored at ``s`` and ``t``
touches a common site (equivalently ``t - s`` lies in the difference
set of the union neighborhood).  A partition into conflict-free chunks
is exactly a proper colouring of this graph, and minimising the number
of chunks ``|P|`` is graph colouring — NP-hard in general, but the
translation-invariant structure makes good colourings easy:

* greedy colouring (via ``networkx``) gives an upper bound and a
  usable partition for *any* model;
* the maximum clique through a site gives a lower bound on ``|P|``
  (for the von-Neumann pair neighborhood of the CO-oxidation model the
  bound is 5, met by the modular tiling of Fig. 4 — see
  :mod:`repro.partition.tilings`).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.lattice import Lattice, Offset
from ..core.model import Model
from .partition import Partition, conflict_displacements

__all__ = [
    "conflict_graph",
    "greedy_partition",
    "clique_lower_bound",
    "chunk_count_bounds",
]


def conflict_graph(lattice: Lattice, model: Model) -> nx.Graph:
    """The conflict graph of a model on a lattice.

    Nodes are flat site indices; edges connect conflicting site pairs.
    Size is ``O(N * |D|)`` edges — fine for the lattice sizes used to
    *construct* partitions (a partition found on a small tile is then
    replicated, see :func:`repro.partition.tilings.tile_partition`).
    """
    g = nx.Graph()
    g.add_nodes_from(range(lattice.n_sites))
    displacements = conflict_displacements(model.union_neighborhood())
    base = lattice.all_flat()
    for d in displacements:
        targets = lattice.neighbor_map(d)
        mask = targets != base  # ignore self-wraps on tiny lattices
        g.add_edges_from(zip(base[mask].tolist(), targets[mask].tolist()))
    return g


def greedy_partition(
    lattice: Lattice,
    model: Model,
    strategy: str = "largest_first",
    validate: bool = True,
) -> Partition:
    """Partition from a greedy colouring of the conflict graph.

    ``strategy`` is any ``networkx.greedy_color`` strategy.  The result
    is validated conflict-free (unless ``validate=False``) and labelled
    with the strategy used.
    """
    g = conflict_graph(lattice, model)
    colors = nx.greedy_color(g, strategy=strategy)
    labels = np.empty(lattice.n_sites, dtype=np.intp)
    for node, c in colors.items():
        labels[node] = c
    p = Partition.from_labels(lattice, labels, name=f"greedy-{strategy}")
    if validate:
        p.validate_conflict_free(model)
    return p


def clique_lower_bound(model: Model) -> int:
    """A lower bound on the number of chunks of any conflict-free partition.

    Builds the conflict graph restricted to a neighbourhood ball around
    one site (the graph is vertex-transitive, so any maximum clique
    appears there) and returns the size of the largest clique found by
    ``networkx.find_cliques`` on that ball.  Since all sites of a
    clique must lie in pairwise-different chunks, ``|P| >= clique``.
    """
    displacements = conflict_displacements(model.union_neighborhood())
    if not displacements:
        return 1
    ndim = len(displacements[0])
    # radius of the ball: max displacement magnitude per axis
    radius = [max(abs(d[a]) for d in displacements) for a in range(ndim)]
    # enumerate lattice points in the ball around the origin
    ranges = [range(-r, r + 1) for r in radius]
    points: list[Offset] = []

    def _walk(prefix: tuple[int, ...], axis: int) -> None:
        if axis == ndim:
            points.append(prefix)
            return
        for v in ranges[axis]:
            _walk(prefix + (v,), axis + 1)

    _walk((), 0)
    dset = set(displacements)
    g = nx.Graph()
    g.add_nodes_from(points)
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            if tuple(x - y for x, y in zip(b, a)) in dset:
                g.add_edge(a, b)
    best = 1
    for clique in nx.find_cliques(g):
        if len(clique) > best:
            best = len(clique)
    return best


def chunk_count_bounds(lattice: Lattice, model: Model) -> tuple[int, int]:
    """(lower, upper) bounds on the minimal ``|P|`` for a model.

    Lower bound from :func:`clique_lower_bound`; upper bound from the
    greedy colouring on the given lattice.
    """
    lower = clique_lower_bound(model)
    upper = greedy_partition(lattice, model, validate=False).m
    return lower, max(lower, upper)
