"""Time-lapse rendering of configuration snapshots.

Turns the output of a :class:`~repro.dmc.base.SnapshotObserver` into
ASCII frames — the quickest way to *see* what a simulation did
(poisoning fronts invading the ZGB lattice, hex/1x1 phase waves on
Pt(100)) without any plotting dependency.  Frames are plain strings;
:func:`side_by_side` arranges a few of them horizontally for compact
reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.lattice import Lattice
from ..core.species import SpeciesRegistry

__all__ = ["render_frames", "side_by_side", "default_symbols"]


def default_symbols(species: SpeciesRegistry) -> dict[str, str]:
    """One display character per species (``"*"`` renders as ``"."``)."""
    out = {}
    used: set[str] = set()
    for name in species.names:
        ch = "." if name == "*" else name[0]
        if ch in used:  # fall back to uppercase/lowercase variants
            alt = ch.swapcase()
            ch = alt if alt not in used else next(
                c for c in "0123456789#@%&+=?" if c not in used
            )
        used.add(ch)
        out[name] = ch
    return out


def render_frames(
    lattice: Lattice,
    species: SpeciesRegistry,
    snapshots: np.ndarray,
    times: Sequence[float] | None = None,
    symbols: Mapping[str, str] | None = None,
    max_frames: int = 6,
) -> list[str]:
    """Render snapshots (``(n, N)`` codes) into labelled ASCII frames.

    At most ``max_frames`` frames are kept (evenly spaced through the
    trajectory).  Each frame is headed by its simulation time when
    ``times`` is given.
    """
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 2 or snapshots.shape[1] != lattice.n_sites:
        raise ValueError(
            f"snapshots must have shape (n, {lattice.n_sites}), got {snapshots.shape}"
        )
    if times is not None and len(times) != len(snapshots):
        raise ValueError("times and snapshots must have equal length")
    syms = dict(symbols) if symbols is not None else default_symbols(species)
    table = {species.code(n): syms[n] for n in species.names}
    n = len(snapshots)
    keep = np.unique(np.linspace(0, n - 1, min(max_frames, n)).astype(int))
    frames = []
    for i in keep:
        grid = (
            lattice.as_grid(snapshots[i])
            if lattice.ndim == 2
            else snapshots[i].reshape(1, -1)
        )
        body = "\n".join(
            "".join(table[int(v)] for v in row) for row in grid
        )
        header = f"t = {times[i]:g}" if times is not None else f"frame {i}"
        frames.append(header + "\n" + body)
    return frames


def side_by_side(frames: Sequence[str], gap: str = "   ") -> str:
    """Arrange rendered frames horizontally (pad to equal height)."""
    if not frames:
        return ""
    split = [f.splitlines() for f in frames]
    height = max(len(s) for s in split)
    widths = [max((len(line) for line in s), default=0) for s in split]
    rows = []
    for r in range(height):
        cells = [
            (s[r] if r < len(s) else "").ljust(w)
            for s, w in zip(split, widths)
        ]
        rows.append(gap.join(cells).rstrip())
    return "\n".join(rows)
