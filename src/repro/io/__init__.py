"""I/O helpers: result archives, plain-text reports, ASCII time-lapses."""

from .animation import default_symbols, render_frames, side_by_side
from .report import format_series, format_surface, format_table
from .trace import load_result_data, save_result

__all__ = [
    "save_result",
    "load_result_data",
    "format_table",
    "format_series",
    "format_surface",
    "render_frames",
    "side_by_side",
    "default_symbols",
]
