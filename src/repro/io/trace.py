"""Saving and loading simulation results (npz archives).

Long runs (the Fig. 8-10 curves) are expensive; persisting their
sampled coverages and event traces lets benches and notebooks reload
instead of re-simulating.  The format is a flat ``numpy.savez``
archive with a small JSON header — no pickle, so archives are
portable and safe to share.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.events import EventTrace
from ..dmc.base import SimulationResult

__all__ = ["save_result", "load_result_data"]

_FORMAT_VERSION = 1


def save_result(path: str | Path, result: SimulationResult) -> Path:
    """Write a result's metadata, coverage series and events to ``path``.

    The final configuration array is stored as well; the lattice /
    species objects are not (reconstruct them from the model when
    needed).
    """
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "model_name": result.model_name,
        "lattice_shape": list(result.lattice_shape),
        "seed": result.seed,
        "final_time": result.final_time,
        "n_trials": result.n_trials,
        "n_executed": result.n_executed,
        "wall_time": result.wall_time,
        "coverage_species": list(result.coverage),
    }
    payload: dict[str, np.ndarray] = {
        "header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        "times": result.times,
        "executed_per_type": result.executed_per_type,
        "final_state": result.final_state.array,
    }
    for name, series in result.coverage.items():
        payload[f"coverage/{name}"] = series
    if result.events is not None:
        payload["events/times"] = result.events.times
        payload["events/types"] = result.events.type_indices
        payload["events/sites"] = result.events.sites
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_result_data(path: str | Path) -> dict:
    """Load an archive written by :func:`save_result`.

    Returns a plain dict: the header fields plus ``times``,
    ``coverage`` (dict of arrays), ``executed_per_type``,
    ``final_state`` (flat codes) and optionally ``events`` (an
    :class:`EventTrace`).
    """
    with np.load(Path(path)) as z:
        header = json.loads(bytes(z["header"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {header.get('format_version')}"
            )
        out: dict = dict(header)
        out["times"] = z["times"]
        out["executed_per_type"] = z["executed_per_type"]
        out["final_state"] = z["final_state"]
        out["coverage"] = {
            name: z[f"coverage/{name}"] for name in header["coverage_species"]
        }
        if "events/times" in z:
            trace = EventTrace(capacity=max(1, len(z["events/times"])))
            trace.extend(z["events/times"], z["events/types"], z["events/sites"])
            out["events"] = trace
    return out
