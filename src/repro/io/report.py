"""Plain-text reporting: aligned tables and time-series blocks.

All experiment drivers print their results through these helpers so
that the reproduction's tables/series look uniform (and diff cleanly
between runs).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_surface"]


def _render(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with a header rule, columns auto-width."""
    rendered = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(f"row {row} does not match headers {headers}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines += [fmt_row(r) for r in rendered]
    return "\n".join(lines)


def format_series(
    times: np.ndarray,
    series: dict[str, np.ndarray],
    max_rows: int = 40,
    time_label: str = "time",
) -> str:
    """Tabulate named time series, down-sampled to at most ``max_rows``."""
    times = np.asarray(times)
    n = len(times)
    if n == 0:
        return "(empty series)"
    stride = max(1, int(np.ceil(n / max_rows)))
    idx = np.arange(0, n, stride)
    headers = [time_label] + list(series)
    rows = [
        [times[i]] + [np.asarray(series[k])[i] for k in series] for i in idx
    ]
    return format_table(headers, rows)


def format_surface(
    row_label: str,
    rows: Sequence,
    col_label: str,
    cols: Sequence,
    surface: np.ndarray,
) -> str:
    """Tabulate a 2-d surface (e.g. the Fig. 7 speedup table)."""
    surface = np.asarray(surface)
    if surface.shape != (len(rows), len(cols)):
        raise ValueError(
            f"surface shape {surface.shape} does not match axes "
            f"({len(rows)}, {len(cols)})"
        )
    headers = [f"{row_label}\\{col_label}"] + [_render(c) for c in cols]
    body = [[r] + list(surface[i]) for i, r in enumerate(rows)]
    return format_table(headers, body)
