"""The Partitioned NDCA (PNDCA) — the paper's central algorithm.

Section 5::

    for each step
        choose a partition P;
        for all Pi in P
            for each site s in Pi
                1. select a reaction type with probability ki/K;
                2. check if the reaction is enabled at s;
                3. if it is, execute it;
                4. advance the time;

Because the partition's chunks satisfy the non-overlap rule, *all
sites of a chunk can be updated simultaneously* — the source of
parallelism.  In this package a chunk update is a single vectorised
batch (:func:`repro.core.kernels.run_trials_batch`); the
multiprocessing executor (:mod:`repro.parallel.executor`) distributes
the same batches over worker processes, and the stacked ensemble
(:class:`repro.ensemble.EnsemblePNDCA`) extends them across R
independent replicas at once.

The order in which chunks are visited matters for accuracy (it
introduces correlations in site occupancy); the paper lists four
*chunk-selection strategies*, all implemented here:

``"ordered"``
    all chunks in a predefined order (paper's option 1);
``"random-order"``
    all chunks, freshly shuffled each step (option 2; this is the
    Fig. 10 schedule);
``"random"``
    ``|P|`` independent uniform chunk draws with replacement per step —
    a chunk is selected with probability ``1/|P|`` per draw (option 3;
    some chunks may be visited twice in a step, others not at all);
``"weighted"``
    like ``"random"`` but each draw weighs chunks by the total rate of
    currently *enabled* reactions inside them (option 4; the weights
    are recomputed before every draw, which costs one enabling scan of
    the lattice per draw — accuracy at the price of throughput, see
    the strategy-ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_types
from ..dmc.base import SimulatorBase
from ..partition.partition import Partition

__all__ = ["PNDCA", "STRATEGIES"]

STRATEGIES = ("ordered", "random-order", "random", "weighted")


class PNDCA(SimulatorBase):
    """Partitioned NDCA: simultaneous conflict-free chunk updates.

    Parameters (beyond :class:`~repro.dmc.base.SimulatorBase`)
    ----------
    partition:
        A :class:`Partition` of the lattice.  If it has been validated
        conflict-free for the model, chunk updates run through the
        simultaneous vectorised kernel; otherwise they fall back to the
        sequential kernel (with a warning attribute, see
        ``uses_sequential_fallback``) — the semantics of the algorithm
        are identical either way.
    strategy:
        Chunk-selection strategy, one of :data:`STRATEGIES`.
    validate:
        When True (default), validate the partition against the model
        at construction instead of silently falling back.
    """

    algorithm = "PNDCA"

    def __init__(
        self,
        *args,
        partition: Partition | list[Partition],
        strategy: str = "random-order",
        partition_schedule: str = "cycle",
        validate: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
        partitions = [partition] if isinstance(partition, Partition) else list(partition)
        if not partitions:
            raise ValueError("need at least one partition")
        if partition_schedule not in ("cycle", "random"):
            raise ValueError(f"unknown partition schedule {partition_schedule!r}")
        if validate:
            from ..lint.engine import preflight_partition

            for p in partitions:
                if p.lattice != self.lattice:
                    raise ValueError("partition belongs to a different lattice")
                preflight_partition(p, self.model)
        else:
            for p in partitions:
                if p.lattice != self.lattice:
                    raise ValueError("partition belongs to a different lattice")
        self.partitions = partitions
        self.partition_schedule = partition_schedule
        self._step_no = 0
        self.partition = partitions[0]
        self.strategy = strategy
        self.uses_sequential_fallback = any(
            not p.is_conflict_free(self.model) for p in partitions
        )
        self.algorithm = f"PNDCA[{strategy},m={self.partition.m}]"
        if len(partitions) > 1:
            self.algorithm = (
                f"PNDCA[{strategy},m={self.partition.m},"
                f"{len(partitions)} partitions/{partition_schedule}]"
            )

    def _extra_checkpoint_state(self) -> dict:
        """The partition-cycle counter (drives the ``"cycle"`` schedule)."""
        return {"step_no": self._step_no}

    def _restore_extra(self, extra: dict) -> None:
        """Restore the partition-cycle counter."""
        self._step_no = int(extra.get("step_no", 0))

    def _choose_partition(self) -> Partition:
        """The paper's 'choose a partition P' step.

        With several partitions supplied, rotate through them
        (``"cycle"``) or pick one uniformly at random per step
        (``"random"``) — alternating partitions removes the residual
        anisotropy a single fixed tiling imprints on the correlations.
        """
        if len(self.partitions) == 1:
            return self.partitions[0]
        if self.partition_schedule == "cycle":
            p = self.partitions[self._step_no % len(self.partitions)]
        else:
            p = self.partitions[int(self.rng.integers(0, len(self.partitions)))]
        self.partition = p
        return p

    # ------------------------------------------------------------------
    def _visit_chunk(self, chunk: np.ndarray, index: int = -1) -> None:
        """One trial per site of the chunk, then advance the time."""
        comp = self.compiled
        m = self.metrics
        types = draw_types(self.rng, comp.type_cum, chunk.size)
        if m.enabled:
            executed0 = int(self.executed_per_type.sum())
            self._record_attempts(types)
        if self.uses_sequential_fallback:
            # site visiting order follows the chunk's storage order (the
            # paper's pseudo-code does not prescribe one); keeping the
            # rng consumption identical to the vectorised path makes the
            # two kernels bit-compatible on conflict-free chunks
            self.kernels.run_trials_sequential(
                self.state.array, comp, chunk, types,
                counts=self.executed_per_type,
            )
        else:
            self.kernels.run_trials_batch(
                self.state.array, comp, chunk, types,
                counts=self.executed_per_type,
            )
        self.n_trials += chunk.size
        self.time += self.time_increment(chunk.size)
        if m.enabled:
            executed = int(self.executed_per_type.sum()) - executed0
            m.inc("pndca.chunk.visits")
            m.observe("pndca.chunk.size", chunk.size)
            m.observe("pndca.chunk.occupancy", chunk.size / self.lattice.n_sites)
            if chunk.size:
                m.observe("pndca.chunk.utilisation", executed / chunk.size)
        self.tracer.on_chunk(index, chunk.size, self.time)
        self._notify()

    def _chunk_weights(self) -> np.ndarray:
        """Total enabled rate per chunk (for the weighted strategy)."""
        return np.array(
            [
                self.compiled.enabled_rate_total(self.state.array, c)
                for c in self.partition.chunks
            ]
        )

    def _step_block(self, until: float) -> int:
        p = self._choose_partition()
        self._step_no += 1
        m = p.m
        if self.strategy == "ordered":
            for i in range(m):
                self._visit_chunk(p.chunks[i], i)
        elif self.strategy == "random-order":
            for i in self.rng.permutation(m):
                self._visit_chunk(p.chunks[int(i)], int(i))
        elif self.strategy == "random":
            for _ in range(m):
                i = int(self.rng.integers(0, m))
                self._visit_chunk(p.chunks[i], i)
        else:  # weighted
            for _ in range(m):
                w = self._chunk_weights()
                total = w.sum()
                if total <= 0:
                    # nothing enabled anywhere: fall back to uniform
                    i = int(self.rng.integers(0, m))
                else:
                    i = int(self.rng.choice(m, p=w / total))
                self._visit_chunk(p.chunks[i], i)
        return self.lattice.n_sites
