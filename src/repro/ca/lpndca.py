"""L-PNDCA: the parameterised family interpolating PNDCA and RSM.

The general structure (paper, section 5, "opportunities for
improvements")::

    for each step
        choose a partition P;
        set trials to 0;
        repeat
            select Pi in P (probability |Pi|/|P|);
            select L, 1 <= L <= (N - trials);
            set trials to trials + L;
            for L sites in Pi
                1. select a reaction type with probability ki/K;
                2. check if the reaction is enabled at the site;
                3. if it is, execute it;
                4. advance the time;
        until trials = N

Sites within the selected chunk are drawn randomly *with replacement*
(matching RSM's site selection); the batched kernel handles repeated
sites through occurrence rounds, preserving exact sequential
semantics.

Two notes on the paper's notation:

* "probability |Pi|/|P|" is read as *size-proportional* selection,
  ``|Pi| / N`` (the expression as printed does not normalise); for
  equal chunks this is uniform.  ``chunk_selection="uniform"`` and
  ``"random-order"`` (every chunk exactly once per step, shuffled —
  the Fig. 10 schedule) are also available.
* ``L`` is capped at the remaining trial budget ``N - trials`` of the
  step, as in the pseudo-code.  ``L="chunk"`` uses ``L = |Pi|`` (the
  Fig. 10 parameterisation ``L = N^2/m``).

Limiting cases (paper, Fig. 8):

* ``m = 1`` (single chunk), ``L = N``: every step is N random trials
  on the whole lattice — exactly RSM.  (The single chunk is not
  conflict-free, so the sequential kernel is used automatically.)
* ``m = N`` (singletons), ``L = 1``: chunk selection = site selection
  — again exactly RSM.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_types
from ..dmc.base import SimulatorBase
from ..partition.partition import Partition

__all__ = ["LPNDCA"]

CHUNK_SELECTIONS = ("size-proportional", "uniform", "random-order", "ordered")


class LPNDCA(SimulatorBase):
    """The L-PNDCA algorithm.

    Parameters (beyond :class:`~repro.dmc.base.SimulatorBase`)
    ----------
    partition:
        The partition ``P``.  Non-conflict-free partitions (e.g. the
        single chunk) are allowed when ``require_conflict_free=False``
        and execute through the sequential kernel.
    L:
        Trials per chunk selection: a positive int, or ``"chunk"`` for
        ``L = |Pi|``.
    chunk_selection:
        ``"size-proportional"`` (default; the paper's repeat-loop),
        ``"uniform"``, ``"random-order"`` (each chunk exactly once per
        step, shuffled; Fig. 10) or ``"ordered"``.
    require_conflict_free:
        When True (default), validate the partition for the model and
        refuse otherwise; set False to allow the RSM-limit partitions.
    """

    algorithm = "L-PNDCA"

    def __init__(
        self,
        *args,
        partition: Partition,
        L: int | str = 1,
        chunk_selection: str = "size-proportional",
        require_conflict_free: bool = True,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if partition.lattice != self.lattice:
            raise ValueError("partition belongs to a different lattice")
        if chunk_selection not in CHUNK_SELECTIONS:
            raise ValueError(
                f"unknown chunk selection {chunk_selection!r}; "
                f"choose from {CHUNK_SELECTIONS}"
            )
        if isinstance(L, str):
            if L != "chunk":
                raise ValueError(f"L must be a positive int or 'chunk', got {L!r}")
        elif L < 1:
            raise ValueError(f"L must be >= 1, got {L}")
        if require_conflict_free and not partition.is_conflict_free(self.model):
            partition.validate_conflict_free(self.model)
        self.partition = partition
        self.L = L
        self.chunk_selection = chunk_selection
        self.uses_sequential_fallback = not partition.is_conflict_free(self.model)
        sizes = partition.sizes
        self._equal_sizes = bool(np.all(sizes == sizes[0]))
        self._size_cum = np.cumsum(sizes) / sizes.sum()
        # Fast path: L = 1 with size-proportional chunk selection draws,
        # per trial, a chunk with probability |Pi|/N and then a uniform
        # site inside it — i.e. a uniformly random lattice site.  The
        # whole step is then N independent single-site trials (exactly
        # RSM's selection process) and can be executed as one block
        # through the sequential kernel instead of N python-level chunk
        # visits.  Uniform selection coincides when chunks are equal.
        self._rsm_equivalent = (
            (L == 1)
            and (
                chunk_selection == "size-proportional"
                or (chunk_selection == "uniform" and self._equal_sizes)
            )
        )
        self.algorithm = f"L-PNDCA[m={partition.m},L={L},{chunk_selection}]"

    # ------------------------------------------------------------------
    def _visit(self, chunk: np.ndarray, n_trials: int, index: int = -1) -> None:
        """``n_trials`` random trials (with replacement) inside a chunk."""
        comp = self.compiled
        m = self.metrics
        if chunk.size == 1:
            sites = np.repeat(chunk, n_trials)
        else:
            sites = chunk[self.rng.integers(0, chunk.size, size=n_trials)]
        types = draw_types(self.rng, comp.type_cum, n_trials)
        if m.enabled:
            executed0 = int(self.executed_per_type.sum())
            self._record_attempts(types)
        if self.uses_sequential_fallback:
            self.kernels.run_trials_sequential(
                self.state.array, comp, sites, types, counts=self.executed_per_type
            )
        else:
            self.kernels.run_trials_batch_with_duplicates(
                self.state.array, comp, sites, types, counts=self.executed_per_type
            )
        self.n_trials += n_trials
        self.time += self.time_increment(n_trials)
        if m.enabled:
            executed = int(self.executed_per_type.sum()) - executed0
            m.inc("lpndca.chunk.visits")
            m.observe("lpndca.visit.L", n_trials)
            if n_trials:
                m.observe("lpndca.visit.utilisation", executed / n_trials)
        self.tracer.on_chunk(index, n_trials, self.time)
        self._notify()

    def _choose_chunk(self) -> int:
        if self.partition.m == 1:
            return 0  # no choice to make (and no random stream consumed)
        if self.chunk_selection == "size-proportional" and not self._equal_sizes:
            # inverse-CDF draw: O(log m) instead of rng.choice's O(m)
            return int(
                np.searchsorted(self._size_cum, self.rng.random(), side="right")
            )
        return int(self.rng.integers(0, self.partition.m))

    def _step_block(self, until: float) -> int:
        p = self.partition
        n = self.lattice.n_sites
        if self._rsm_equivalent:
            sites = self.rng.integers(0, n, size=n).astype(np.intp)
            types = draw_types(self.rng, self.compiled.type_cum, n)
            if self.metrics.enabled:
                self._record_attempts(types)
            self.kernels.run_trials_sequential(
                self.state.array, self.compiled, sites, types,
                counts=self.executed_per_type,
            )
            self.n_trials += n
            self.time += self.time_increment(n)
            self._notify()
            return n
        if self.chunk_selection in ("random-order", "ordered"):
            order = (
                self.rng.permutation(p.m)
                if self.chunk_selection == "random-order"
                else np.arange(p.m)
            )
            budget = n
            for i in order:
                chunk = p.chunks[int(i)]
                L = chunk.size if self.L == "chunk" else min(int(self.L), budget)
                L = min(L, budget)
                if L <= 0:
                    break
                self._visit(chunk, L, int(i))
                budget -= L
            return n - budget if budget < n else n
        # repeat-loop selections
        trials = 0
        while trials < n:
            i = self._choose_chunk()
            chunk = p.chunks[i]
            L = chunk.size if self.L == "chunk" else int(self.L)
            L = min(L, n - trials)
            self._visit(chunk, L, i)
            trials += L
        return n
