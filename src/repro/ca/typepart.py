"""The reaction-type-partitioned CA (paper section 5, "another approach").

The non-overlap rule forces ``|P|`` chunks proportional to the pattern
size of the *union* of all reaction types — 5 chunks for the
CO-oxidation model.  Partitioning the product ``Omega x T`` relaxes
this: the reaction-type set is split into orientation-pure subsets
``T_j`` (Table II; see :mod:`repro.partition.typesplit`), and for a
*single* pattern orientation a 2-chunk checkerboard partition already
satisfies non-overlap.  More concurrency (``N/2`` sites at once instead
of ``N/5``), less work per chunk.

The algorithm (a generalisation of Kortlüke's simulation scheme)::

    for each step
        for |T| times
            select Tj in T with probability K_Tj / K;
            select a reaction type from Tj with probability ki / k_Tj;
            select Pi in P
            for each site s in Pi
                1. check if the reaction is enabled at s;
                2. if it is, execute it;
                3. advance the time;

Each inner sweep applies *one* oriented reaction type to *every* site
of one chunk simultaneously
(:func:`repro.core.kernels.execute_type_everywhere`).  With the
2-chunk checkerboard, ``|T_j| = 2`` sweeps of ``N/2`` sites each give
``N`` trials per step — one MC step, directly comparable with RSM and
PNDCA.
"""

from __future__ import annotations

import numpy as np

from ..dmc.base import SimulatorBase
from ..partition.partition import Partition, conflict_displacements
from ..partition.tilings import checkerboard
from ..partition.typesplit import TypeSplit, split_by_orientation

__all__ = ["TypePartitionedCA", "validate_partition_for_single_types"]


def validate_partition_for_single_types(partition: Partition, model) -> None:
    """Check the non-overlap rule *per individual reaction type*.

    The type-partitioned algorithm executes one reaction type at a
    time, so the partition only needs to separate sites conflicting
    under a *single* type's neighborhood (a much weaker condition than
    the all-types rule — the checkerboard passes it for every
    nearest-neighbour pair pattern).  Raises ``ValueError`` with the
    offending type on failure.
    """
    lat = partition.lattice
    labels = partition.chunk_of()
    for rt in model.reaction_types:
        for d in conflict_displacements(rt.neighborhood):
            nbr = lat.neighbor_map(d)
            clash = (labels == labels[nbr]) & (nbr != np.arange(lat.n_sites))
            if clash.any():
                s = int(np.flatnonzero(clash)[0])
                t = int(nbr[s])
                raise ValueError(
                    f"[SR005] partition {partition.name!r} is not conflict-free "
                    f"for single type {rt.name!r}: sites "
                    f"{lat.coords(s)} and {lat.coords(t)} both lie in chunk "
                    f"{int(labels[s])} (displacement {d})"
                )


class TypePartitionedCA(SimulatorBase):
    """CA with a partition of ``Omega x T`` (Kortlüke-style algorithm).

    Parameters (beyond :class:`~repro.dmc.base.SimulatorBase`)
    ----------
    type_split:
        The subsets ``T_j``; defaults to
        :func:`~repro.partition.typesplit.split_by_orientation` of the
        model (Table II for the CO-oxidation model).
    partition:
        Site partition used for every subset; defaults to the 2-chunk
        checkerboard (Fig. 6).  Validated per single type on
        construction.
    """

    algorithm = "TypePartCA"

    def __init__(
        self,
        *args,
        type_split: TypeSplit | None = None,
        partition: Partition | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.type_split = type_split or split_by_orientation(self.model)
        if self.type_split.model is not self.model:
            raise ValueError("type split was built for a different model")
        self.partition = partition or checkerboard(self.lattice)
        if self.partition.lattice != self.lattice:
            raise ValueError("partition belongs to a different lattice")
        validate_partition_for_single_types(self.partition, self.model)
        self.algorithm = (
            f"TypePartCA[|T|={self.type_split.n_subsets},m={self.partition.m}]"
        )

    def _step_block(self, until: float) -> int:
        comp = self.compiled
        split = self.type_split
        p = self.partition
        trials = 0
        for _ in range(split.n_subsets):
            j = int(
                np.searchsorted(split.subset_cum, self.rng.random(), side="right")
            )
            sub = split.subsets[j]
            k = int(np.searchsorted(sub.cum, self.rng.random(), side="right"))
            t_idx = sub.type_indices[k]
            i = int(self.rng.integers(0, p.m))
            chunk = p.chunks[i]
            n_exec = self.kernels.execute_type_everywhere(
                self.state.array, comp, t_idx, chunk
            )
            self.executed_per_type[t_idx] += n_exec
            self.n_trials += chunk.size
            trials += chunk.size
            self.time += self.time_increment(chunk.size)
            m = self.metrics
            if m.enabled:
                # every site of the chunk attempts the one selected type
                self._attempted_per_type[t_idx] += chunk.size
                m.inc("typepart.sweeps")
                m.observe("typepart.sweep.size", chunk.size)
                if chunk.size:
                    m.observe("typepart.sweep.utilisation", n_exec / chunk.size)
            self.tracer.on_chunk(i, chunk.size, self.time)
            self._notify()
        return trials
