"""Naive synchronous CA update and its conflicts (Fig. 2 of the paper).

The CA approach is inherently parallel: all sites could react in one
step.  But simultaneous execution of reactions whose neighborhoods
overlap is ill-defined — the paper's Fig. 2 example is diffusion, where
two particles adjacent to the same vacancy both try to hop into it.
This module implements the naive synchronous update *with explicit
conflict detection* so the problem can be observed and quantified (the
motivation for partitioned CA), plus the two classical resolutions:

* ``on_conflict="error"`` — raise :class:`ConflictError` on the first
  conflicting step (demonstrates that synchronous update is unsound);
* ``on_conflict="discard"`` — drop *every* proposal involved in a
  conflict, execute the rest simultaneously (changes the kinetics:
  conflicting reactions are suppressed);
* ``on_conflict="sequential"`` — order the proposals randomly and
  execute them sequentially with re-checking (a correct resolution,
  but no longer synchronous — this is essentially what NDCA does).

A proposal *conflicts* with another when their touched site sets
(pattern neighborhoods) intersect — covering both write/write
collisions (two hops into one vacancy) and read/write hazards (a
pattern reads a site another reaction rewrites).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_types
from ..dmc.base import SimulatorBase

__all__ = ["SynchronousCA", "ConflictError"]


class ConflictError(RuntimeError):
    """Raised when a synchronous step produces conflicting proposals."""

    def __init__(self, step: int, n_conflicting: int):
        super().__init__(
            f"synchronous step {step}: {n_conflicting} proposals touch "
            "overlapping neighborhoods; simultaneous execution is ill-defined"
        )
        self.step = step
        self.n_conflicting = n_conflicting


class SynchronousCA(SimulatorBase):
    """Synchronous NDCA with explicit conflict detection/resolution.

    Per step: every site draws a reaction type; proposals are the
    (site, type) pairs whose source pattern matches the *old* state;
    conflicts among proposals are detected and handled per
    ``on_conflict``.  Statistics are accumulated in
    ``conflict_history`` (per step: proposals, conflicting proposals).
    """

    algorithm = "SyncCA"

    def __init__(self, *args, on_conflict: str = "discard", **kwargs):
        super().__init__(*args, **kwargs)
        if on_conflict not in ("error", "discard", "sequential"):
            raise ValueError(f"unknown conflict policy {on_conflict!r}")
        self.on_conflict = on_conflict
        #: list of (n_proposals, n_conflicting) per step
        self.conflict_history: list[tuple[int, int]] = []
        self._step_no = 0

    # ------------------------------------------------------------------
    def _proposals(self) -> tuple[np.ndarray, np.ndarray]:
        """Draw one type per site; keep the enabled (site, type) pairs."""
        comp = self.compiled
        n = comp.n_sites
        sites = np.arange(n, dtype=np.intp)
        types = draw_types(self.rng, comp.type_cum, n)
        keep = np.zeros(n, dtype=bool)
        for t in np.unique(types):
            pick = types == t
            keep[pick] = comp.match_sites(self.state.array, int(t), sites[pick])
        return sites[keep], types[keep]

    def _touched(self, sites: np.ndarray, types: np.ndarray) -> list[np.ndarray]:
        """Per proposal, the flat indices its pattern touches."""
        comp = self.compiled
        return [
            np.array([m[s] for m in comp.types[t].maps], dtype=np.intp)
            for s, t in zip(sites.tolist(), types.tolist())
        ]

    def _conflicting_mask(self, touched: list[np.ndarray]) -> np.ndarray:
        """Mask of proposals whose touched sites intersect another's."""
        if not touched:
            return np.zeros(0, dtype=bool)
        all_sites = np.concatenate(touched)
        owners = np.concatenate(
            [np.full(len(t), i, dtype=np.intp) for i, t in enumerate(touched)]
        )
        order = np.argsort(all_sites, kind="stable")
        ss, oo = all_sites[order], owners[order]
        dup = np.zeros(len(ss), dtype=bool)
        same = ss[1:] == ss[:-1]
        dup[1:] |= same
        dup[:-1] |= same
        mask = np.zeros(len(touched), dtype=bool)
        mask[oo[dup]] = True
        return mask

    # ------------------------------------------------------------------
    def _step_block(self, until: float) -> int:
        comp = self.compiled
        n = comp.n_sites
        self._step_no += 1
        sites, types = self._proposals()
        touched = self._touched(sites, types)
        conflict = self._conflicting_mask(touched)
        n_conf = int(conflict.sum())
        self.conflict_history.append((len(sites), n_conf))

        if n_conf and self.on_conflict == "error":
            raise ConflictError(self._step_no, n_conf)

        if self.on_conflict == "sequential":
            order = self.rng.permutation(len(sites))
            self.kernels.run_trials_sequential(
                self.state.array,
                comp,
                sites[order],
                types[order],
                counts=self.executed_per_type,
            )
        else:  # discard conflicting, apply the rest simultaneously
            ok_sites, ok_types = sites[~conflict], types[~conflict]
            # proposals already matched against the old state and are
            # mutually non-overlapping -> scatter the targets directly
            for t in np.unique(ok_types):
                sel = ok_sites[ok_types == t]
                ct = comp.types[t]
                for m, v in zip(ct.maps, ct.tgts):
                    self.state.array[m[sel]] = v
                self.executed_per_type[t] += sel.size
        self.n_trials += n
        self.time += self.time_increment(n)
        return n

    # ------------------------------------------------------------------
    def conflict_rate(self) -> float:
        """Fraction of proposals involved in conflicts over the whole run."""
        if not self.conflict_history:
            return 0.0
        props = sum(p for p, _ in self.conflict_history)
        confs = sum(c for _, c in self.conflict_history)
        return confs / props if props else 0.0
