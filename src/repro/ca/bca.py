"""Block Cellular Automata (Fig. 3 of the paper).

The classical way to avoid synchronous-update conflicts: partition the
sites into a regular pattern of contiguous, non-overlapping *blocks*
and apply a transition rule simultaneously and independently *within*
each block.  Information cannot cross block edges during a step, so in
the next step the block boundaries are *shifted* so the edges fall
elsewhere.

This module implements a generic 1-d/2-d block CA over deterministic
(or stochastic) *block rules*: a block rule receives the batch of all
blocks as an array ``(n_blocks, *block_shape)`` and returns the
updated batch.  The paper's Fig. 3 example — 9 sites, blocks of three,
rule "a site becomes 0 if at least one of its neighbours (within the
block) is 0" — is provided by
:func:`repro.models.majority.zero_spreads_block_rule` and reproduced
verbatim in ``benchmarks/bench_fig3_bca.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.lattice import Lattice

__all__ = ["BlockCA", "BlockRule"]

#: A block rule: (blocks, rng) -> updated blocks, where blocks has
#: shape (n_blocks, *block_shape).  Must not write outside its input.
BlockRule = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class BlockCA:
    """A block cellular automaton with a shifting block partition.

    Parameters
    ----------
    lattice:
        The (1-d or 2-d) lattice.  Every side must be divisible by the
        corresponding block side.
    block_shape:
        Side lengths of a block, e.g. ``(3,)`` for Fig. 3.
    rule:
        The block rule applied to all blocks each step.
    shifts:
        The cyclic schedule of block-boundary shifts; defaults to
        stepping the boundary by one site per axis each step
        (Fig. 3 alternates between shift 0 and shift 1).
    seed:
        Seed for stochastic rules (deterministic rules ignore it).
    """

    def __init__(
        self,
        lattice: Lattice,
        block_shape: Sequence[int],
        rule: BlockRule,
        shifts: Sequence[Sequence[int]] | None = None,
        seed: int | None = None,
    ):
        block_shape = tuple(int(b) for b in block_shape)
        if len(block_shape) != lattice.ndim:
            raise ValueError("block shape must match lattice dimensionality")
        if any(b < 1 for b in block_shape):
            raise ValueError(f"invalid block shape {block_shape}")
        if any(s % b for s, b in zip(lattice.shape, block_shape)):
            raise ValueError(
                f"lattice {lattice.shape} is not divisible into blocks {block_shape}"
            )
        self.lattice = lattice
        self.block_shape = block_shape
        self.rule = rule
        if shifts is None:
            # step boundaries one site per step, cycling through a block
            period = max(block_shape)
            shifts = [
                tuple((k % b) for b in block_shape) if lattice.ndim > 1 else (k % block_shape[0],)
                for k in range(period)
            ]
        self.shifts = [tuple(int(x) for x in s) for s in shifts]
        if not self.shifts:
            raise ValueError("need at least one shift in the schedule")
        self.rng = np.random.default_rng(seed)
        self.step_no = 0

    # ------------------------------------------------------------------
    def _blocked_view(self, state: np.ndarray, shift: Sequence[int]) -> np.ndarray:
        """Batch of blocks ``(n_blocks, *block_shape)`` for a given shift.

        The state is rolled so blocks become axis-aligned, then reshaped
        (a copy — blocks are written back by :meth:`step`).
        """
        grid = self.lattice.as_grid(state)
        rolled = np.roll(grid, shift=[-s for s in shift], axis=tuple(range(grid.ndim)))
        if self.lattice.ndim == 1:
            (L,), (b,) = self.lattice.shape, self.block_shape
            return rolled.reshape(L // b, b).copy()
        (L0, L1), (b0, b1) = self.lattice.shape, self.block_shape
        tiled = rolled.reshape(L0 // b0, b0, L1 // b1, b1)
        return tiled.transpose(0, 2, 1, 3).reshape(-1, b0, b1).copy()

    def _write_back(self, state: np.ndarray, blocks: np.ndarray, shift: Sequence[int]) -> None:
        if self.lattice.ndim == 1:
            (L,), (b,) = self.lattice.shape, self.block_shape
            flat = blocks.reshape(L)
        else:
            (L0, L1), (b0, b1) = self.lattice.shape, self.block_shape
            flat = (
                blocks.reshape(L0 // b0, L1 // b1, b0, b1)
                .transpose(0, 2, 1, 3)
                .reshape(L0, L1)
            )
        unrolled = np.roll(
            flat, shift=list(shift), axis=tuple(range(flat.ndim))
        )
        state[:] = unrolled.reshape(-1)

    # ------------------------------------------------------------------
    def current_shift(self) -> tuple[int, ...]:
        """The boundary shift the *next* step will use."""
        return self.shifts[self.step_no % len(self.shifts)]

    def step(self, state: np.ndarray) -> np.ndarray:
        """Advance one BCA step in place; returns the state for chaining."""
        shift = self.current_shift()
        blocks = self._blocked_view(state, shift)
        updated = self.rule(blocks, self.rng)
        if updated.shape != blocks.shape:
            raise ValueError(
                f"block rule changed the batch shape {blocks.shape} -> {updated.shape}"
            )
        self._write_back(state, np.asarray(updated), shift)
        self.step_no += 1
        return state

    def run(self, state: np.ndarray, n_steps: int) -> list[np.ndarray]:
        """Run several steps; returns the state after every step (copies)."""
        history = []
        for _ in range(n_steps):
            self.step(state)
            history.append(state.copy())
        return history
