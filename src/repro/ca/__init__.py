"""Cellular-automaton simulators: NDCA, synchronous CA, BCA, PNDCA family."""

from .bca import BlockCA, BlockRule
from .lpndca import LPNDCA
from .ndca import NDCA
from .pndca import PNDCA, STRATEGIES
from .sync import ConflictError, SynchronousCA
from .typepart import TypePartitionedCA, validate_partition_for_single_types

__all__ = [
    "NDCA",
    "SynchronousCA",
    "ConflictError",
    "BlockCA",
    "BlockRule",
    "PNDCA",
    "STRATEGIES",
    "LPNDCA",
    "TypePartitionedCA",
    "validate_partition_for_single_types",
]
