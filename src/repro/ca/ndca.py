"""The Non-Deterministic Cellular Automaton (NDCA).

A standard CA treats all patterns on the same footing; to encode that
different reactions proceed at different speeds, the NDCA (paper,
section 4) makes the per-site decision probabilistic::

    for each step
        for each site s
            1. select a reaction type i with probability ki/K;
            2. check whether the reaction is enabled at s;
            3. if it is, execute it;
            4. advance the time;

Every site is visited *exactly once* per step — the crucial difference
from RSM, where a site can be chosen twice (or not at all) within one
MC step.  (:class:`repro.ensemble.EnsembleNDCA` is the stacked
multi-replica variant, bit-identical per replica.)  This difference biases reaction rates and makes NDCA
degenerate for some systems (Ising, single-file; Vichniac 1984), which
the bias benchmarks demonstrate.

True synchronous update is impossible in the presence of conflicts
(see :mod:`repro.ca.sync`); the NDCA here executes the per-step sweep
sequentially in a configurable site order (``"raster"`` — the literal
reading of the pseudo-code — or ``"random"``, a fresh permutation per
step, which removes directional sweep artefacts).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import draw_types
from ..dmc.base import SimulatorBase

__all__ = ["NDCA"]


class NDCA(SimulatorBase):
    """Non-deterministic CA: one rate-weighted trial per site per step."""

    algorithm = "NDCA"

    def __init__(self, *args, order: str = "raster", **kwargs):
        super().__init__(*args, **kwargs)
        if order not in ("raster", "random"):
            raise ValueError(f"unknown site order {order!r}")
        self.order = order

    def _step_block(self, until: float) -> int:
        comp = self.compiled
        n = comp.n_sites
        if self.order == "raster":
            sites = np.arange(n, dtype=np.intp)
        else:
            sites = self.rng.permutation(n).astype(np.intp)
        types = draw_types(self.rng, comp.type_cum, n)
        if self.metrics.enabled:
            self._record_attempts(types)
        record: list | None = [] if self.trace is not None else None
        t_start = self.time
        self.kernels.run_trials_sequential(
            self.state.array,
            comp,
            sites,
            types,
            counts=self.executed_per_type,
            record=record,
        )
        self.n_trials += n
        self.time = t_start + self.time_increment(n)
        if record is not None and record:
            # within-step event times: linear interpolation on the trial axis
            dt = (self.time - t_start) / n
            for idx, t_idx, s in record:
                self.trace.append(t_start + (idx + 1) * dt, t_idx, s)  # type: ignore[union-attr]
        return n
