"""Static conflict/race proofs for partitions, kernels and models.

``repro.lint`` is a *static analysis* layer over the package: instead
of checking properties empirically per lattice instance at runtime, it
proves (or refutes, with a minimal counterexample) structural
properties of the reaction patterns, the partitions and the kernels —
once, symbolically, before a simulation ever runs.

Analysis passes, each emitting :class:`Diagnostic` records with stable
``SR0xx`` error codes (authoritative table:
:data:`repro.lint.diagnostics.CODES`; ``python -m repro lint
--list-codes`` prints it):

* :mod:`repro.lint.partition_lint` — the **symbolic partition race
  detector**.  Reaction patterns are lifted to offset algebra (pattern
  footprints as lattice-offset sets, chunk membership as residue
  classes of a modular tiling), so chunk conflict-freedom becomes a
  residue-arithmetic statement that is proven for *all* periodic
  lattice sizes at once; failures come with a minimal counterexample
  (site pair + reaction pair + overlapping cell).
* :mod:`repro.lint.model_lint` — the **model sanity pass**: per-site
  NDCA probability mass at the chosen time step, dead/unreachable
  reactions and species, stoichiometry against declared conservation
  laws (:mod:`repro.core.conservation`).
* :mod:`repro.lint.rng_lint` — the **RNG draw-accounting audit**: an
  AST walk over the sequential kernels and their ensemble counterparts
  in :mod:`repro.core.kernels` clients, tallying random draws per
  trial stream, guarding the bit-identical-replica guarantee of the
  ensemble engine.
* :mod:`repro.lint.kernel_lint` — the **scatter/gather aliasing
  prover** (with :mod:`repro.lint.ir` and
  :mod:`repro.lint.contracts`): an abstract interpreter over the
  vectorized NumPy kernels that proves scatter-write index sets
  duplicate-free, infers symbolic shapes/dtypes, and checks each
  kernel's ``@kernel(reads=..., writes=..., pure=...)`` effect
  contract — including sequential/ensemble twin-contract agreement.
  ``python -m repro lint --kernels``.
* :mod:`repro.lint.native` — the **native-tier verifier**: parses the
  cnative C translation unit and the ``@njit`` twins from source into
  one typed IR, checks the ctypes/numpy/@kernel-contract ABI surface
  (SR060/SR061), proves every subscript in-bounds and every integer
  expression overflow-free by abstract interpretation with polynomial
  intervals (SR062/SR063), and certifies trial loop order against the
  reference kernel's commutativity argument (SR064).
  ``python -m repro lint --native``.
* :mod:`repro.lint.protocol` — the **protocol verifier**: an
  interprocedural AST/dataflow pass over the parallel-execution and
  resilience layers proving the SharedMemory create/attach/close/unlink
  lifecycle correctly paired on all control paths (SR070/SR071),
  signal-handler and ambient-stack push/pop discipline (SR072),
  checkpoint payload round-trip field and codec agreement
  (SR073/SR074), recovery-ladder draw invariance and snapshot
  sufficiency (SR075/SR076), and spawn-safe worker capture (SR077);
  shapes the analysis cannot model fail closed as SR078.
  ``python -m repro lint --protocol``.

The complete code registry, generated from
:data:`repro.lint.diagnostics.CODES` (full descriptions live there;
``python -m repro lint --list-codes`` prints them):

{code_table}

Entry points: ``python -m repro lint`` (CI gate, see
:mod:`repro.lint.cli`; ``--kernels`` / ``--native`` / ``--protocol``
for single passes) and the :func:`preflight_model` /
:func:`preflight_partition` gates wired into the experiment drivers
and the PNDCA construction paths.
"""

from __future__ import annotations

from .contracts import KernelContract, contract_of, kernel, registered_kernels
from .diagnostics import CODES, Diagnostic, LintReport, code_table
from .engine import LintError, preflight_model, preflight_partition, run_lint
from .ir import KernelIR, build_ir
from .kernel_lint import (
    KERNEL_MODULES,
    analyze_kernel,
    check_twins,
    lint_kernels,
    runtime_write_collisions,
)
from .model_lint import lint_model
from .native import NATIVE_CODES, lint_native, lint_verdict
from .offsets import Conflict, conflict_witnesses
from .partition_lint import (
    TilingProof,
    check_tiling_on_shape,
    lint_partition,
    prove_tiling,
    tiling_conflicts_on_shape,
)
from .protocol import PROTOCOL_CODES, lint_protocol, protocol_verdict
from .rng_lint import audit_draws


def _render_code_table() -> str:
    """The SR-code table as reST, one row per registry entry."""
    rows = [
        (f"``{code}``", sev, slug)
        for code, sev, slug, _desc in code_table()
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    rule = "  ".join("=" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in rows
    )
    return f"{rule}\n{body}\n{rule}"


if __doc__ is not None:  # absent under ``python -OO``
    __doc__ = __doc__.replace("{code_table}", _render_code_table())

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "LintError",
    "Conflict",
    "TilingProof",
    "KernelContract",
    "KernelIR",
    "KERNEL_MODULES",
    "NATIVE_CODES",
    "PROTOCOL_CODES",
    "analyze_kernel",
    "audit_draws",
    "build_ir",
    "check_tiling_on_shape",
    "check_twins",
    "code_table",
    "conflict_witnesses",
    "contract_of",
    "kernel",
    "lint_kernels",
    "lint_model",
    "lint_native",
    "lint_partition",
    "lint_protocol",
    "lint_verdict",
    "protocol_verdict",
    "preflight_model",
    "preflight_partition",
    "prove_tiling",
    "registered_kernels",
    "run_lint",
    "runtime_write_collisions",
    "tiling_conflicts_on_shape",
]
