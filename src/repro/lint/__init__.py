"""Static conflict/race proofs for partitions, kernels and models.

``repro.lint`` is a *static analysis* layer over the package: instead
of checking properties empirically per lattice instance at runtime, it
proves (or refutes, with a minimal counterexample) structural
properties of the reaction patterns, the partitions and the kernels —
once, symbolically, before a simulation ever runs.

Analysis passes, each emitting :class:`Diagnostic` records with stable
``SR0xx`` error codes (authoritative table:
:data:`repro.lint.diagnostics.CODES`; ``python -m repro lint
--list-codes`` prints it):

* :mod:`repro.lint.partition_lint` — the **symbolic partition race
  detector**.  Reaction patterns are lifted to offset algebra (pattern
  footprints as lattice-offset sets, chunk membership as residue
  classes of a modular tiling), so chunk conflict-freedom becomes a
  residue-arithmetic statement that is proven for *all* periodic
  lattice sizes at once; failures come with a minimal counterexample
  (site pair + reaction pair + overlapping cell).
* :mod:`repro.lint.model_lint` — the **model sanity pass**: per-site
  NDCA probability mass at the chosen time step, dead/unreachable
  reactions and species, stoichiometry against declared conservation
  laws (:mod:`repro.core.conservation`).
* :mod:`repro.lint.rng_lint` — the **RNG draw-accounting audit**: an
  AST walk over the sequential kernels and their ensemble counterparts
  in :mod:`repro.core.kernels` clients, tallying random draws per
  trial stream, guarding the bit-identical-replica guarantee of the
  ensemble engine.
* :mod:`repro.lint.kernel_lint` — the **scatter/gather aliasing
  prover** (with :mod:`repro.lint.ir` and
  :mod:`repro.lint.contracts`): an abstract interpreter over the
  vectorized NumPy kernels that proves scatter-write index sets
  duplicate-free, infers symbolic shapes/dtypes, and checks each
  kernel's ``@kernel(reads=..., writes=..., pure=...)`` effect
  contract — including sequential/ensemble twin-contract agreement.
  ``python -m repro lint --kernels``.

The complete code registry (one line each; severities and full
descriptions in :data:`repro.lint.diagnostics.CODES`):

========  ============================================================
``SR001``  tiling residue conflict (fails on every aligned size)
``SR002``  tiling conflict under one shape's periodic wrap
``SR003``  partition places conflicting sites in one chunk
``SR004``  partition uses more chunks than the clique bound
``SR005``  partition not conflict-free for a single type
``SR010``  per-site probability mass exceeds 1 at the time step
``SR011``  reaction can never become enabled
``SR012``  species neither initial nor producible
``SR013``  null reaction (rewrites sites to themselves)
``SR014``  declared conservation law violated by stoichiometry
``SR015``  non-finite rate constant
``SR016``  duplicate reaction pattern
``SR030``  ensemble replica stream draws an extra kind
``SR031``  schedule randomness drawn from a replica stream
``SR032``  sequential draw kind missing from the ensemble twin
``SR040``  augmented fancy scatter with possibly-repeated index
``SR041``  plain fancy scatter aliasing array values
``SR042``  provable broadcast shape mismatch
``SR043``  implicit dtype downcast on store
``SR050``  mutation not declared by the @kernel contract
``SR051``  sequential/ensemble twin contract drift
========  ============================================================

Entry points: ``python -m repro lint`` (CI gate, see
:mod:`repro.lint.cli`; ``--kernels`` for the kernel pass alone) and
the :func:`preflight_model` / :func:`preflight_partition` gates wired
into the experiment drivers and the PNDCA construction paths.
"""

from __future__ import annotations

from .contracts import KernelContract, contract_of, kernel, registered_kernels
from .diagnostics import CODES, Diagnostic, LintReport, code_table
from .engine import LintError, preflight_model, preflight_partition, run_lint
from .ir import KernelIR, build_ir
from .kernel_lint import (
    KERNEL_MODULES,
    analyze_kernel,
    check_twins,
    lint_kernels,
    runtime_write_collisions,
)
from .model_lint import lint_model
from .offsets import Conflict, conflict_witnesses
from .partition_lint import (
    TilingProof,
    check_tiling_on_shape,
    lint_partition,
    prove_tiling,
    tiling_conflicts_on_shape,
)
from .rng_lint import audit_draws

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "LintError",
    "Conflict",
    "TilingProof",
    "KernelContract",
    "KernelIR",
    "KERNEL_MODULES",
    "analyze_kernel",
    "audit_draws",
    "build_ir",
    "check_tiling_on_shape",
    "check_twins",
    "code_table",
    "conflict_witnesses",
    "contract_of",
    "kernel",
    "lint_kernels",
    "lint_model",
    "lint_partition",
    "preflight_model",
    "preflight_partition",
    "prove_tiling",
    "registered_kernels",
    "run_lint",
    "runtime_write_collisions",
    "tiling_conflicts_on_shape",
]
