"""Static conflict/race proofs for partitions, kernels and models.

``repro.lint`` is a *static analysis* layer over the package: instead
of checking properties empirically per lattice instance at runtime, it
proves (or refutes, with a minimal counterexample) structural
properties of the reaction patterns, the partitions and the kernels —
once, symbolically, before a simulation ever runs.

Three analysis passes, each emitting :class:`Diagnostic` records with
stable ``SR0xx`` error codes (see :data:`repro.lint.diagnostics.CODES`):

* :mod:`repro.lint.partition_lint` — the **symbolic partition race
  detector**.  Reaction patterns are lifted to offset algebra (pattern
  footprints as lattice-offset sets, chunk membership as residue
  classes of a modular tiling), so chunk conflict-freedom becomes a
  residue-arithmetic statement that is proven for *all* periodic
  lattice sizes at once; failures come with a minimal counterexample
  (site pair + reaction pair + overlapping cell).
* :mod:`repro.lint.model_lint` — the **model sanity pass**: per-site
  NDCA probability mass at the chosen time step, dead/unreachable
  reactions and species, stoichiometry against declared conservation
  laws (:mod:`repro.core.conservation`).
* :mod:`repro.lint.rng_lint` — the **RNG draw-accounting audit**: an
  AST walk over the sequential kernels and their ensemble counterparts
  in :mod:`repro.core.kernels` clients, tallying random draws per
  trial stream, guarding the bit-identical-replica guarantee of the
  ensemble engine.

Entry points: ``python -m repro lint`` (CI gate, see
:mod:`repro.lint.cli`) and the :func:`preflight_model` /
:func:`preflight_partition` gates wired into the experiment drivers
and the PNDCA construction paths.
"""

from __future__ import annotations

from .diagnostics import CODES, Diagnostic, LintReport
from .engine import LintError, preflight_model, preflight_partition, run_lint
from .model_lint import lint_model
from .offsets import Conflict, conflict_witnesses
from .partition_lint import (
    TilingProof,
    check_tiling_on_shape,
    lint_partition,
    prove_tiling,
    tiling_conflicts_on_shape,
)
from .rng_lint import audit_draws

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "LintError",
    "Conflict",
    "TilingProof",
    "conflict_witnesses",
    "lint_model",
    "lint_partition",
    "prove_tiling",
    "check_tiling_on_shape",
    "tiling_conflicts_on_shape",
    "audit_draws",
    "preflight_model",
    "preflight_partition",
    "run_lint",
]
