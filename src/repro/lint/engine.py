"""Lint orchestration and the pre-flight gates.

:func:`run_lint` assembles the full static report for a model (and
optionally a partition/tiling): model sanity, partition race proof,
RNG draw audit.  :func:`preflight_model` / :func:`preflight_partition`
are the thin gates wired into simulator constructors and experiment
drivers: they raise :class:`LintError` — a ``ValueError`` subclass, so
existing callers that catch ``ValueError`` keep working — when any
error-severity diagnostic fires, and are silent otherwise.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.model import Model
from .diagnostics import LintReport
from .model_lint import lint_model
from .partition_lint import lint_partition, prove_tiling

__all__ = ["LintError", "preflight_model", "preflight_partition", "run_lint"]


class LintError(ValueError):
    """A pre-flight gate failed; carries the offending :class:`LintReport`.

    Subclasses :class:`ValueError` because the gates replace ad-hoc
    ``raise ValueError`` validation in simulator constructors — callers
    (and tests) that catch ``ValueError`` still do.
    """

    def __init__(self, report: LintReport, context: str = ""):
        self.report = report
        head = f"{context}: " if context else ""
        errors = report.errors
        lines = [f"{head}{len(errors)} lint error(s)"]
        lines += [d.render() for d in errors]
        super().__init__("\n".join(lines))


def preflight_model(
    model: Model,
    dt: float | None = None,
    initial_species: Sequence[str] | None = None,
    conserved: Sequence[Mapping[str, float]] | None = None,
) -> LintReport:
    """Gate a model before simulation; raises :class:`LintError` on errors.

    Warnings (dead reactions, unreachable species, ...) do not block —
    they are returned in the report for the caller to surface.
    """
    report = lint_model(
        model, dt=dt, initial_species=initial_species, conserved=conserved
    )
    if not report.ok():
        raise LintError(report, context=f"model {model.name!r}")
    return report


def preflight_partition(partition, model: Model, limit: int = 8) -> LintReport:
    """Gate a partition against a model; raises :class:`LintError` on conflicts.

    On success the partition is marked conflict-free for the model
    (same cache the legacy ``validate_conflict_free`` fills), so
    repeated gating is O(1).
    """
    if model.name in getattr(partition, "conflict_free_for", ()):
        return LintReport()
    report = lint_partition(partition, model, limit=limit)
    if not report.ok():
        raise LintError(
            report,
            context=f"partition {partition.name!r} violates the non-overlap rule",
        )
    partition.conflict_free_for.add(model.name)
    return report


def run_lint(
    model: Model,
    partition=None,
    tiling: tuple[int, Sequence[int]] | None = None,
    shape: Sequence[int] | None = None,
    dt: float | None = None,
    initial_species: Sequence[str] | None = None,
    conserved: Sequence[Mapping[str, float]] | None = None,
    rng_audit: bool = False,
    kernel_audit: bool = False,
    native_audit: bool = False,
    protocol_audit: bool = False,
    limit: int = 8,
) -> LintReport:
    """Full static report for one model and its parallel decomposition.

    Runs the model sanity pass, then — depending on what is supplied —
    the symbolic tiling proof (``tiling=(m, coeffs)``, optionally
    specialised to a ``shape``), the partition lint, the RNG draw
    audit, the kernel aliasing/effect-contract pass (``kernel_audit``),
    the native-tier C/numba verifier (``native_audit``), and the
    process-level protocol verifier (``protocol_audit``) — the last
    four are model-independent, so CLI callers run them once, not per
    model.  Never raises on findings; inspect ``report.ok()``.
    """
    from .partition_lint import check_tiling_on_shape
    from .rng_lint import audit_draws

    report = lint_model(
        model, dt=dt, initial_species=initial_species, conserved=conserved
    )
    if tiling is not None:
        m, coeffs = tiling
        if shape is not None:
            report.extend(
                check_tiling_on_shape(model, m, coeffs, shape, limit=limit)
            )
        else:
            proof, conflicts = prove_tiling(model, m, coeffs)
            if proof is not None:
                report.note(proof.statement())
            else:
                from .diagnostics import Diagnostic

                for c in conflicts[:limit]:
                    report.add(
                        Diagnostic(
                            code="SR001",
                            subject=f"tiling((x . {tuple(coeffs)}) mod {m})",
                            message=c.describe(),
                            data=c.to_dict(),
                        )
                    )
    if partition is not None:
        report.extend(lint_partition(partition, model, limit=limit, bounds=True))
    if rng_audit:
        report.extend(audit_draws())
    if kernel_audit:
        from .kernel_lint import lint_kernels

        report.extend(lint_kernels())
    if native_audit:
        from .native import lint_native

        report.extend(lint_native())
    if protocol_audit:
        from .protocol import lint_protocol

        report.extend(lint_protocol())
    return report
