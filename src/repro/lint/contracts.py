"""Effect contracts for compute kernels: the ``@kernel`` decorator.

Every vectorized kernel in this package mutates state through NumPy
gathers and scatters whose correctness rests on *preconditions* (trial
sites pairwise conflict-free, neighbour maps injective, replica rows
disjoint) that the code itself cannot express.  The :func:`kernel`
decorator attaches a machine-readable :class:`KernelContract` to each
kernel declaring

* its **effects** — which parameters (or ``self.*`` attributes) it
  reads, which it writes, whether it is pure, and which it merely
  memoises caches on (``caches``, excluded from twin comparison);
* its **index preconditions** — parameters promised pairwise-distinct
  by the caller (``disjoint``) and arrays that are injective index
  maps (``injective``, e.g. the periodic neighbour maps, which are
  permutations of the lattice);
* its **dataflow declarations** — symbolic shapes (``shapes``, e.g.
  ``{"states": ("R", "N"), "tmap": ("C", "T*N")}``) and dtypes that
  seed the shape/dtype inference of :mod:`repro.lint.kernel_lint`;
* accepted **justifications** (``justify``) — a map from diagnostic
  code to a one-sentence proof for scatters whose safety follows from
  an argument outside the analyzer's fragment (e.g. the partition
  non-overlap theorem), downgrading that code to a recorded note;
* its **twin** — the name of the sequential counterpart kernel, with a
  parameter ``rename`` map, enabling the SR051 contract-drift check.

The decorator is metadata-only: it returns the function unchanged
(zero runtime overhead) and registers it in :data:`KERNEL_REGISTRY`
for :func:`repro.lint.kernel_lint.lint_kernels`.

Declared names may be dotted (``"compiled"``, ``"self.states"``,
``"ct.maps"``): a plain name refers to a parameter, ``self.x`` to an
attribute of the receiving object, and ``p.attr`` seeds facts about an
attribute of parameter ``p`` (e.g. ``injective=("ct.maps",)`` declares
the per-change neighbour maps injective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, TypeVar

__all__ = [
    "KernelContract",
    "KERNEL_REGISTRY",
    "kernel",
    "contract_of",
    "registered_kernels",
]

F = TypeVar("F", bound=Callable[..., Any])

#: ``"module.qualname" -> function`` for every decorated kernel.
KERNEL_REGISTRY: dict[str, Callable[..., Any]] = {}


@dataclass(frozen=True)
class KernelContract:
    """Declared effects, preconditions and dataflow facts of one kernel."""

    name: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    pure: bool = False
    #: benign memoisation targets (allowed mutations, invisible to twins)
    caches: tuple[str, ...] = ()
    #: index parameters the caller promises pairwise-distinct
    disjoint: tuple[str, ...] = ()
    #: injective index-map arrays (gathers through them preserve distinctness)
    injective: tuple[str, ...] = ()
    #: symbolic shapes, e.g. ``{"states": ("R", "N")}``
    shapes: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)
    #: dtype names, e.g. ``{"states": "uint8"}``
    dtypes: Mapping[str, str] = field(default_factory=dict)
    #: accepted per-code justifications, e.g. ``{"SR041": "footprints disjoint"}``
    justify: Mapping[str, str] = field(default_factory=dict)
    #: marker for helpers with analyzer-known return semantics
    #: (currently only ``"occurrence_index"``)
    returns: str | None = None
    #: name of the sequential twin kernel (enables the SR051 drift check)
    twin: str | None = None
    #: parameter rename map onto the twin, e.g. ``{"states": "state"}``
    rename: Mapping[str, str] = field(default_factory=dict)

    def allowed_writes(self) -> frozenset[str]:
        """Roots this kernel may mutate: declared writes plus caches."""
        return frozenset(self.writes) | frozenset(self.caches)


def kernel(
    *,
    reads: Iterable[str] = (),
    writes: Iterable[str] = (),
    pure: bool = False,
    caches: Iterable[str] = (),
    disjoint: Iterable[str] = (),
    injective: Iterable[str] = (),
    shapes: Mapping[str, tuple[Any, ...]] | None = None,
    dtypes: Mapping[str, str] | None = None,
    justify: Mapping[str, str] | None = None,
    returns: str | None = None,
    twin: str | None = None,
    rename: Mapping[str, str] | None = None,
) -> Callable[[F], F]:
    """Attach a :class:`KernelContract` to a kernel function (or method).

    Raises ``ValueError`` on inconsistent declarations (``pure=True``
    together with ``writes``) so a bad contract fails at import time,
    not at lint time.
    """
    writes_t = tuple(writes)
    if pure and writes_t:
        raise ValueError(
            f"a pure kernel cannot declare writes; got writes={writes_t}"
        )

    def wrap(fn: F) -> F:
        contract = KernelContract(
            name=fn.__name__,
            reads=tuple(reads),
            writes=writes_t,
            pure=pure,
            caches=tuple(caches),
            disjoint=tuple(disjoint),
            injective=tuple(injective),
            shapes=dict(shapes or {}),
            dtypes=dict(dtypes or {}),
            justify=dict(justify or {}),
            returns=returns,
            twin=twin,
            rename=dict(rename or {}),
        )
        fn.__kernel_contract__ = contract  # type: ignore[attr-defined]
        KERNEL_REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = fn
        return fn

    return wrap


def contract_of(fn: Callable[..., Any]) -> KernelContract | None:
    """The contract attached to a function, or None."""
    return getattr(fn, "__kernel_contract__", None)


def registered_kernels(
    modules: Iterable[str] | None = None,
) -> list[Callable[..., Any]]:
    """Decorated kernels, optionally restricted to a module list.

    Modules named in ``modules`` are imported first so their decorators
    have run; with ``modules=None`` every kernel registered so far is
    returned (test kernels included).
    """
    if modules is not None:
        import importlib

        for mod in modules:
            importlib.import_module(mod)
        wanted = set(modules)
        return [
            fn
            for key, fn in sorted(KERNEL_REGISTRY.items())
            if fn.__module__ in wanted
        ]
    return [fn for _, fn in sorted(KERNEL_REGISTRY.items())]
