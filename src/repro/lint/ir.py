"""AST → dataflow IR for vectorized NumPy kernels.

:func:`build_ir` parses a kernel's source and abstractly interprets it
over a small value lattice, producing a :class:`KernelIR`: the list of
**scatter** sites (fancy-index stores, with a verdict on whether the
index set is provably duplicate-free), every **mutation** with the
dotted *roots* it may reach (for the SR050 undeclared-effect check),
and the **shape**/**dtype** facts needed for the SR042/SR043 checks.

The interpreter is deliberately *lenient where it is blind* and
*precise where the contract speaks*:

* A parameter is only treated as a NumPy array when the attached
  :class:`~repro.lint.contracts.KernelContract` declares a shape,
  dtype, ``disjoint`` or ``injective`` fact for it (or a recognised
  NumPy constructor produces it).  An index expression of unknown kind
  is classified as *basic* indexing — so the scalar ``memoryview``
  hot loop of :func:`repro.core.kernels.run_trials_sequential`
  produces no false scatter diagnostics.
* Uniqueness ("the elements of this array are pairwise distinct") is
  a provenance property: ``np.arange`` / ``np.unique`` /
  ``np.flatnonzero`` / ``np.argsort`` results are unique, a boolean
  mask selects a positional subset (preserving uniqueness of the
  base), gathering an *injective* map at unique indices stays unique,
  adding a scalar preserves distinctness, and an
  ``_occurrence_index``-style round mask (``occ == r``) selects at
  most one occurrence of every value — the dedup idiom of
  :func:`repro.core.kernels.run_trials_batch_with_duplicates`.
* Aliasing is tracked through views only (basic slices, ``reshape``,
  ``memoryview``, ``asarray``); fancy indexing, ``copy()`` and
  arithmetic produce fresh values.  A mutation whose alias set is
  empty touches only locals and is ignored.

Justification pragmas — a trailing ``# lint: justified(SR0xx): why``
comment on (or immediately above) the offending line — are collected
into :attr:`KernelIR.pragmas` for :mod:`repro.lint.kernel_lint` to
honour, alongside contract-level ``justify`` entries.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable

from .contracts import KernelContract, contract_of

__all__ = [
    "Value",
    "Scatter",
    "Mutation",
    "ShapeIssue",
    "CastIssue",
    "KernelIR",
    "build_ir",
]

Dim = Any  # int | str | None — symbolic dimension


# ----------------------------------------------------------------------
# the value lattice
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Value:
    """Abstract value: kind, symbolic shape/dtype, index provenance.

    ``unique`` asserts the elements are pairwise distinct; ``injective``
    that the array (or each array in a container) is an injective index
    map; ``occ_index`` marks an ``_occurrence_index`` result and
    ``round_mask`` a boolean mask derived from ``occ == r`` (indexing
    with it yields a duplicate-free subset of any array).  ``aliases``
    holds the dotted contract roots this value may share memory with.
    """

    kind: str = "unknown"  # array | scalar | tuple | shape | dtype | range | unknown
    shape: tuple | None = None
    dtype: str | None = None
    unique: bool = False
    injective: bool = False
    occ_index: bool = False
    round_mask: bool = False
    aliases: frozenset = frozenset()
    elts: tuple = ()


UNKNOWN = Value()
SCALAR = Value(kind="scalar")


def _scalar(dtype: str | None = None) -> Value:
    return Value(kind="scalar", dtype=dtype)


def _join(a: Value, b: Value) -> Value:
    """Least upper bound of two branch values (conservative merge)."""
    if a == b:
        return a
    return Value(
        kind=a.kind if a.kind == b.kind else "unknown",
        shape=a.shape if a.shape == b.shape else None,
        dtype=a.dtype if a.dtype == b.dtype else None,
        unique=a.unique and b.unique,
        injective=a.injective and b.injective,
        occ_index=a.occ_index and b.occ_index,
        round_mask=a.round_mask and b.round_mask,
        aliases=a.aliases | b.aliases,
    )


# ----------------------------------------------------------------------
# dtype ladder (SR043)
# ----------------------------------------------------------------------

#: name -> (category, bits); categories: bool < uint < int < float
_DTYPE_RANK: dict[str, tuple[int, int]] = {
    "bool": (0, 1),
    "uint8": (1, 8), "uint16": (1, 16), "uint32": (1, 32), "uint64": (1, 64),
    "int8": (2, 8), "int16": (2, 16), "int32": (2, 32), "int64": (2, 64),
    "intp": (2, 64), "int_": (2, 64),
    "float16": (3, 16), "float32": (3, 32), "float64": (3, 64),
}


def _is_downcast(target: str | None, value: str | None) -> bool:
    """Would storing ``value``-typed data into ``target`` lose information?"""
    if target is None or value is None:
        return False
    t, v = _DTYPE_RANK.get(target), _DTYPE_RANK.get(value)
    if t is None or v is None:
        return False
    return v[0] > t[0] or (v[0] == t[0] and v[1] > t[1])


def _promote(a: str | None, b: str | None) -> str | None:
    """NumPy-style result dtype of a binary op (None if either unknown)."""
    if a is None or b is None:
        return None
    ra, rb = _DTYPE_RANK.get(a), _DTYPE_RANK.get(b)
    if ra is None or rb is None:
        return None
    return a if ra >= rb else b


def _broadcast(
    left: tuple | None, right: tuple | None
) -> tuple[tuple | None, tuple[Dim, Dim] | None]:
    """Broadcast two symbolic shapes; returns (result, conflicting pair).

    Only *provable* mismatches are reported: both dims concrete ints,
    different, and neither 1.  Symbolic or unknown dims never conflict.
    """
    if left is None or right is None:
        return None, None
    out: list[Dim] = []
    la, lb = list(left), list(right)
    while len(la) < len(lb):
        la.insert(0, 1)
    while len(lb) < len(la):
        lb.insert(0, 1)
    for da, db in zip(la, lb):
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            return None, (da, db)
        else:
            out.append(None)
    return tuple(out), None


# ----------------------------------------------------------------------
# recorded events
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Scatter:
    """A fancy-index store ``target[idx] (+)= value``."""

    lineno: int
    target: str
    roots: frozenset
    index_unique: bool
    augmented: bool
    value_scalar: bool


@dataclass(frozen=True)
class Mutation:
    """Any in-place effect on a value with the given dotted roots."""

    lineno: int
    target: str
    roots: frozenset
    via: str  # subscript | attribute | augassign | call | method


@dataclass(frozen=True)
class ShapeIssue:
    """A provable broadcasting mismatch (SR042)."""

    lineno: int
    detail: str


@dataclass(frozen=True)
class CastIssue:
    """A provable implicit dtype downcast (SR043)."""

    lineno: int
    target: str
    from_dtype: str
    to_dtype: str


@dataclass
class KernelIR:
    """Everything :mod:`repro.lint.kernel_lint` needs about one kernel."""

    name: str
    qualname: str
    module: str
    contract: KernelContract
    params: tuple[str, ...]
    scatters: list[Scatter] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)
    shape_issues: list[ShapeIssue] = field(default_factory=list)
    cast_issues: list[CastIssue] = field(default_factory=list)
    #: lineno -> {code: reason} from ``# lint: justified(SR0xx): ...``
    pragmas: dict[int, dict[str, str]] = field(default_factory=dict)

    def pragma_for(self, lineno: int, code: str) -> str | None:
        """Justification reason for a code at/above a line, if any."""
        for ln in (lineno, lineno - 1):
            reason = self.pragmas.get(ln, {}).get(code)
            if reason is not None:
                return reason
        return None


_PRAGMA_RE = re.compile(r"#\s*lint:\s*justified\((SR\d{3})\)\s*:\s*(.+?)\s*$")

#: numpy dtype attribute names the interpreter recognises
_DTYPE_NAMES = set(_DTYPE_RANK) | {"bool_", "float_", "double"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "fill",
    "sort", "partition", "shuffle", "update", "add", "discard",
    "setdefault", "popitem",
}


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` chain of Names/Attributes as a string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _normalize_dtype(name: str) -> str:
    return {"bool_": "bool", "float_": "float64", "double": "float64"}.get(name, name)


# ----------------------------------------------------------------------
# the abstract interpreter
# ----------------------------------------------------------------------

class _Interp:
    """One pass over a kernel body; records events into a KernelIR."""

    def __init__(self, fn: Callable[..., Any], ir: KernelIR):
        self.fn = fn
        self.ir = ir
        self.contract = ir.contract
        self.globals = getattr(fn, "__globals__", {})
        import numpy as _np

        self.np_aliases = {
            name
            for name, val in self.globals.items()
            if val is _np
        } | {"np", "numpy"}
        self.env: dict[str, Value] = {}
        for p in ir.params:
            self.env[p] = self._seed(p)

    # -- contract fact seeding -----------------------------------------
    def _facts(self, path: str) -> Value | None:
        """Declared facts for a dotted path, as an array value."""
        c = self.contract
        shape = c.shapes.get(path)
        dtype = c.dtypes.get(path)
        unique = path in c.disjoint
        injective = path in c.injective
        if shape is None and dtype is None and not unique and not injective:
            return None
        return Value(
            kind="array",
            shape=tuple(shape) if shape is not None else None,
            dtype=dtype,
            unique=unique,
            injective=injective,
            aliases=frozenset({path}),
        )

    def _seed(self, param: str) -> Value:
        v = self._facts(param)
        if v is not None:
            return v
        return Value(aliases=frozenset({param}))

    # -- statement dispatch --------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        self.exec_block(body, self.env)

    def exec_block(self, stmts: list[ast.stmt], env: dict[str, Value]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, node: ast.stmt, env: dict[str, Value]) -> None:
        if isinstance(node, ast.Assign):
            value = self.eval(node.value, env)
            for target in node.targets:
                self.assign(target, value, node.value, env)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.assign(node.target, self.eval(node.value, env), node.value, env)
        elif isinstance(node, ast.AugAssign):
            self.aug_assign(node, env)
        elif isinstance(node, ast.Expr):
            self.eval(node.value, env)
        elif isinstance(node, ast.If):
            self.eval(node.test, env)
            env_a, env_b = dict(env), dict(env)
            self.exec_block(node.body, env_a)
            self.exec_block(node.orelse, env_b)
            env.clear()
            for key in set(env_a) | set(env_b):
                env[key] = _join(env_a.get(key, UNKNOWN), env_b.get(key, UNKNOWN))
        elif isinstance(node, ast.For):
            self.for_stmt(node, env)
        elif isinstance(node, ast.While):
            self.eval(node.test, env)
            self.exec_block(node.body, env)
            self.exec_block(node.orelse, env)
        elif isinstance(node, ast.Try):
            self.exec_block(node.body, env)
            for handler in node.handlers:
                self.exec_block(handler.body, env)
            self.exec_block(node.orelse, env)
            self.exec_block(node.finalbody, env)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, UNKNOWN, None, env)
            self.exec_block(node.body, env)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.eval(node.value, env)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                env[(alias.asname or alias.name).split(".")[0]] = UNKNOWN
        elif isinstance(node, (ast.Assert, ast.Raise)):
            pass  # no effects we track
        elif isinstance(node, ast.FunctionDef):
            env[node.name] = UNKNOWN
        # Pass/Break/Continue/Global/Nonlocal/Delete: nothing to do

    def for_stmt(self, node: ast.For, env: dict[str, Value]) -> None:
        it = node.iter
        if isinstance(it, ast.Call):
            fname = _dotted(it.func)
            if fname == "range":
                for arg in it.args:
                    self.eval(arg, env)
                self.assign(node.target, SCALAR, None, env)
                self.exec_block(node.body, env)
                self.exec_block(node.orelse, env)
                return
            if fname == "zip" and isinstance(node.target, ast.Tuple):
                elems = [self._element_of(self.eval(a, env)) for a in it.args]
                for tgt, val in zip(node.target.elts, elems):
                    self.assign(tgt, val, None, env)
                self.exec_block(node.body, env)
                self.exec_block(node.orelse, env)
                return
            if fname == "enumerate" and isinstance(node.target, ast.Tuple):
                seq = self.eval(it.args[0], env) if it.args else UNKNOWN
                tgts = node.target.elts
                if len(tgts) == 2:
                    self.assign(tgts[0], SCALAR, None, env)
                    self.assign(tgts[1], self._element_of(seq), None, env)
                self.exec_block(node.body, env)
                self.exec_block(node.orelse, env)
                return
        itval = self.eval(it, env)
        self.assign(node.target, self._element_of(itval), None, env)
        self.exec_block(node.body, env)
        self.exec_block(node.orelse, env)

    def _element_of(self, v: Value) -> Value:
        """Value of one element when iterating / zip-destructuring ``v``."""
        if v.kind == "array" and v.shape is not None and len(v.shape) == 1:
            return _scalar(v.dtype)
        if v.kind in ("scalar", "range"):
            return SCALAR
        # container of unknown rank: keep provenance (a list of injective
        # maps yields injective maps; sub-arrays still alias the base)
        return Value(
            kind="unknown",
            injective=v.injective,
            aliases=v.aliases,
        )

    # -- assignment ----------------------------------------------------
    def assign(
        self,
        target: ast.expr,
        value: Value,
        value_node: ast.expr | None,
        env: dict[str, Value],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if value.kind == "tuple" and len(value.elts) == len(target.elts):
                for tgt, val in zip(target.elts, value.elts):
                    self.assign(tgt, val, None, env)
            else:
                for tgt in target.elts:
                    self.assign(tgt, UNKNOWN, None, env)
        elif isinstance(target, ast.Subscript):
            self.subscript_store(target, value, value_node, env, augmented=False)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            roots = frozenset(f"{a}.{target.attr}" for a in base.aliases)
            if roots:
                self.ir.mutations.append(
                    Mutation(
                        lineno=target.lineno,
                        target=ast.unparse(target),
                        roots=roots,
                        via="attribute",
                    )
                )
        elif isinstance(target, ast.Starred):
            self.assign(target.value, UNKNOWN, None, env)

    def aug_assign(self, node: ast.AugAssign, env: dict[str, Value]) -> None:
        value = self.eval(node.value, env)
        target = node.target
        if isinstance(target, ast.Name):
            tv = env.get(target.id, UNKNOWN)
            if tv.aliases:
                self.ir.mutations.append(
                    Mutation(
                        lineno=node.lineno,
                        target=target.id,
                        roots=tv.aliases,
                        via="augassign",
                    )
                )
            if tv.kind == "array" and _is_downcast(tv.dtype, value.dtype):
                self.ir.cast_issues.append(
                    CastIssue(node.lineno, target.id, value.dtype, tv.dtype)  # type: ignore[arg-type]
                )
            if tv.kind == "array" and value.kind == "array":
                self._check_broadcast(node.lineno, tv, value)
            # in-place op keeps dtype/shape; uniqueness is not preserved
            env[target.id] = Value(
                kind=tv.kind,
                shape=tv.shape,
                dtype=tv.dtype,
                unique=tv.unique and value.kind == "scalar"
                and isinstance(node.op, (ast.Add, ast.Sub)),
                injective=False,
                aliases=tv.aliases,
            ) if tv.kind == "array" else tv
        elif isinstance(target, ast.Subscript):
            self.subscript_store(target, value, node.value, env, augmented=True)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value, env)
            roots = frozenset(f"{a}.{target.attr}" for a in base.aliases)
            if roots:
                self.ir.mutations.append(
                    Mutation(
                        lineno=node.lineno,
                        target=ast.unparse(target),
                        roots=roots,
                        via="augassign",
                    )
                )

    def subscript_store(
        self,
        target: ast.Subscript,
        value: Value,
        value_node: ast.expr | None,
        env: dict[str, Value],
        augmented: bool,
    ) -> None:
        base = self.eval(target.value, env)
        mode, idx = self._classify_index(target.slice, env)
        if base.aliases:
            self.ir.mutations.append(
                Mutation(
                    lineno=target.lineno,
                    target=ast.unparse(target.value),
                    roots=base.aliases,
                    via="subscript",
                )
            )
        if mode == "fancy":
            value_scalar = value.kind == "scalar" or isinstance(
                value_node, ast.Constant
            )
            self.ir.scatters.append(
                Scatter(
                    lineno=target.lineno,
                    target=ast.unparse(target),
                    roots=base.aliases,
                    index_unique=idx.unique,
                    augmented=augmented,
                    value_scalar=value_scalar,
                )
            )
        if base.kind == "array" and _is_downcast(base.dtype, value.dtype):
            self.ir.cast_issues.append(
                CastIssue(
                    target.lineno, ast.unparse(target.value),
                    value.dtype, base.dtype,  # type: ignore[arg-type]
                )
            )
        # mask / basic stores hit each selected position at most once —
        # no aliasing is possible, so no scatter event is recorded

    # -- expressions ---------------------------------------------------
    def eval(self, node: ast.expr, env: dict[str, Value]) -> Value:
        if isinstance(node, ast.Name):
            if node.id in self.np_aliases:
                return Value(kind="module")
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _scalar("bool")
            if isinstance(node.value, int):
                return _scalar("int64")
            if isinstance(node.value, float):
                return _scalar("float64")
            return SCALAR
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node, env)
        if isinstance(node, ast.Compare):
            return self.eval_compare(node, env)
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v, env)
            return _scalar("bool")
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return _scalar("bool")
            return operand
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return _join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List)):
            return Value(
                kind="tuple",
                elts=tuple(self.eval(e, env) for e in node.elts),
            )
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return Value(kind="slice")
        if isinstance(node, ast.JoinedStr):
            return SCALAR
        # comprehensions, lambdas, starred, dict/set literals, ...
        return UNKNOWN

    def eval_attribute(self, node: ast.Attribute, env: dict[str, Value]) -> Value:
        # numpy dtype literal (np.intp, np.uint8, ...)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.np_aliases
        ):
            if node.attr in _DTYPE_NAMES:
                return Value(kind="dtype", dtype=_normalize_dtype(node.attr))
            return Value(kind="module")
        base = self.eval(node.value, env)
        if node.attr == "shape":
            if base.shape is not None:
                return Value(kind="shape", elts=tuple(base.shape))
            return Value(kind="shape")
        if node.attr == "dtype":
            return Value(kind="dtype", dtype=base.dtype)
        if node.attr in ("size", "ndim", "itemsize", "nbytes"):
            return _scalar("int64")
        if node.attr == "T":
            return Value(
                kind=base.kind, dtype=base.dtype, unique=base.unique,
                aliases=base.aliases,
            )
        # dotted contract fact (e.g. "ct.maps", "self.states")
        for alias in base.aliases:
            fact = self._facts(f"{alias}.{node.attr}")
            if fact is not None:
                return fact
        return Value(
            kind="unknown",
            aliases=frozenset(f"{a}.{node.attr}" for a in base.aliases),
        )

    # -- indexing ------------------------------------------------------
    def _classify_index(
        self, index: ast.expr, env: dict[str, Value]
    ) -> tuple[str, Value]:
        """Classify an index expression: basic / mask / fancy / multi."""
        if isinstance(index, ast.Tuple):
            elem_vals = []
            any_array = False
            for e in index.elts:
                if isinstance(e, ast.Slice) or (
                    isinstance(e, ast.Constant) and e.value is None
                ):
                    elem_vals.append(Value(kind="slice"))
                    continue
                v = self.eval(e, env)
                elem_vals.append(v)
                if v.kind == "array":
                    any_array = True
            if any_array:
                return "multi", Value(kind="tuple", elts=tuple(elem_vals))
            return "basic", Value(kind="slice")
        if isinstance(index, ast.Slice):
            self.eval(index, env)
            return "basic", Value(kind="slice")
        v = self.eval(index, env)
        if v.kind == "array":
            if v.dtype == "bool" or v.round_mask:
                return "mask", v
            return "fancy", v
        return "basic", v

    def eval_subscript(self, node: ast.Subscript, env: dict[str, Value]) -> Value:
        base = self.eval(node.value, env)
        mode, idx = self._classify_index(node.slice, env)
        if mode == "mask":
            return Value(
                kind="array",
                shape=(None,),
                dtype=base.dtype,
                unique=base.unique or idx.round_mask,
            )
        if mode == "fancy":
            return Value(
                kind="array",
                shape=idx.shape,
                dtype=base.dtype,
                unique=base.injective and idx.unique,
                injective=base.injective and idx.injective,
            )
        if mode == "multi":
            return Value(kind="array", dtype=base.dtype)
        # basic indexing: a view (slice) or an element
        if isinstance(node.slice, (ast.Slice, ast.Tuple)):
            return Value(
                kind=base.kind,
                dtype=base.dtype,
                unique=base.unique and isinstance(node.slice, ast.Slice),
                injective=base.injective,
                aliases=base.aliases,
            )
        if base.kind == "shape":
            return _scalar("int64")
        if base.kind == "tuple" and isinstance(node.slice, ast.Constant):
            i = node.slice.value
            if isinstance(i, int) and -len(base.elts) <= i < len(base.elts):
                return base.elts[i]
        if base.kind == "array" and base.shape is not None:
            if len(base.shape) == 1:
                return _scalar(base.dtype)
            return Value(
                kind="array",
                shape=tuple(base.shape[1:]),
                dtype=base.dtype,
                aliases=base.aliases,
            )
        # element of an unknown container: keep provenance, stay a view
        return Value(
            kind="unknown",
            dtype=base.dtype,
            injective=base.injective,
            aliases=base.aliases,
        )

    # -- binary ops / comparisons --------------------------------------
    def _check_broadcast(self, lineno: int, left: Value, right: Value) -> None:
        _, conflict = _broadcast(left.shape, right.shape)
        if conflict is not None:
            self.ir.shape_issues.append(
                ShapeIssue(
                    lineno,
                    f"operands have incompatible shapes "
                    f"{left.shape} vs {right.shape} "
                    f"(dims {conflict[0]} != {conflict[1]})",
                )
            )

    def eval_binop(self, node: ast.BinOp, env: dict[str, Value]) -> Value:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if left.kind != "array" and right.kind != "array":
            if left.kind == "scalar" or right.kind == "scalar":
                return _scalar(_promote(left.dtype, right.dtype))
            return UNKNOWN
        arr, other = (left, right) if left.kind == "array" else (right, left)
        if left.kind == "array" and right.kind == "array":
            self._check_broadcast(node.lineno, left, right)
            shape, _ = _broadcast(left.shape, right.shape)
        else:
            shape = arr.shape
        # adding/subtracting a scalar shifts all elements equally:
        # pairwise distinctness is preserved (multiplication is not —
        # a zero factor collapses everything)
        unique = (
            arr.unique
            and other.kind == "scalar"
            and isinstance(node.op, (ast.Add, ast.Sub))
        )
        return Value(
            kind="array",
            shape=shape,
            dtype=_promote(left.dtype, right.dtype),
            unique=unique,
        )

    def eval_compare(self, node: ast.Compare, env: dict[str, Value]) -> Value:
        left = self.eval(node.left, env)
        rights = [self.eval(c, env) for c in node.comparators]
        # occ == r : the occurrence-round dedup mask
        if (
            len(rights) == 1
            and isinstance(node.ops[0], ast.Eq)
            and (left.occ_index or rights[0].occ_index)
        ):
            occ = left if left.occ_index else rights[0]
            return Value(
                kind="array", shape=occ.shape, dtype="bool", round_mask=True
            )
        arrays = [v for v in [left] + rights if v.kind == "array"]
        if arrays:
            shape = arrays[0].shape
            if len(arrays) >= 2:
                self._check_broadcast(node.lineno, arrays[0], arrays[1])
                shape, _ = _broadcast(arrays[0].shape, arrays[1].shape)
            return Value(kind="array", shape=shape, dtype="bool")
        return _scalar("bool")

    # -- calls ---------------------------------------------------------
    def eval_call(self, node: ast.Call, env: dict[str, Value]) -> Value:
        args = [
            self.eval(a, env)
            for a in node.args
            if not isinstance(a, ast.Starred)
        ]
        kwargs = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        dotted = _dotted(node.func)

        # numpy API
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head in self.np_aliases and rest:
                return self.eval_np_call(node, rest, args, kwargs, env)

        # registered kernel called by bare name
        if isinstance(node.func, ast.Name):
            callee = self.globals.get(node.func.id)
            if callee is not None and contract_of(callee) is not None:
                return self.apply_contract(node, callee, args, kwargs)
            return self.eval_builtin(node.func.id, node, args, kwargs, env)

        # method call obj.m(...)
        if isinstance(node.func, ast.Attribute):
            base = self.eval(node.func.value, env)
            method = node.func.attr
            # self.method(...) resolving to a registered kernel
            callee = self._resolve_method(node.func)
            if callee is not None:
                return self.apply_contract(node, callee, [base] + args, kwargs)
            return self.eval_method(node, base, method, args, kwargs)
        return UNKNOWN

    def _resolve_method(self, func: ast.Attribute) -> Callable[..., Any] | None:
        """Resolve ``self.m(...)`` to a registered kernel of the same class."""
        if not (isinstance(func.value, ast.Name) and func.value.id == "self"):
            return None
        qual = self.ir.qualname
        if "." not in qual:
            return None
        cls_name = qual.rsplit(".", 1)[0]
        from .contracts import KERNEL_REGISTRY

        return KERNEL_REGISTRY.get(f"{self.ir.module}.{cls_name}.{func.attr}")

    def apply_contract(
        self,
        node: ast.Call,
        callee: Callable[..., Any],
        args: list[Value],
        kwargs: dict[str, Value],
    ) -> Value:
        """Map a registered callee's declared effects onto our roots."""
        contract = contract_of(callee)
        assert contract is not None
        try:
            params = list(inspect.signature(callee).parameters)
        except (TypeError, ValueError):  # pragma: no cover
            return UNKNOWN
        binding: dict[str, Value] = {}
        for name, val in zip(params, args):
            binding[name] = val
        for name, val in kwargs.items():
            if name in params:
                binding[name] = val
        for declared in (*contract.writes, *contract.caches):
            root_param, _, rest = declared.partition(".")
            bound = binding.get(root_param)
            if bound is None or not bound.aliases:
                continue
            roots = frozenset(
                f"{a}.{rest}" if rest else a for a in bound.aliases
            )
            self.ir.mutations.append(
                Mutation(
                    lineno=node.lineno,
                    target=f"{contract.name}({declared})",
                    roots=roots,
                    via="call",
                )
            )
        if contract.returns == "occurrence_index":
            first = args[0] if args else UNKNOWN
            return Value(
                kind="array", shape=first.shape, dtype="intp", occ_index=True
            )
        return UNKNOWN

    def eval_builtin(
        self,
        name: str,
        node: ast.Call,
        args: list[Value],
        kwargs: dict[str, Value],
        env: dict[str, Value],
    ) -> Value:
        if name == "memoryview" and args:
            src = args[0]
            return Value(
                kind="array", shape=src.shape, dtype=src.dtype,
                aliases=src.aliases,
            )
        if name in ("int", "float", "bool", "len", "sum", "max", "min",
                    "abs", "round", "id", "ord", "hash"):
            dtypes = {"int": "int64", "float": "float64", "bool": "bool"}
            return _scalar(dtypes.get(name))
        if name == "range":
            return Value(kind="range")
        if name in ("list", "tuple", "sorted", "set", "dict", "frozenset"):
            return Value(kind="tuple") if not args else Value(
                kind="unknown", unique=args[0].unique
            )
        if name in ("zip", "enumerate", "reversed", "getattr", "isinstance",
                    "print", "repr", "str", "format", "vars", "type"):
            return UNKNOWN
        return UNKNOWN

    def eval_np_call(
        self,
        node: ast.Call,
        func: str,
        args: list[Value],
        kwargs: dict[str, Value],
        env: dict[str, Value],
    ) -> Value:
        """Semantics of the numpy calls the kernels use."""
        a0 = args[0] if args else UNKNOWN
        dtype = None
        if "dtype" in kwargs:
            dtype = kwargs["dtype"].dtype

        # ufunc.at — the safe unbuffered scatter-accumulate
        if func.endswith(".at"):
            if a0.aliases:
                self.ir.mutations.append(
                    Mutation(
                        lineno=node.lineno,
                        target=ast.unparse(node.args[0]) if node.args else "?",
                        roots=a0.aliases,
                        via="call",
                    )
                )
            return UNKNOWN
        if func in ("asarray", "ascontiguousarray", "asfortranarray"):
            return Value(
                kind="array",
                shape=a0.shape,
                dtype=dtype or a0.dtype,
                unique=a0.unique,
                injective=a0.injective,
                aliases=a0.aliases,
            )
        if func == "arange":
            return Value(
                kind="array", shape=(None,), dtype=dtype or "intp",
                unique=True, injective=True,
            )
        if func == "unique":
            base = Value(kind="array", shape=(None,), dtype=a0.dtype, unique=True)
            extras = [
                k for k in ("return_index", "return_inverse", "return_counts")
                if k in kwargs
            ]
            if extras:
                others = tuple(
                    Value(kind="array", shape=(None,), dtype="intp",
                          unique=(k == "return_index"))
                    for k in extras
                )
                return Value(kind="tuple", elts=(base, *others))
            return base
        if func in ("flatnonzero", "argsort"):
            return Value(
                kind="array", shape=(None,), dtype="intp",
                unique=True, injective=(func == "argsort"),
            )
        if func == "nonzero":
            one_d = a0.shape is not None and len(a0.shape) == 1
            elt = Value(kind="array", shape=(None,), dtype="intp", unique=one_d)
            return Value(kind="tuple", elts=(elt, elt))
        if func == "tril_indices":
            elt = Value(kind="array", shape=(None,), dtype="intp")
            return Value(kind="tuple", elts=(elt, elt))
        if func in ("zeros", "empty", "ones", "full"):
            shape = None
            if node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, int):
                    shape = (first.value,)
                elif isinstance(first, ast.Tuple):
                    dims = []
                    for e in first.elts:
                        if isinstance(e, ast.Constant) and isinstance(e.value, int):
                            dims.append(e.value)
                        else:
                            dims.append(None)
                    shape = tuple(dims)
                elif a0.kind == "shape" and a0.elts:
                    shape = tuple(
                        None if isinstance(d, Value) else d for d in a0.elts
                    )
            default = "float64" if func != "empty" else None
            return Value(kind="array", shape=shape, dtype=dtype or default)
        if func in ("zeros_like", "empty_like", "ones_like", "full_like"):
            return Value(kind="array", shape=a0.shape, dtype=dtype or a0.dtype)
        if func == "bincount":
            return Value(kind="array", shape=(None,), dtype="intp")
        if func == "array":
            return Value(kind="array", dtype=dtype)
        if func in ("concatenate", "hstack", "vstack", "stack", "repeat",
                    "tile", "where", "cumsum", "sort", "searchsorted",
                    "minimum", "maximum", "clip", "add", "subtract",
                    "abs", "sign", "mod"):
            arrays = [v for v in args if v.kind == "array"]
            if func in ("minimum", "maximum", "add", "subtract", "mod") and len(arrays) >= 2:
                self._check_broadcast(node.lineno, arrays[0], arrays[1])
            shape = arrays[0].shape if len(arrays) == 1 else None
            out_dtype = arrays[0].dtype if arrays else a0.dtype
            if func in ("concatenate", "hstack", "vstack", "stack", "repeat", "tile"):
                shape, out_dtype = None, None
            return Value(kind="array", shape=shape, dtype=out_dtype)
        if func in ("count_nonzero", "sum", "dot", "argmax", "argmin", "prod"):
            return _scalar("int64" if func in ("count_nonzero", "argmax", "argmin") else None)
        if func == "unravel_index":
            elt = Value(kind="array", dtype="intp")
            return Value(kind="tuple", elts=(elt, elt))
        return UNKNOWN

    def eval_method(
        self,
        node: ast.Call,
        base: Value,
        method: str,
        args: list[Value],
        kwargs: dict[str, Value],
    ) -> Value:
        if method == "reshape":
            shape: tuple | None = None
            if len(node.args) == 1:
                arg_node = node.args[0]
                argval = args[0]
                if argval.kind == "shape" and argval.elts:
                    shape = tuple(
                        d if not isinstance(d, Value) else None
                        for d in argval.elts
                    )
                elif (
                    isinstance(arg_node, ast.UnaryOp)
                    and isinstance(arg_node.op, ast.USub)
                    and isinstance(arg_node.operand, ast.Constant)
                    and arg_node.operand.value == 1
                ):
                    if base.shape is not None and all(
                        d is not None for d in base.shape
                    ):
                        shape = ("*".join(str(d) for d in base.shape),)
                    else:
                        shape = (None,)
            return Value(
                kind="array", shape=shape, dtype=base.dtype,
                unique=base.unique, aliases=base.aliases,
            )
        if method == "astype":
            # explicit casts are intentional — never an SR043
            new_dtype = args[0].dtype if args else None
            return Value(
                kind="array", shape=base.shape, dtype=new_dtype,
                unique=base.unique,
            )
        if method == "copy":
            return Value(
                kind=base.kind, shape=base.shape, dtype=base.dtype,
                unique=base.unique, injective=base.injective,
            )
        if method in ("max", "min", "sum", "mean", "prod", "std", "var"):
            if "axis" in kwargs:
                return Value(kind="array", dtype=base.dtype)
            return _scalar(base.dtype)
        if method in ("any", "all"):
            return _scalar("bool")
        if method in ("item", "tolist", "get", "keys", "values", "items",
                      "view", "ravel", "flatten", "nonzero", "cumsum"):
            if method == "item":
                return _scalar(base.dtype)
            if method in ("ravel", "flatten", "view"):
                return Value(
                    kind="array", dtype=base.dtype, unique=base.unique,
                    aliases=base.aliases if method != "flatten" else frozenset(),
                )
            return UNKNOWN
        if method == "permutation":
            # Generator.permutation — a random permutation is injective
            return Value(
                kind="array", shape=(None,), dtype="int64",
                unique=True, injective=True,
            )
        if method in _MUTATING_METHODS:
            if base.aliases:
                self.ir.mutations.append(
                    Mutation(
                        lineno=node.lineno,
                        target=ast.unparse(node.func),
                        roots=base.aliases,
                        via="method",
                    )
                )
            return UNKNOWN
        return UNKNOWN


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def build_ir(fn: Callable[..., Any], source: str | None = None) -> KernelIR:
    """Parse and abstractly interpret one decorated kernel.

    ``source`` overrides ``inspect.getsource`` — used by the mutation
    tests to analyze a textually mutated copy of a shipped kernel.
    """
    contract = contract_of(fn)
    if contract is None:
        raise ValueError(f"{fn.__qualname__} has no @kernel contract")
    offset = 0
    if source is None:
        source = inspect.getsource(fn)
        # report absolute file linenos for real (non-mutated) sources
        offset = getattr(getattr(fn, "__code__", None), "co_firstlineno", 1) - 1
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    if offset:
        ast.increment_lineno(tree, offset)
    fdef = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    params = tuple(
        a.arg
        for a in (
            fdef.args.posonlyargs + fdef.args.args + fdef.args.kwonlyargs
        )
    )
    ir = KernelIR(
        name=fn.__name__,
        qualname=fn.__qualname__,
        module=fn.__module__,
        contract=contract,
        params=params,
    )
    for lineno, line in enumerate(source.splitlines(), start=1 + offset):
        m = _PRAGMA_RE.search(line)
        if m:
            ir.pragmas.setdefault(lineno, {})[m.group(1)] = m.group(2)
    _Interp(fn, ir).run(fdef.body)
    return ir
