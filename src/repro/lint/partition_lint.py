"""The symbolic partition race detector.

Chunk membership of a modular tiling is a *residue class*: site ``x``
belongs to chunk ``(c . x) mod m``.  Two sites ``s`` and
``t = s + d`` therefore share a chunk iff ``(c . d) ≡ 0 (mod m)`` — a
statement in offset algebra that never mentions the lattice size.
Combining it with the conflict difference set ``D`` of the model
(:func:`repro.lint.offsets.conflict_witnesses`) turns the non-overlap
rule into residue arithmetic:

*Proof obligation (all aligned sizes).*  The tiling is conflict-free
on **every** periodic lattice whose sides satisfy
``c_k * L_k ≡ 0 (mod m)`` (equivalently ``L_k ≡ 0`` modulo
``m / gcd(c_k, m)``) iff ``(c . d) mod m != 0`` for all ``d in D``.
On aligned lattices the periodic wrap shifts labels by
``c_k * L_k ≡ 0``, so the infinite-lattice residue criterion is exact.

*Finite shapes (wrap analysis).*  On an arbitrary shape ``(L_0, ...)``
the wrapped label difference acquires a *borrow* term: for
``t = wrap(s + d)`` one has
``label(t) - label(s) ≡ c . d - Σ_k c_k β_k L_k (mod m)`` where
``β_k = floor((s_k + d_k)/L_k)`` ranges over a small integer interval.
Enumerating the ``O(2^ndim)`` achievable borrow vectors per
displacement decides conflict-freedom for the given shape exactly — in
``O(|D|)`` arithmetic, still without enumerating sites — and yields a
minimal witness site for every collision.

Each refutation is materialised as a
:class:`~repro.lint.offsets.Conflict`: a concrete site pair, the
reaction pair anchored there, and the overlapping lattice cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from math import gcd
from typing import Sequence

from ..core.lattice import Offset
from ..core.model import Model
from .diagnostics import Diagnostic, LintReport
from .offsets import Conflict, Witness, conflict_witnesses

__all__ = [
    "TilingProof",
    "prove_tiling",
    "check_tiling_on_shape",
    "tiling_conflicts_on_shape",
    "lint_partition",
]


@dataclass(frozen=True)
class TilingProof:
    """A certificate that a modular tiling satisfies the non-overlap rule.

    Valid for **all** periodic lattices whose side ``L_k`` is a
    multiple of ``aligned_moduli[k]`` on every axis — in particular for
    every lattice the constructors in :mod:`repro.partition.tilings`
    recommend.  ``n_displacements`` records the size of the conflict
    difference set the residue criterion was checked against.
    """

    m: int
    coeffs: tuple[int, ...]
    n_displacements: int
    aligned_moduli: tuple[int, ...]

    def statement(self) -> str:
        """The proof as one sentence (printed by ``python -m repro lint``)."""
        sides = ", ".join(
            f"L{k} ≡ 0 (mod {mod})" for k, mod in enumerate(self.aligned_moduli)
        )
        return (
            f"proof: tiling (x . {self.coeffs}) mod {self.m} is conflict-free "
            f"for ALL periodic lattices with {sides} — residue (c . d) mod "
            f"{self.m} is nonzero for each of the {self.n_displacements} "
            f"conflict displacements"
        )


def _residue(coeffs: Sequence[int], d: Sequence[int], m: int) -> int:
    """``(c . d) mod m``."""
    return sum(int(c) * int(x) for c, x in zip(coeffs, d)) % m


def _check_spec(model: Model, m: int, coeffs: Sequence[int]) -> tuple[int, ...]:
    """Validate a tiling spec against a model; returns coeffs as a tuple."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    coeffs = tuple(int(c) for c in coeffs)
    if len(coeffs) != model.ndim:
        raise ValueError(
            f"tiling has {len(coeffs)} coefficients but model "
            f"{model.name!r} is {model.ndim}-d"
        )
    return coeffs


def _conflict_from_witness(
    site_s: tuple[int, ...],
    d: Offset,
    w: Witness,
    chunk: int,
    shape: Sequence[int] | None,
) -> Conflict:
    """Materialise a counterexample; wraps coordinates when a shape is given."""

    def _wrap(x: tuple[int, ...]) -> tuple[int, ...]:
        if shape is None:
            return x
        return tuple(int(c) % int(s) for c, s in zip(x, shape))

    site_t = _wrap(tuple(s + dd for s, dd in zip(site_s, d)))
    cell = _wrap(tuple(s + a for s, a in zip(site_s, w.offset_a)))
    return Conflict(
        site_s=site_s,
        site_t=site_t,
        chunk=chunk,
        displacement=d,
        reaction_a=w.reaction_a,
        offset_a=w.offset_a,
        reaction_b=w.reaction_b,
        offset_b=w.offset_b,
        cell=cell,
    )


def prove_tiling(
    model: Model, m: int, coeffs: Sequence[int]
) -> tuple[TilingProof | None, list[Conflict]]:
    """Prove the tiling conflict-free for all aligned lattice sizes.

    Returns ``(proof, [])`` on success or ``(None, counterexamples)``
    with one minimal counterexample per violating displacement (anchor
    at the origin; coordinates are infinite-lattice, i.e. unwrapped).
    No lattice is ever enumerated.
    """
    coeffs = _check_spec(model, m, coeffs)
    witnesses = conflict_witnesses(model)
    bad: list[Conflict] = []
    for d in sorted(witnesses):
        if _residue(coeffs, d, m) == 0:
            origin = (0,) * model.ndim
            bad.append(
                _conflict_from_witness(origin, d, witnesses[d], chunk=0, shape=None)
            )
    if bad:
        return None, bad
    aligned = tuple(m // gcd(c % m, m) if c % m else 1 for c in coeffs)
    return TilingProof(m, coeffs, len(witnesses), aligned), []


def _borrow_ranges(d: Offset, shape: Sequence[int]) -> list[range]:
    """Achievable borrow values ``β_k = floor((s_k + d_k)/L_k)`` per axis."""
    out = []
    for dk, lk in zip(d, shape):
        out.append(range(dk // lk, (lk - 1 + dk) // lk + 1))
    return out


def tiling_conflicts_on_shape(
    model: Model,
    m: int,
    coeffs: Sequence[int],
    shape: Sequence[int],
    limit: int = 8,
) -> list[Conflict]:
    """All conflicts of a modular tiling on one finite periodic shape.

    Exact (no false positives or negatives) and symbolic: the borrow
    enumeration touches ``O(|D| * 2^ndim)`` residues, never the ``N``
    sites.  Returns at most one counterexample per displacement, at
    most ``limit`` in total; an empty list is a conflict-freedom proof
    for this shape.
    """
    coeffs = _check_spec(model, m, coeffs)
    shape = tuple(int(s) for s in shape)
    if len(shape) != model.ndim:
        raise ValueError(f"shape {shape} does not match a {model.ndim}-d model")
    witnesses = conflict_witnesses(model)
    out: list[Conflict] = []
    for d in sorted(witnesses):
        if all(dk % lk == 0 for dk, lk in zip(d, shape)):
            continue  # wraps onto the anchor itself: not a site pair
        for beta in itertools.product(*_borrow_ranges(d, shape)):
            label_diff = sum(
                c * (dk - bk * lk) for c, dk, bk, lk in zip(coeffs, d, beta, shape)
            )
            if label_diff % m:
                continue
            site_s = tuple(
                max(0, bk * lk - dk) for dk, bk, lk in zip(d, beta, shape)
            )
            chunk = _residue(coeffs, site_s, m)
            out.append(
                _conflict_from_witness(site_s, d, witnesses[d], chunk, shape)
            )
            break  # one witness per displacement suffices
        if len(out) >= limit:
            break
    return out


def is_residue_conflict(coeffs: Sequence[int], m: int, d: Sequence[int]) -> bool:
    """Does the displacement collide already on the infinite lattice?

    True: the conflict is size-independent (SR001).  False: it only
    appears through the periodic wrap of a misaligned shape (SR002).
    """
    return _residue(coeffs, d, m) == 0


def check_tiling_on_shape(
    model: Model,
    m: int,
    coeffs: Sequence[int],
    shape: Sequence[int],
    limit: int = 8,
    subject: str | None = None,
) -> LintReport:
    """Lint a modular tiling against a model on one lattice shape.

    Residue-class collisions are reported as ``SR001`` (they fail on
    every aligned size too); collisions introduced only by the wrap of
    this particular shape as ``SR002``.
    """
    coeffs = _check_spec(model, m, coeffs)
    subject = subject or f"tiling((x . {tuple(coeffs)}) mod {m}) on {tuple(shape)}"
    report = LintReport()
    for c in tiling_conflicts_on_shape(model, m, coeffs, shape, limit=limit):
        code = "SR001" if is_residue_conflict(coeffs, m, c.displacement) else "SR002"
        report.add(
            Diagnostic(
                code=code,
                subject=subject,
                message=c.describe(),
                data=c.to_dict(),
            )
        )
    if not report.diagnostics:
        report.note(
            f"{subject}: conflict-free for model {model.name!r} "
            f"(borrow analysis over all conflict displacements)"
        )
    return report


def lint_partition(
    partition,
    model: Model,
    limit: int = 8,
    bounds: bool = False,
) -> LintReport:
    """Lint any :class:`~repro.partition.partition.Partition` instance.

    Partitions carrying tiling metadata are routed through the symbolic
    detector (``SR001``/``SR002``); explicit partitions fall back to
    the bounded enumerative conflict scan (``SR003``).  With
    ``bounds=True`` the chunk count is additionally compared against
    the clique lower bound (``SR004``, informational).
    """
    report = LintReport()
    tiling = getattr(partition, "tiling", None)
    conflicts = partition.find_conflicts(model, limit=limit)
    for c in conflicts:
        if tiling is not None:
            code = (
                "SR001"
                if is_residue_conflict(tiling.coeffs, tiling.m, c.displacement)
                else "SR002"
            )
        else:
            code = "SR003"
        report.add(
            Diagnostic(
                code=code,
                subject=partition.name,
                message=c.describe(),
                data=c.to_dict(),
            )
        )
    if not conflicts:
        report.note(
            f"partition {partition.name!r}: conflict-free for model {model.name!r}"
        )
    if bounds:
        from ..partition.coloring import clique_lower_bound

        lower = clique_lower_bound(model)
        if partition.m > lower:
            report.add(
                Diagnostic(
                    code="SR004",
                    subject=partition.name,
                    message=(
                        f"{partition.m} chunks where the clique lower bound "
                        f"is {lower} (fewer chunks => more parallelism)"
                    ),
                    data={"m": partition.m, "clique_lower_bound": lower},
                )
            )
    return report
