"""A mini C front-end for the cnative translation unit.

The ``cnative`` backend compiles one translation unit written in a
deliberately restricted C subset: fixed-width scalar types
(``stdint.h``), pointer parameters into caller-owned buffers, counted
``for`` loops, ``if``/``break``/``continue``/``return`` — no function
calls, no address-of, no heap, no structs, no globals.  This module
tokenizes and parses exactly that subset into the shared NIR
(:mod:`repro.lint.native.nir`) and **rejects** everything else with a
:class:`~repro.lint.native.nir.NativeSyntaxError`: a construct the
verifier cannot reason about must not silently reach the compiler
trusted with lattice memory.

Grammar (recursive descent, precedence climbing for expressions)::

    unit      := { include | function }
    function  := type IDENT '(' params ')' '{' stmt* '}'
    stmt      := decl ';' | expr ';' | for | if | 'break' ';'
               | 'continue' ';' | 'return' expr? ';' | '{' stmt* '}'
    decl      := ['const'] type ['*'] IDENT ['=' expr]
    for       := 'for' '(' (decl | expr)? ';' expr? ';' expr? ')' stmt
    expr      := ternary with C operator precedence

Assignment/increment expressions are statement-level only (their value
is never consumed), matching how the translation unit is written.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .nir import (
    INT32,
    INT64,
    UINT8,
    VOID,
    Assign,
    AugAssign,
    BinOp,
    Break,
    Cast,
    Cond,
    Continue,
    CType,
    Decl,
    Expr,
    For,
    If,
    IntLit,
    Index,
    Name,
    NativeFunc,
    NativeSyntaxError,
    Return,
    Stmt,
    Unary,
)

__all__ = ["parse_c_unit", "tokenize"]

_TYPE_NAMES: dict[str, CType] = {
    "int64_t": INT64,
    "int32_t": INT32,
    "uint8_t": UINT8,
    "void": VOID,
}

_KEYWORDS = {
    "for", "if", "else", "while", "break", "continue", "return", "const",
} | set(_TYPE_NAMES)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|/\*.*?\*/|//[^\n]*)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct><<=|>>=|\+\+|--|&&|\|\||<=|>=|==|!=|\+=|-=|\*=|/=|%=|->|[-+*/%<>=!&|?:;,(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # num | ident | punct
    text: str
    lineno: int


def tokenize(source: str) -> list[Token]:
    """Tokenize a translation unit; rejects unknown characters."""
    tokens: list[Token] = []
    pos = 0
    lineno = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            snippet = source[pos: pos + 20].splitlines()[0]
            raise NativeSyntaxError(
                f"line {lineno}: unexpected character {snippet!r}"
            )
        text = m.group(0)
        if m.lastgroup != "ws":
            tokens.append(Token(m.lastgroup or "?", text, lineno))
        lineno += text.count("\n")
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    def peek(self, ahead: int = 0) -> Token | None:
        i = self.pos + ahead
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise NativeSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok is None or tok.text != text:
            got = tok.text if tok else "<eof>"
            line = tok.lineno if tok else "?"
            raise NativeSyntaxError(f"line {line}: expected {text!r}, got {got!r}")
        return self.next()

    def _err(self, msg: str) -> NativeSyntaxError:
        tok = self.peek()
        line = tok.lineno if tok else "?"
        return NativeSyntaxError(f"line {line}: {msg}")

    # -- types ---------------------------------------------------------
    def at_type(self) -> bool:
        tok = self.peek()
        if tok is None:
            return False
        if tok.text == "const":
            tok = self.peek(1)
            return tok is not None and tok.text in _TYPE_NAMES
        return tok.text in _TYPE_NAMES

    def parse_type(self) -> CType:
        const = self.accept("const")
        tok = self.next()
        base = _TYPE_NAMES.get(tok.text)
        if base is None:
            raise NativeSyntaxError(
                f"line {tok.lineno}: unknown type {tok.text!r} (the "
                f"restricted subset allows {sorted(_TYPE_NAMES)})"
            )
        pointer = self.accept("*")
        return CType(base.name, base.bits, base.signed, pointer=pointer, const=const)

    # -- translation unit ----------------------------------------------
    def parse_unit(self) -> list[NativeFunc]:
        funcs: list[NativeFunc] = []
        while self.peek() is not None:
            # preprocessor lines were stripped before tokenizing
            funcs.append(self.parse_function())
        return funcs

    def parse_function(self) -> NativeFunc:
        ret = self.parse_type()
        name_tok = self.next()
        if name_tok.kind != "ident" or name_tok.text in _KEYWORDS:
            raise NativeSyntaxError(
                f"line {name_tok.lineno}: expected function name, got "
                f"{name_tok.text!r}"
            )
        self.expect("(")
        params: list[tuple[str, CType]] = []
        if not self.at(")"):
            while True:
                ptype = self.parse_type()
                ptok = self.next()
                if ptok.kind != "ident":
                    raise NativeSyntaxError(
                        f"line {ptok.lineno}: expected parameter name"
                    )
                params.append((ptok.text, ptype))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return NativeFunc(
            name=name_tok.text,
            params=tuple(params),
            ret=ret,
            body=tuple(body),
            lang="c",
            lineno=name_tok.lineno,
        )

    # -- statements ----------------------------------------------------
    def parse_block(self) -> list[Stmt]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.at("}"):
            stmts.extend(self.parse_stmt())
        self.expect("}")
        return stmts

    def parse_stmt(self) -> list[Stmt]:
        tok = self.peek()
        assert tok is not None
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "for":
            return [self.parse_for()]
        if tok.text == "if":
            return [self.parse_if()]
        if tok.text == "while":
            raise self._err(
                "while loops are outside the restricted subset (use a "
                "counted for loop)"
            )
        if self.accept("break"):
            self.expect(";")
            return [Break(lineno=tok.lineno)]
        if self.accept("continue"):
            self.expect(";")
            return [Continue(lineno=tok.lineno)]
        if self.accept("return"):
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return [Return(value, lineno=tok.lineno)]
        if self.at_type():
            decl = self.parse_decl()
            self.expect(";")
            return [decl]
        stmt = self.parse_expr_stmt()
        self.expect(";")
        return [stmt]

    def parse_decl(self) -> Decl:
        tok = self.peek()
        assert tok is not None
        ctype = self.parse_type()
        name_tok = self.next()
        if name_tok.kind != "ident":
            raise NativeSyntaxError(
                f"line {name_tok.lineno}: expected declarator name"
            )
        init = None
        if self.accept("="):
            init = self.parse_expr()
        return Decl(name_tok.text, ctype, init, lineno=tok.lineno)

    def parse_expr_stmt(self) -> Stmt:
        """Assignment / compound assignment / increment as a statement."""
        tok = self.peek()
        assert tok is not None
        if tok.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            if not isinstance(target, Name):
                raise self._err("++/-- applies to a variable only")
            op = "+" if tok.text == "++" else "-"
            return AugAssign(target, op, IntLit(1, tok.lineno), lineno=tok.lineno)
        expr = self.parse_ternary()
        nxt = self.peek()
        if nxt is not None and nxt.text == "=":
            self.next()
            value = self.parse_expr()
            if not isinstance(expr, (Name, Index, Unary)):
                raise self._err("unsupported assignment target")
            return Assign(expr, value, lineno=tok.lineno)
        if nxt is not None and nxt.text in ("+=", "-=", "*=", "/=", "%="):
            self.next()
            value = self.parse_expr()
            if not isinstance(expr, (Name, Index, Unary)):
                raise self._err("unsupported assignment target")
            return AugAssign(expr, nxt.text[0], value, lineno=tok.lineno)
        if nxt is not None and nxt.text in ("++", "--"):
            self.next()
            if not isinstance(expr, Name):
                raise self._err("++/-- applies to a variable only")
            op = "+" if nxt.text == "++" else "-"
            return AugAssign(expr, op, IntLit(1, tok.lineno), lineno=tok.lineno)
        raise self._err(
            "expression statements without effect are outside the subset"
        )

    def parse_for(self) -> For:
        tok = self.expect("for")
        self.expect("(")
        init_name: str | None = None
        init_ctype: CType | None = None
        init_expr: Expr | None = None
        if not self.at(";"):
            if self.at_type():
                decl = self.parse_decl()
                init_name, init_ctype, init_expr = decl.name, decl.ctype, decl.init
            else:
                stmt = self.parse_expr_stmt()
                if not (isinstance(stmt, Assign) and isinstance(stmt.target, Name)):
                    raise self._err("for-init must assign the induction variable")
                init_name, init_expr = stmt.target.id, stmt.value
        self.expect(";")
        if self.at(";"):
            raise self._err("for loops need a bound condition")
        cond = self.parse_expr()
        self.expect(";")
        if self.at(")"):
            raise self._err("for loops need an increment")
        step_stmt = self.parse_expr_stmt()
        self.expect(")")
        body_stmts = self.parse_stmt()

        if not (
            isinstance(step_stmt, AugAssign)
            and isinstance(step_stmt.target, Name)
            and isinstance(step_stmt.value, IntLit)
            and step_stmt.value.value == 1
            and step_stmt.op in ("+", "-")
        ):
            raise self._err("for-increment must be ++v / --v / v += 1")
        var = step_stmt.target.id
        step = 1 if step_stmt.op == "+" else -1
        if init_name is not None and init_name != var:
            raise self._err(
                f"for-init declares {init_name!r} but the increment "
                f"steps {var!r}"
            )
        if not (
            isinstance(cond, BinOp)
            and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.left, Name)
            and cond.left.id == var
        ):
            raise self._err(
                "for-condition must compare the induction variable "
                "against a bound"
            )
        return For(
            var=var,
            var_ctype=init_ctype,
            init=init_expr,
            cond_op=cond.op,
            bound=cond.right,
            step=step,
            body=tuple(body_stmts),
            lineno=tok.lineno,
        )

    def parse_if(self) -> If:
        tok = self.expect("if")
        self.expect("(")
        test = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        orelse: list[Stmt] = []
        if self.accept("else"):
            orelse = self.parse_stmt()
        return If(test, tuple(body), tuple(orelse), lineno=tok.lineno)

    # -- expressions (precedence climbing) -----------------------------
    def parse_expr(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_ternary()
            self.expect(":")
            orelse = self.parse_ternary()
            return Cond(cond, then, orelse, lineno=_lineno(cond))
        return cond

    _LEVELS: tuple[tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while True:
            tok = self.peek()
            if tok is None or tok.text not in self._LEVELS[level]:
                return left
            self.next()
            right = self.parse_binary(level + 1)
            left = BinOp(tok.text, left, right, lineno=tok.lineno)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        assert tok is not None
        if tok.text in ("-", "!", "*"):
            self.next()
            return Unary(tok.text, self.parse_unary(), lineno=tok.lineno)
        if tok.text == "(":
            # cast or parenthesised expression
            nxt = self.peek(1)
            if nxt is not None and (
                nxt.text in _TYPE_NAMES or nxt.text == "const"
            ):
                self.next()
                ctype = self.parse_type()
                self.expect(")")
                return Cast(ctype, self.parse_unary(), lineno=tok.lineno)
            self.next()
            inner = self.parse_expr()
            self.expect(")")
            return self.parse_postfix(inner)
        if tok.kind == "num":
            self.next()
            return IntLit(int(tok.text, 0), lineno=tok.lineno)
        if tok.kind == "ident" and tok.text not in _KEYWORDS:
            self.next()
            return self.parse_postfix(Name(tok.text, lineno=tok.lineno))
        raise self._err(f"unexpected token {tok.text!r} in expression")

    def parse_postfix(self, base: Expr) -> Expr:
        while True:
            tok = self.peek()
            if tok is not None and tok.text == "[":
                self.next()
                idx = self.parse_expr()
                self.expect("]")
                base = Index(base, (idx,), lineno=tok.lineno)
                continue
            if tok is not None and tok.text == "(":
                raise self._err(
                    "function calls are outside the restricted subset"
                )
            return base


def _lineno(expr: Expr) -> int:
    return getattr(expr, "lineno", 0)


_PREPROC_RE = re.compile(r"^\s*#.*$", re.MULTILINE)


def parse_c_unit(source: str) -> list[NativeFunc]:
    """Parse one restricted-C translation unit into NIR functions.

    Preprocessor lines (``#include <stdint.h>``) are stripped; the
    verifier's type table *is* the stdint contract.  Raises
    :class:`NativeSyntaxError` for anything outside the subset.
    """
    stripped = _PREPROC_RE.sub("", source)
    return _Parser(tokenize(stripped)).parse_unit()
