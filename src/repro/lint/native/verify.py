"""The native-tier lint pass: orchestrate parsing, ABI and proofs.

:func:`lint_native` is the ``repro lint --native`` entry point: it
parses the cnative translation unit and the ``@njit`` twins from
*source* (no compiler, no numba import needed), runs the ABI checks
(SR060/SR061), the bounds/overflow abstract interpretation
(SR062/SR063) and the order certificates (SR064) over both tiers, and
returns one :class:`~repro.lint.diagnostics.LintReport`.

:func:`verify_c_translation_unit` is the registration self-check the
cnative backend runs before exposing itself through the registry; it
takes the source and ctypes table as arguments so the backend does not
import this package's callers back (no import cycle).

:func:`lint_verdict` condenses a run into the provenance block bench
records attach to their JSON output.
"""

from __future__ import annotations

import hashlib
import json

from ..diagnostics import Diagnostic, LintReport
from .abi import (
    check_c_abi,
    check_numba_abi,
    check_table_dtypes,
    check_wrapper_guards,
)
from .absint import analyze_entry, check_order
from .cfront import parse_c_unit
from .nir import NativeFunc, NativeSyntaxError
from .pyfront import jit_source, parse_numba_funcs
from .specs import C_SPECS, NUMBA_SPECS, EntrySpec

__all__ = [
    "lint_native",
    "lint_verdict",
    "verify_c_translation_unit",
    "verify_numba_functions",
]

#: every code this pass can emit (recorded in bench provenance)
NATIVE_CODES = ("SR060", "SR061", "SR062", "SR063", "SR064")


def _parse_failure(lang: str, exc: Exception) -> Diagnostic:
    return Diagnostic(
        "SR062",
        f"native:{lang}",
        f"front-end cannot model the {lang} tier, nothing is proven: "
        f"{exc}",
        {"parse_error": str(exc)},
    )


def _analyze(
    funcs: dict[str, NativeFunc],
    specs: tuple[EntrySpec, ...],
    report: LintReport,
) -> None:
    for spec in specs:
        func = funcs.get(spec.name)
        if func is None:
            continue  # the ABI pass already reported SR060
        for d in analyze_entry(func, spec):
            report.add(d)
        for d in check_order(func, spec):
            report.add(d)


def verify_c_translation_unit(
    source: str,
    signatures: dict[str, tuple[tuple[str, ...], str]],
    specs: tuple[EntrySpec, ...] = C_SPECS,
) -> LintReport:
    """Parse + ABI + proofs for one C translation unit."""
    report = LintReport()
    try:
        funcs = {f.name: f for f in parse_c_unit(source)}
    except NativeSyntaxError as exc:
        report.add(_parse_failure("c", exc))
        return report
    for d in check_c_abi(funcs, signatures, specs):
        report.add(d)
    _analyze(funcs, specs, report)
    if report.ok():
        report.note(
            f"native-c: {len(specs)} entry points proven in-bounds, "
            f"overflow-free and order-admissible"
        )
    return report


def verify_numba_functions(
    source: str, specs: tuple[EntrySpec, ...] = NUMBA_SPECS
) -> LintReport:
    """Parse + ABI + proofs for the ``@njit`` twins (source-level)."""
    report = LintReport()
    try:
        funcs = {
            f.name: f
            for f in parse_numba_funcs(
                source, tuple(s.name for s in specs)
            )
        }
    except NativeSyntaxError as exc:
        report.add(_parse_failure("numba", exc))
        return report
    for d in check_numba_abi(funcs, specs):
        report.add(d)
    _analyze(funcs, specs, report)
    if report.ok():
        report.note(
            f"native-numba: {len(specs)} @njit twins proven in-bounds, "
            f"overflow-free and order-admissible"
        )
    return report


def lint_native() -> LintReport:
    """The full native pass over the shipped backends (both tiers)."""
    from ...backends import cnative as _cn

    report = LintReport()
    report.extend(
        verify_c_translation_unit(_cn._C_SOURCE, _cn.CTYPES_SIGNATURES)
    )
    for d in check_table_dtypes(_module_source(_cn), C_SPECS):
        report.add(d)
    try:
        nb_src = jit_source()
    except OSError as exc:  # source unavailable (frozen install)
        report.add(_parse_failure("numba", exc))
    else:
        report.extend(verify_numba_functions(nb_src))
    for d in check_wrapper_guards(C_SPECS + NUMBA_SPECS):
        report.add(d)
    return report


def _module_source(module) -> str:
    import inspect
    return inspect.getsource(module)


def lint_verdict() -> dict:
    """Condensed verdict for bench provenance blocks.

    ``codes`` lists what was checked (not what fired), ``ok`` is the
    pass/fail verdict, ``errors`` the codes that actually fired, and
    ``digest`` a short stable hash of the full diagnostic payload so
    two BENCH files can be compared for "same verified kernel set".
    """
    try:
        report = lint_native()
        errors = sorted({d.code for d in report.diagnostics})
        ok = report.ok()
    except Exception as exc:  # the verdict must never sink a bench run
        return {
            "codes": list(NATIVE_CODES),
            "ok": False,
            "errors": ["verifier-crash"],
            "digest": hashlib.sha256(str(exc).encode()).hexdigest()[:12],
        }
    payload = json.dumps(
        [d.to_dict() for d in report.diagnostics], sort_keys=True
    )
    return {
        "codes": list(NATIVE_CODES),
        "ok": ok,
        "errors": errors,
        "digest": hashlib.sha256(payload.encode()).hexdigest()[:12],
    }
