"""``repro.lint.native`` — static verifier for the compiled kernel tier.

PR 2/3 built a proof engine for the NumPy kernels (SR001–SR051); the
compiled cnative/numba twins of PR 6 were verified only dynamically,
by the differential fuzzer.  This package closes that gap with the
SR060-range: it parses the C translation unit and the ``@njit`` loops
from source into one typed IR (:mod:`~repro.lint.native.nir`), checks
the ctypes/numpy/contract ABI surface (SR060/SR061), proves every
subscript in-bounds and every integer expression overflow-free by
abstract interpretation with polynomial intervals (SR062/SR063), and
certifies that each twin executes trials in an order its reference
kernel's commutativity argument admits (SR064).

Everything runs from *source text*: no C compiler, no numba, and no
kernel execution is required, so the pass is available on every host
CI runs on.

Modules
-------
``sym``     polynomial intervals + the nonnegativity decision procedure
``nir``     the shared typed IR
``cfront``  tokenizer + recursive-descent parser for the C subset
``pyfront`` AST lowering for the ``@njit`` twins
``specs``   per-entry-point preconditions (the trusted base)
``abi``     SR060/SR061 signature and width agreement
``absint``  SR062/SR063 proofs and the SR064 order certificates
``verify``  the ``repro lint --native`` pass + backend self-check
"""

from .nir import NativeSyntaxError
from .specs import C_SPECS, NUMBA_SPECS
from .verify import (
    NATIVE_CODES,
    lint_native,
    lint_verdict,
    verify_c_translation_unit,
    verify_numba_functions,
)

__all__ = [
    "C_SPECS",
    "NATIVE_CODES",
    "NUMBA_SPECS",
    "NativeSyntaxError",
    "lint_native",
    "lint_verdict",
    "verify_c_translation_unit",
    "verify_numba_functions",
]
