"""ABI checks: SR060 (signature agreement) and SR061 (width agreement).

Four artefacts must agree for every compiled entry point:

1. the **parsed C signature** (or ``@njit`` twin parameter list),
2. the **ctypes declaration** (``CTYPES_SIGNATURES`` in the cnative
   backend — the table :func:`repro.backends.cnative._declare` is
   generated from),
3. the **spec** binding parameters to regions / size symbols
   (:mod:`repro.lint.native.specs`), and
4. the **@kernel contracts** of the python wrappers (dtypes, shapes)
   plus the numpy dtypes ``cnative_tables`` actually packs.

Arity and pointer-vs-scalar disagreements are SR060; integer width or
signedness disagreements (a C ``int32_t *`` fed an int64 buffer, a
scalar narrower than the ``c_int64`` ctypes passes) are SR061.  The
wrapper-guard scan also lives here: a wrapper whose source no longer
references its validating guards (``_c_usable`` / ``_usable`` /
``_stream_valid``) has silently dropped the preconditions every bounds
proof rests on — that is reported as SR062 at the wrapper site.
"""

from __future__ import annotations

import ast
import inspect

from ..diagnostics import Diagnostic
from .nir import DTYPE_CTYPES, INT64, NativeFunc
from .specs import EntrySpec

__all__ = ["check_c_abi", "check_numba_abi", "check_wrapper_guards",
           "check_table_dtypes"]


def _diag(code: str, subject: str, msg: str, **data) -> Diagnostic:
    return Diagnostic(code, subject, msg, data)


def check_c_abi(
    funcs: dict[str, NativeFunc],
    signatures: dict[str, tuple[tuple[str, ...], str]],
    specs: tuple[EntrySpec, ...],
) -> list[Diagnostic]:
    """C signature vs ctypes declaration vs spec binding."""
    diags: list[Diagnostic] = []
    for spec in specs:
        subject = f"native:c:{spec.name}"
        func = funcs.get(spec.name)
        if func is None:
            diags.append(_diag(
                "SR060", subject,
                f"entry point {spec.name!r} not found in the C "
                f"translation unit",
            ))
            continue
        sig = signatures.get(spec.name)
        if sig is None:
            diags.append(_diag(
                "SR060", subject,
                f"no ctypes declaration for {spec.name!r} in "
                f"CTYPES_SIGNATURES",
            ))
            continue
        kinds, ret_kind = sig
        if not (len(func.params) == len(kinds) == len(spec.params)):
            diags.append(_diag(
                "SR060", subject,
                f"arity disagreement: C declares {len(func.params)} "
                f"parameters, ctypes {len(kinds)}, spec "
                f"{len(spec.params)}",
            ))
            continue
        for pos, ((pname, ptype), kind, p) in enumerate(
            zip(func.params, kinds, spec.params)
        ):
            want_ptr = p.kind == "region"
            if kind not in ("ptr", "i64"):
                diags.append(_diag(
                    "SR060", subject,
                    f"parameter {pos} ({pname}): unknown ctypes kind "
                    f"{kind!r}",
                    param=pname, position=pos,
                ))
                continue
            if ptype.pointer != (kind == "ptr") or want_ptr != ptype.pointer:
                diags.append(_diag(
                    "SR060", subject,
                    f"parameter {pos} ({pname}): C declares "
                    f"{'pointer' if ptype.pointer else 'scalar'}, ctypes "
                    f"passes {'a pointer' if kind == 'ptr' else 'c_int64'}"
                    f", spec binds a "
                    f"{'region' if want_ptr else 'size scalar'}",
                    param=pname, position=pos,
                ))
                continue
            if pname != p.name:
                diags.append(_diag(
                    "SR060", subject,
                    f"parameter {pos}: C names it {pname!r}, spec binds "
                    f"{p.name!r} — positional binding has drifted",
                    param=pname, position=pos,
                ))
                continue
            if not ptype.pointer:
                # ctypes passes c_int64 for every scalar
                if ptype.bits != 64 or not ptype.signed:
                    diags.append(_diag(
                        "SR061", subject,
                        f"scalar parameter {pname} is {ptype} in C but "
                        f"ctypes passes c_int64",
                        param=pname, position=pos,
                    ))
            else:
                region = spec.region(p.region)
                want = DTYPE_CTYPES.get(region.dtype) if region else None
                if want is not None and (
                    ptype.bits != want.bits or ptype.signed != want.signed
                ):
                    diags.append(_diag(
                        "SR061", subject,
                        f"pointer parameter {pname} is {ptype} in C but "
                        f"the wrapper passes a numpy {region.dtype} "
                        f"buffer ({want.bits}-bit, "
                        f"{'signed' if want.signed else 'unsigned'})",
                        param=pname, position=pos, dtype=region.dtype,
                    ))
        if func.ret.pointer or func.ret.bits != INT64.bits or ret_kind != "i64":
            diags.append(_diag(
                "SR060", subject,
                f"return type disagreement: C returns {func.ret}, ctypes "
                f"declares {ret_kind!r} (expected int64)",
            ))
    return diags


def check_numba_abi(
    funcs: dict[str, NativeFunc], specs: tuple[EntrySpec, ...]
) -> list[Diagnostic]:
    """@njit twin parameter lists vs spec bindings (names + arity)."""
    diags: list[Diagnostic] = []
    for spec in specs:
        subject = f"native:numba:{spec.name}"
        func = funcs.get(spec.name)
        if func is None:
            diags.append(_diag(
                "SR060", subject,
                f"@njit twin {spec.name!r} not found in the numba module",
            ))
            continue
        names = func.param_names()
        want = tuple(p.name for p in spec.params)
        if names != want:
            diags.append(_diag(
                "SR060", subject,
                f"@njit twin parameters {list(names)} do not match the "
                f"spec binding {list(want)}",
            ))
    return diags


def _wrapper_contracts(spec: EntrySpec):
    from ..contracts import KERNEL_REGISTRY
    for dotted in spec.wrappers:
        fn = KERNEL_REGISTRY.get(dotted)
        if fn is not None:
            yield dotted, fn


def check_wrapper_guards(specs: tuple[EntrySpec, ...]) -> list[Diagnostic]:
    """Each wrapper must still invoke the guards justifying the spec.

    The value ranges the bounds proofs assume (sites < N, types < T,
    contiguity, dtype) are established by ``_c_usable`` / ``_usable``
    and ``_stream_valid``; a wrapper that stops calling them leaves
    the kernel's subscripts unproven — reported as SR062 here because
    the in-kernel proof is only as strong as its preconditions.
    """
    diags: list[Diagnostic] = []
    from ..contracts import KERNEL_REGISTRY
    for spec in specs:
        for dotted, guards in spec.wrapper_guards.items():
            fn = KERNEL_REGISTRY.get(dotted)
            if fn is None:
                diags.append(_diag(
                    "SR060", f"native:{spec.lang}:{spec.name}",
                    f"wrapper {dotted} is not registered as a @kernel",
                    wrapper=dotted,
                ))
                continue
            try:
                src = inspect.getsource(fn)
            except (OSError, TypeError):
                continue
            names = {
                n.id for n in ast.walk(ast.parse(_dedent(src)))
                if isinstance(n, ast.Name)
            } | {
                n.attr for n in ast.walk(ast.parse(_dedent(src)))
                if isinstance(n, ast.Attribute)
            }
            for guard in guards:
                if guard not in names:
                    diags.append(_diag(
                        "SR062", f"native:{spec.lang}:{spec.name}",
                        f"wrapper {dotted} no longer invokes its guard "
                        f"{guard!r}; the kernel's bounds preconditions "
                        f"are unvalidated",
                        wrapper=dotted, guard=guard,
                    ))
    # contract dtype/shape agreement with the spec regions
    for spec in specs:
        for dotted, fn in _wrapper_contracts(spec):
            contract = getattr(fn, "__kernel_contract__", None)
            if contract is None:
                continue
            for pname, dtype in contract.dtypes.items():
                region = spec.region(_contract_region(spec, pname))
                if region is not None and region.dtype != dtype:
                    diags.append(_diag(
                        "SR061", f"native:{spec.lang}:{spec.name}",
                        f"@kernel contract of {dotted} declares "
                        f"{pname}:{dtype} but the native spec packs "
                        f"{region.dtype}",
                        wrapper=dotted, param=pname,
                    ))
            for pname, shape in contract.shapes.items():
                region = spec.region(_contract_region(spec, pname))
                if region is not None and tuple(shape) != region.dims:
                    diags.append(_diag(
                        "SR060", f"native:{spec.lang}:{spec.name}",
                        f"@kernel contract of {dotted} declares "
                        f"{pname}:{tuple(shape)} but the native spec "
                        f"binds extents {region.dims}",
                        wrapper=dotted, param=pname,
                    ))
    return diags


def _contract_region(spec: EntrySpec, pname: str) -> str:
    """Map a wrapper parameter name onto the spec region it feeds."""
    # wrapper and entry point share names for the arrays that matter
    # (state/states/sites/types/starts/stops/counts/reps)
    return pname


def _dedent(src: str) -> str:
    import textwrap
    return textwrap.dedent(src)


def check_table_dtypes(
    cnative_source: str, specs: tuple[EntrySpec, ...]
) -> list[Diagnostic]:
    """The dtypes ``cnative_tables`` packs vs the spec regions.

    Scans the backend module's AST for ``np.zeros(..., dtype=np.X)``
    assignments to the table names inside ``cnative_tables`` — if the
    packing dtype drifts from the spec (and hence from the C pointer
    types), that is an SR061 the differential fuzzer would only catch
    as garbage output.
    """
    diags: list[Diagnostic] = []
    tree = ast.parse(cnative_source)
    fdef = next(
        (
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "cnative_tables"
        ),
        None,
    )
    if fdef is None:
        diags.append(_diag(
            "SR060", "native:c:cnative_tables",
            "cnative_tables not found in the backend module",
        ))
        return diags
    packed: dict[str, str] = {}
    for node in ast.walk(fdef):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        call = node.value
        if not (isinstance(call, ast.Call) and call.keywords):
            continue
        for kw in call.keywords:
            if kw.arg == "dtype" and isinstance(kw.value, ast.Attribute):
                packed[target.id] = kw.value.attr
    spec = specs[0]
    for table in ("maps", "srcs", "tgts", "nch"):
        region = spec.region(table)
        got = packed.get(table)
        if region is None or got is None:
            continue
        if got != region.dtype:
            diags.append(_diag(
                "SR061", "native:c:cnative_tables",
                f"cnative_tables packs {table} as {got} but the native "
                f"spec (and C pointer type) expects {region.dtype}",
                table=table, packed=got, expected=region.dtype,
            ))
    return diags
