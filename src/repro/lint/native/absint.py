"""Abstract interpretation over NIR: the SR062/SR063/SR064 proofs.

One interpreter serves both compiled tiers.  Scalars are intervals
with polynomial endpoints over the spec's size symbols plus a *width
certificate* (the signed bit width the value provably fits); pointers
are (region, symbolic offset, guard) triples.  The proofs:

**SR062 (bounds)** — every subscript's offset must satisfy
``0 <= off`` and ``off <= extent - 1`` in the polynomial order of
:mod:`repro.lint.native.sym`, with region extents and content ranges
taken from the wrapper-validated preconditions of the
:class:`~repro.lint.native.specs.EntrySpec`.  Nullable / flag-gated
regions additionally require their guard name on the active path.

**SR063 (overflow)** — 64-bit arithmetic is overflow-free when each
endpoint is dominated by a declared region extent (an extent counts
elements of an array that exists in memory, so it fits ``int64_t`` by
construction); narrower stores require a width certificate at most the
declared width, or constant endpoints inside the representable range.
In-place ``+=`` accumulation into int64 count buffers is exempt — the
NumPy references share that saturation horizon.

**SR064 (order)** — every loop must ascend with strict ``<`` and unit
step, the trial-stream loop chain must match the spec's order
certificate (full coverage ``0..n`` / ``starts[r]..stops[r]``), and
inside the innermost stream loop the source-*check* loop (the one that
can ``break``) must precede the state-*write* loop — the exact shape
under which strict sequential execution is admissible per the
reference kernel's commutativity argument.

Accumulator variables (initialised to 0, only ever ``+= 1`` inside
loops) get the precise flow-sensitive range ``[0, trips - 1]`` at loop
entry, which is what proves the ``rec[3 * n_exec + k]`` subscripts —
and what catches a mutant that increments before recording.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..diagnostics import Diagnostic
from .nir import (
    Assign,
    AugAssign,
    BinOp,
    BoolLit,
    Break,
    Cast,
    Cond,
    Decl,
    DimOf,
    Expr,
    For,
    If,
    Index,
    IntLit,
    Name,
    NativeFunc,
    Return,
    Stmt,
    Unary,
)
from .specs import EntrySpec, Region, symbol_table
from .sym import TOP, Interval, Poly, product

__all__ = ["analyze_entry", "check_order", "render_expr"]

_ARITH = ("+", "-", "*", "/", "%")
_CMP = ("<", "<=", ">", ">=", "==", "!=")


@dataclass(frozen=True)
class _Scalar:
    iv: Interval
    width: int = 64  # signed bit width the value provably fits


@dataclass(frozen=True)
class _Ptr:
    region: str
    offset: Interval
    guard: str | None = None


_TOP_SCALAR = _Scalar(TOP, 64)


def render_expr(e: Expr) -> str:
    """Deterministic compact rendering (order-certificate matching)."""
    if isinstance(e, Name):
        return e.id
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, BoolLit):
        return str(e.value)
    if isinstance(e, BinOp):
        return f"{render_expr(e.left)}{e.op}{render_expr(e.right)}"
    if isinstance(e, Unary):
        return f"{e.op}{render_expr(e.operand)}"
    if isinstance(e, Index):
        inner = ",".join(render_expr(i) for i in e.indices)
        return f"{render_expr(e.base)}[{inner}]"
    if isinstance(e, DimOf):
        return (
            f"{e.base}.size" if e.axis is None
            else f"{e.base}.shape[{e.axis}]"
        )
    if isinstance(e, Cast):
        return f"({e.ctype}){render_expr(e.operand)}"
    if isinstance(e, Cond):
        return (
            f"{render_expr(e.test)}?{render_expr(e.then)}"
            f":{render_expr(e.orelse)}"
        )
    return "?"


def _assigned_names(stmts) -> set[str]:
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, Decl):
            out.add(s.name)
        elif isinstance(s, (Assign, AugAssign)):
            if isinstance(s.target, Name):
                out.add(s.target.id)
        if isinstance(s, For):
            out.add(s.var)
            out |= _assigned_names(s.body)
        elif isinstance(s, If):
            out |= _assigned_names(s.body)
            out |= _assigned_names(s.orelse)
    return out


def _increments_in(stmts, name: str) -> bool:
    for s in stmts:
        if (
            isinstance(s, AugAssign)
            and isinstance(s.target, Name)
            and s.target.id == name
        ):
            return True
        if isinstance(s, For) and _increments_in(s.body, name):
            return True
        if isinstance(s, If) and (
            _increments_in(s.body, name) or _increments_in(s.orelse, name)
        ):
            return True
    return False


def _child_fors(stmts):
    """Direct child loops of a body, looking through If branches."""
    for s in stmts:
        if isinstance(s, For):
            yield s
        elif isinstance(s, If):
            yield from _child_fors(s.body)
            yield from _child_fors(s.orelse)


def _find_accumulators(func: NativeFunc) -> set[str]:
    """Names initialised to 0 at function scope and only ever ``+= 1``."""
    zeroed = set()
    for s in func.body:
        if isinstance(s, Decl) and isinstance(s.init, IntLit) and s.init.value == 0:
            zeroed.add(s.name)
        elif (
            isinstance(s, Assign)
            and isinstance(s.target, Name)
            and isinstance(s.value, IntLit)
            and s.value.value == 0
        ):
            zeroed.add(s.target.id)

    def clean(stmts, top: bool) -> set[str]:
        dirty: set[str] = set()
        for s in stmts:
            if isinstance(s, (Assign, Decl)) and not top:
                n = s.name if isinstance(s, Decl) else (
                    s.target.id if isinstance(s.target, Name) else None
                )
                if n:
                    dirty.add(n)
            if isinstance(s, AugAssign) and isinstance(s.target, Name):
                if not (isinstance(s.value, IntLit) and s.value.value == 1
                        and s.op == "+"):
                    dirty.add(s.target.id)
            if isinstance(s, For):
                dirty.add(s.var)
                dirty |= clean(s.body, False)
            elif isinstance(s, If):
                dirty |= clean(s.body, False)
                dirty |= clean(s.orelse, False)
        return dirty

    return zeroed - clean(func.body, True)


class _AbsInt:
    """One run of the interpreter over one entry point."""

    def __init__(self, func: NativeFunc, spec: EntrySpec):
        self.func = func
        self.spec = spec
        self.syms = symbol_table()
        self.diags: list[Diagnostic] = []
        self.subject = f"native:{func.lang}:{func.name}"
        self.regions: dict[str, Region] = {r.name: r for r in spec.regions}
        self.extents: list[Poly] = [
            r.extent(self.syms) for r in spec.regions
        ] + [p for p in self.syms.values()]
        # the kernel's regions coexist in one address space, so the sum
        # of their element counts (plus the size symbols, each bounded
        # by a region extent) is far below 2**63 — any 64-bit value
        # dominated by it cannot overflow
        total = Poly.const(0)
        for e in self.extents:
            total = total + e
        self.extent_sum = total
        self.flags: set[str] = {
            p.name for p in spec.params if p.kind == "flag"
        }
        self.accs = _find_accumulators(func)
        self.acc_total: dict[str, Poly | None] = {}
        self.decl_widths: dict[str, int] = {}
        self.env: dict[str, object] = {}
        self.guards: set[str] = set()

    # -- diagnostics ---------------------------------------------------
    def _diag(self, code: str, lineno: int, msg: str, **data) -> None:
        self.diags.append(
            Diagnostic(
                code, self.subject, f"line {lineno}: {msg}",
                {"line": lineno, "function": self.func.name,
                 "lang": self.func.lang, **data},
            )
        )

    # -- entry ---------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        params = self.spec.params
        names = self.func.param_names()
        if len(names) != len(params):
            self._diag(
                "SR060", self.func.lineno,
                f"{self.func.name} takes {len(names)} parameters but its "
                f"spec binds {len(params)}",
            )
            return self.diags
        for pname, p in zip(names, params):
            if p.kind == "region":
                region = self.regions[p.region]
                self.env[pname] = _Ptr(
                    region.name, Interval.const(0), guard=region.guard
                )
            elif p.kind == "scalar":
                self.env[pname] = _Scalar(
                    Interval.exact(self.syms[p.symbol]), 64
                )
            else:  # flag
                self.env[pname] = _Scalar(
                    Interval(Poly.const(0), Poly.const(1)), 1
                )
        self._stmts(self.func.body)
        return self.diags

    # -- statements ----------------------------------------------------
    def _stmts(self, stmts) -> None:
        for s in stmts:
            self._stmt(s)

    def _stmt(self, s: Stmt) -> None:
        if isinstance(s, Decl):
            self._decl(s)
        elif isinstance(s, Assign):
            self._assign(s)
        elif isinstance(s, AugAssign):
            self._augassign(s)
        elif isinstance(s, For):
            self._for(s)
        elif isinstance(s, If):
            self._if(s)
        elif isinstance(s, Return):
            if s.value is not None:
                self._eval(s.value)
        # Break/Continue carry no dataflow the checks depend on

    def _decl(self, s: Decl) -> None:
        ctype = s.ctype
        if s.init is None:
            self.env[s.name] = _TOP_SCALAR
            if ctype is not None and not ctype.pointer:
                self.decl_widths[s.name] = ctype.bits
            return
        if isinstance(s.init, Cond):
            # `p = cond ? base + off : NULL`: bind the non-null arm and
            # re-guard the pointer on the declared name itself
            self._eval(s.init.test)
            value = self._eval(s.init.then)
            if isinstance(value, _Ptr):
                value = replace(value, guard=s.name)
        else:
            value = self._eval(s.init)
        if ctype is not None and not ctype.pointer:
            self.decl_widths[s.name] = ctype.bits
            if isinstance(value, _Scalar):
                self._check_store_width(
                    value, ctype.bits, ctype.signed, s.lineno,
                    f"initialiser of {ctype} {s.name}",
                )
        self.env[s.name] = value

    def _assign(self, s: Assign) -> None:
        value = self._eval(s.value)
        if isinstance(s.target, Name):
            width = self.decl_widths.get(s.target.id)
            if width is not None and isinstance(value, _Scalar):
                self._check_store_width(
                    value, width, True, s.lineno,
                    f"assignment to {s.target.id}",
                )
            self.env[s.target.id] = value
        elif isinstance(s.target, Index):
            self._access(s.target, store=True, value=value)

    def _augassign(self, s: AugAssign) -> None:
        value = self._eval(s.value)
        if isinstance(s.target, Name):
            name = s.target.id
            old = self.env.get(name, _TOP_SCALAR)
            if isinstance(old, _Scalar) and isinstance(value, _Scalar):
                iv = (
                    old.iv.add(value.iv) if s.op == "+"
                    else old.iv.sub(value.iv) if s.op == "-"
                    else TOP
                )
                new = _Scalar(iv, max(old.width, value.width))
                if name not in self.accs:
                    self._check_overflow(iv, s.lineno, f"{name} {s.op}= ...")
                    width = self.decl_widths.get(name)
                    if width is not None:
                        self._check_store_width(
                            new, width, True, s.lineno, f"{name} {s.op}=",
                        )
                self.env[name] = new
            else:
                self.env[name] = _TOP_SCALAR
        elif isinstance(s.target, Index):
            # in-place accumulation into a region (counts[t] += 1):
            # bounds-check the subscript; int64 counter saturation is
            # out of scope (the NumPy references share it)
            self._access(s.target, store=True, value=value)

    def _if(self, s: If) -> None:
        self._eval(s.test)
        saved_env = dict(self.env)
        saved_guards = set(self.guards)
        test = s.test
        if isinstance(test, Name):
            v = self.env.get(test.id)
            if test.id in self.flags or (
                isinstance(v, _Ptr) and v.guard == test.id
            ):
                self.guards.add(test.id)
        self._stmts(s.body)
        body_env = self.env
        self.env = dict(saved_env)
        self.guards = saved_guards
        if s.orelse:
            self._stmts(s.orelse)
        self.env = self._merge(body_env, self.env)

    def _merge(self, a: dict, b: dict) -> dict:
        out: dict[str, object] = {}
        for k in set(a) | set(b):
            va, vb = a.get(k), b.get(k)
            if isinstance(va, _Scalar) and isinstance(vb, _Scalar):
                out[k] = _Scalar(va.iv.join(vb.iv), max(va.width, vb.width))
            elif (
                isinstance(va, _Ptr) and isinstance(vb, _Ptr)
                and va.region == vb.region and va.guard == vb.guard
            ):
                out[k] = _Ptr(va.region, va.offset.join(vb.offset), va.guard)
            elif va is not None and vb is None:
                out[k] = va
            elif vb is not None and va is None:
                out[k] = vb
            else:
                out[k] = _TOP_SCALAR
        return out

    # -- loops ---------------------------------------------------------
    def _trip_hi(self, s: For, init_iv: Interval, bound_iv: Interval):
        if s.step == 1:
            if init_iv.lo is None or bound_iv.hi is None:
                return None
            hi = bound_iv.hi - init_iv.lo
            return hi + 1 if s.cond_op == "<=" else hi
        if bound_iv.lo is None or init_iv.hi is None:
            return None
        hi = init_iv.hi - bound_iv.lo
        return hi + 1 if s.cond_op == ">=" else hi

    def _var_interval(self, s: For, init_iv, bound_iv) -> Interval:
        if s.step == 1:
            hi = bound_iv.hi
            if s.cond_op == "<" and hi is not None:
                hi = hi - 1
            return Interval(init_iv.lo, hi)
        lo = bound_iv.lo
        if s.cond_op == ">" and lo is not None:
            lo = lo + 1
        return Interval(lo, init_iv.hi)

    def _acc_total_for(self, s: For, acc: str) -> Poly | None:
        """Product of trip counts over the chain enclosing ``acc``'s
        increment, evaluated with outer loop vars at their intervals."""
        saved = dict(self.env)
        trips: list[Poly] = []
        cur: For | None = s
        try:
            while cur is not None:
                init_iv = (
                    self._scalar(self._eval(cur.init)).iv
                    if cur.init is not None
                    else self._scalar(self.env.get(cur.var, _TOP_SCALAR)).iv
                )
                bound_iv = self._scalar(self._eval(cur.bound)).iv
                trip = self._trip_hi(cur, init_iv, bound_iv)
                if trip is None:
                    return None
                trips.append(trip)
                self.env[cur.var] = _Scalar(
                    self._var_interval(cur, init_iv, bound_iv), 64
                )
                # descend into the child loop holding the increment;
                # stop when the increment sits directly in this body
                cur = next(
                    (
                        child for child in _child_fors(cur.body)
                        if _increments_in([child], acc)
                    ),
                    None,
                )
            return product(trips)
        finally:
            self.env = saved

    def _for(self, s: For) -> None:
        init_iv = (
            self._scalar(self._eval(s.init)).iv if s.init is not None
            else self._scalar(self.env.get(s.var, _TOP_SCALAR)).iv
        )
        bound_val = self._eval(s.bound)
        bound = self._scalar(bound_val)
        # a narrow declared induction variable needs narrow evidence
        width = (
            s.var_ctype.bits if s.var_ctype is not None
            else self.decl_widths.get(s.var, 64)
        )
        if s.var_ctype is not None:
            self.decl_widths[s.var] = s.var_ctype.bits
        if width < 64 and bound.width > width and not (
            bound.iv.lo is not None and bound.iv.hi is not None
            and bound.iv.lo.is_const() and bound.iv.hi.is_const()
        ):
            self._diag(
                "SR063", s.lineno,
                f"loop variable {s.var} declared {width}-bit but its "
                f"bound {render_expr(s.bound)} only fits {bound.width} bits",
            )
        var_iv = self._var_interval(s, init_iv, bound.iv)

        # accumulators crossing this loop get their precise entry range
        loop_accs = [a for a in self.accs if _increments_in(s.body, a)]
        for acc in loop_accs:
            if acc not in self.acc_total:
                self.acc_total[acc] = self._acc_total_for(s, acc)

        assigned = _assigned_names(s.body)
        for name in assigned:
            if name == s.var or name in self.accs:
                continue
            self.env[name] = _TOP_SCALAR
        for acc in loop_accs:
            total = self.acc_total.get(acc)
            self.env[acc] = _Scalar(
                Interval(Poly.const(0), total - 1)
                if total is not None else TOP,
                64,
            )
        self.env[s.var] = _Scalar(var_iv, min(width, bound.width))
        self._stmts(s.body)
        # post-loop: assigned names are iteration-dependent -> unknown,
        # accumulators land in [0, total], the var at its exit range
        for name in assigned:
            if name in self.accs:
                continue
            self.env[name] = _TOP_SCALAR
        for acc in loop_accs:
            total = self.acc_total.get(acc)
            self.env[acc] = _Scalar(
                Interval(Poly.const(0), total)
                if total is not None else TOP,
                64,
            )
        self.env[s.var] = _Scalar(
            Interval(init_iv.lo, bound.iv.hi) if s.step == 1
            else Interval(bound.iv.lo, init_iv.hi),
            min(width, bound.width),
        )

    # -- expressions ---------------------------------------------------
    def _scalar(self, v) -> _Scalar:
        return v if isinstance(v, _Scalar) else _TOP_SCALAR

    def _eval(self, e: Expr):
        if isinstance(e, Name):
            return self.env.get(e.id, _TOP_SCALAR)
        if isinstance(e, IntLit):
            return _Scalar(
                Interval.const(e.value), max(e.value.bit_length() + 1, 1)
            )
        if isinstance(e, BoolLit):
            return _Scalar(Interval.const(int(e.value)), 1)
        if isinstance(e, DimOf):
            return self._dimof(e)
        if isinstance(e, Cast):
            value = self._eval(e.operand)
            if e.ctype.pointer:
                return value  # (int64_t *)0 — the null arm of a ternary
            sv = self._scalar(value)
            self._check_store_width(
                sv, e.ctype.bits, e.ctype.signed, e.lineno,
                f"cast to {e.ctype}",
            )
            return _Scalar(sv.iv, min(sv.width, e.ctype.bits))
        if isinstance(e, Unary):
            if e.op == "*":
                base = self._eval(e.operand)
                if isinstance(base, _Ptr):
                    return self._load(base, Interval.const(0), e.lineno)
                return _TOP_SCALAR
            v = self._scalar(self._eval(e.operand))
            if e.op == "-":
                return _Scalar(v.iv.neg(), v.width)
            return _Scalar(Interval(Poly.const(0), Poly.const(1)), 1)
        if isinstance(e, Index):
            return self._access(e, store=False)
        if isinstance(e, Cond):
            self._eval(e.test)
            a, b = self._eval(e.then), self._eval(e.orelse)
            if isinstance(a, _Scalar) and isinstance(b, _Scalar):
                return _Scalar(a.iv.join(b.iv), max(a.width, b.width))
            return a  # pointer ternaries are handled at Decl
        if isinstance(e, BinOp):
            return self._binop(e)
        return _TOP_SCALAR

    def _dimof(self, e: DimOf) -> _Scalar:
        region = None
        target = self.env.get(e.base)
        if isinstance(target, _Ptr):
            region = self.regions.get(target.region)
        if region is None:
            self._diag(
                "SR062", e.lineno,
                f"size query on unknown region {e.base!r}",
            )
            return _TOP_SCALAR
        if e.axis is None:
            return _Scalar(Interval.exact(region.extent(self.syms)), 64)
        dims = region.dim_polys(self.syms)
        if e.axis >= len(dims):
            self._diag(
                "SR062", e.lineno,
                f"{e.base}.shape[{e.axis}] out of rank "
                f"{len(dims)}",
            )
            return _TOP_SCALAR
        return _Scalar(Interval.exact(dims[e.axis]), 64)

    def _binop(self, e: BinOp):
        left = self._eval(e.left)
        right = self._eval(e.right)
        # pointer arithmetic: base + offset stays in the base's region
        if isinstance(left, _Ptr) or isinstance(right, _Ptr):
            ptr, off = (
                (left, right) if isinstance(left, _Ptr) else (right, left)
            )
            off_s = self._scalar(off)
            if e.op == "+":
                return _Ptr(ptr.region, ptr.offset.add(off_s.iv), ptr.guard)
            if e.op == "-" and isinstance(left, _Ptr):
                return _Ptr(ptr.region, ptr.offset.sub(off_s.iv), ptr.guard)
            self._diag(
                "SR062", e.lineno,
                f"unsupported pointer operation {e.op!r}",
            )
            return _TOP_SCALAR
        ls, rs = self._scalar(left), self._scalar(right)
        if e.op in _CMP or e.op in ("&&", "||"):
            return _Scalar(Interval(Poly.const(0), Poly.const(1)), 1)
        if e.op == "+":
            iv = ls.iv.add(rs.iv)
        elif e.op == "-":
            iv = ls.iv.sub(rs.iv)
        elif e.op == "*":
            iv = ls.iv.mul(rs.iv)
        else:  # / % — magnitude never grows; keep it unknown but safe
            return _Scalar(TOP, max(ls.width, rs.width))
        self._check_overflow(iv, e.lineno, render_expr(e))
        return _Scalar(iv, 64)

    # -- memory --------------------------------------------------------
    def _access(self, e: Index, store: bool, value=None):
        base = self._eval(e.base)
        if not isinstance(base, _Ptr):
            self._diag(
                "SR062", e.lineno,
                f"subscript of non-array {render_expr(e.base)}",
            )
            return _TOP_SCALAR
        region = self.regions.get(base.region)
        if region is None:
            self._diag("SR062", e.lineno, f"unknown region {base.region!r}")
            return _TOP_SCALAR
        if base.guard is not None and base.guard not in self.guards:
            self._diag(
                "SR062", e.lineno,
                f"access to gated region {region.name!r} without testing "
                f"its guard {base.guard!r} on this path",
            )
        idx_ivs = [self._scalar(self._eval(i)).iv for i in e.indices]
        dims = region.dim_polys(self.syms)
        zero_off = (
            base.offset.lo is not None and base.offset.hi is not None
            and base.offset.lo.const_value() == 0
            and base.offset.hi.const_value() == 0
        )
        if len(idx_ivs) == len(dims) and len(dims) > 1 and zero_off:
            for k, (iv, dim) in enumerate(zip(idx_ivs, dims)):
                self._check_bounds(
                    iv, dim, e.lineno,
                    f"{render_expr(e)} axis {k} of {region.name}"
                    f"({'x'.join(region.dims)})",
                )
        elif len(idx_ivs) == 1:
            off = base.offset.add(idx_ivs[0])
            self._check_bounds(
                off, region.extent(self.syms), e.lineno,
                f"{render_expr(e)} into {region.name}"
                f"[{ '*'.join(region.dims) }]",
            )
        else:
            self._diag(
                "SR062", e.lineno,
                f"{render_expr(e)}: {len(idx_ivs)} indices against "
                f"{len(dims)}-d region {region.name}",
            )
            return _TOP_SCALAR
        if store:
            if not region.writable:
                self._diag(
                    "SR062", e.lineno,
                    f"store into read-only region {region.name}",
                )
            if isinstance(value, _Scalar):
                from .nir import DTYPE_CTYPES
                ct = DTYPE_CTYPES.get(region.dtype)
                if ct is not None:
                    self._check_store_width(
                        value, ct.bits, ct.signed, e.lineno,
                        f"store into {region.dtype} region {region.name}",
                    )
            return None
        return self._load(base, idx_ivs[0] if len(idx_ivs) == 1 else None,
                          e.lineno, region)

    def _load(self, base: _Ptr, off, lineno: int, region=None) -> _Scalar:
        region = region or self.regions.get(base.region)
        if region is None:
            return _TOP_SCALAR
        rng = region.value_interval(self.syms)
        if rng is not None:
            return _Scalar(rng, self._dtype_width(region.dtype))
        if region.dtype == "uint8":
            return _Scalar(
                Interval(Poly.const(0), Poly.const(255)), 9
            )
        return _Scalar(TOP, self._dtype_width(region.dtype))

    @staticmethod
    def _dtype_width(dtype: str) -> int:
        return {"int64": 64, "int32": 32, "uint8": 9, "bool": 1}.get(
            dtype, 64
        )

    # -- proof obligations ---------------------------------------------
    def _check_bounds(self, off: Interval, extent: Poly, lineno: int,
                      what: str) -> None:
        lo_ok = off.lo is not None and off.lo.is_nonneg()
        hi_ok = off.hi is not None and off.hi <= extent - 1
        if not (lo_ok and hi_ok):
            self._diag(
                "SR062", lineno,
                f"cannot prove {what} in bounds: offset in {off}, "
                f"extent {extent}",
                offset=str(off), extent=str(extent),
            )

    def _check_overflow(self, iv: Interval, lineno: int, what: str) -> None:
        if iv.lo is None or iv.hi is None:
            self._diag(
                "SR063", lineno,
                f"{what}: unbounded 64-bit arithmetic", interval=str(iv),
            )
            return
        lc, hc = iv.lo.const_value(), iv.hi.const_value()
        if lc is not None and hc is not None:
            if -(2 ** 63) <= lc and hc <= 2 ** 63 - 1:
                return
        lo_ok = iv.lo.is_nonneg() or (iv.lo + self.extent_sum).is_nonneg()
        hi_ok = iv.hi <= self.extent_sum
        if not (lo_ok and hi_ok):
            self._diag(
                "SR063", lineno,
                f"{what}: result in {iv} is not dominated by the "
                f"region extents, 64-bit overflow not ruled out",
                interval=str(iv),
            )

    def _check_store_width(self, value: _Scalar, bits: int, signed: bool,
                           lineno: int, what: str) -> None:
        lc = value.iv.lo.const_value() if value.iv.lo is not None else None
        hc = value.iv.hi.const_value() if value.iv.hi is not None else None
        if lc is not None and hc is not None:
            lo_min = -(2 ** (bits - 1)) if signed else 0
            hi_max = 2 ** (bits - 1) - 1 if signed else 2 ** bits - 1
            if lo_min <= lc and hc <= hi_max:
                return
        elif signed and value.width <= bits:
            return
        self._diag(
            "SR063", lineno,
            f"{what} may truncate: value in {value.iv} "
            f"(width evidence {value.width} bits) into {bits} bits",
            interval=str(value.iv), bits=bits,
        )


def analyze_entry(func: NativeFunc, spec: EntrySpec) -> list[Diagnostic]:
    """Bounds (SR062) and overflow (SR063) proofs for one entry point."""
    return _AbsInt(func, spec).run()


# ----------------------------------------------------------------------
# SR064: loop-order admissibility
# ----------------------------------------------------------------------

def _all_fors(stmts) -> list[For]:
    out = []
    for s in stmts:
        if isinstance(s, For):
            out.append(s)
            out.extend(_all_fors(s.body))
        elif isinstance(s, If):
            out.extend(_all_fors(s.body))
            out.extend(_all_fors(s.orelse))
    return out


def _direct_fors(stmts) -> list[For]:
    return [s for s in stmts if isinstance(s, For)]


def _ptr_origins(func: NativeFunc) -> dict[str, str]:
    """Local pointer name -> root region-parameter name (C tier)."""
    params = set(func.param_names())
    origins: dict[str, str] = {}

    def root(e: Expr) -> str | None:
        while True:
            if isinstance(e, Name):
                if e.id in params:
                    return e.id
                return origins.get(e.id)
            if isinstance(e, BinOp):
                e = e.left
            elif isinstance(e, Cond):
                e = e.then
            elif isinstance(e, Cast):
                e = e.operand
            else:
                return None

    def walk(stmts) -> None:
        for s in stmts:
            if isinstance(s, Decl) and s.ctype is not None and s.ctype.pointer:
                if s.init is not None:
                    r = root(s.init)
                    if r:
                        origins[s.name] = r
            if isinstance(s, For):
                walk(s.body)
            elif isinstance(s, If):
                walk(s.body)
                walk(s.orelse)

    walk(func.body)
    return origins


def _writes_region(stmts, roots: set[str], origins: dict[str, str],
                   params: set[str]) -> bool:
    def base_root(e: Expr) -> str | None:
        while isinstance(e, Index):
            e = e.base
        if isinstance(e, Name):
            return e.id if e.id in params else origins.get(e.id)
        return None

    for s in stmts:
        if isinstance(s, (Assign, AugAssign)) and isinstance(s.target, Index):
            if base_root(s.target) in roots:
                return True
        if isinstance(s, For) and _writes_region(s.body, roots, origins, params):
            return True
        if isinstance(s, If) and (
            _writes_region(s.body, roots, origins, params)
            or _writes_region(s.orelse, roots, origins, params)
        ):
            return True
    return False


def _has_break(stmts) -> bool:
    for s in stmts:
        if isinstance(s, Break):
            return True
        if isinstance(s, If) and (_has_break(s.body) or _has_break(s.orelse)):
            return True
        # a nested For's break exits that loop, not this one
    return False


def check_order(func: NativeFunc, spec: EntrySpec) -> list[Diagnostic]:
    """SR064: is the executed order admissible per the certificate?"""
    diags: list[Diagnostic] = []
    subject = f"native:{func.lang}:{func.name}"

    def diag(lineno: int, msg: str, **data) -> None:
        diags.append(
            Diagnostic(
                "SR064", subject, f"line {lineno}: {msg}",
                {"line": lineno, "function": func.name,
                 "lang": func.lang, **data},
            )
        )

    # rule 1: no loop anywhere runs descending (strictness of the bound
    # comparison is a stream-loop property, checked in rule 2 — an
    # off-by-one `<=` on a change loop is a bounds bug, not order drift)
    for loop in _all_fors(func.body):
        if loop.step != 1:
            diag(
                loop.lineno,
                f"loop over {loop.var} runs descending ({loop.cond_op}, "
                f"step {loop.step:+d}); the reference order is strictly "
                f"ascending",
                var=loop.var,
            )

    # rule 2: the stream-loop chain matches the order certificate
    body = func.body
    chain: list[For] = []
    for level, ls in enumerate(spec.order):
        fors = _direct_fors(body)
        if len(fors) != 1:
            diag(
                func.lineno,
                f"expected exactly one stream loop at nesting level "
                f"{level}, found {len(fors)}",
            )
            return diags
        loop = fors[0]
        chain.append(loop)
        init_r = render_expr(loop.init) if loop.init is not None else "?"
        bound_r = render_expr(loop.bound)
        if loop.step == 1 and loop.cond_op != "<":
            diag(
                loop.lineno,
                f"stream loop uses non-strict bound ({loop.cond_op}); "
                f"the certificate requires half-open ascending coverage",
            )
        if init_r not in ls.inits or bound_r not in ls.bounds:
            diag(
                loop.lineno,
                f"stream loop runs {init_r}..{bound_r}, certificate "
                f"admits {'/'.join(ls.inits)}..{'/'.join(ls.bounds)}",
                init=init_r, bound=bound_r,
            )
        body = loop.body

    # rule 3: inside the innermost stream loop, the source-check loop
    # (the one that can break) precedes the state-write loop
    if not chain:
        return diags
    inner = chain[-1].body
    origins = _ptr_origins(func)
    params = set(func.param_names())
    state_regions = {
        r.name for r in spec.regions if r.writable and r.dtype == "uint8"
    }
    state_roots = {
        p.name for p in spec.params
        if p.kind == "region" and p.region in state_regions
    }
    check_pos = write_pos = None
    for pos, s in enumerate(inner):
        if isinstance(s, For):
            if check_pos is None and _has_break(s.body):
                check_pos = pos
            if write_pos is None and _writes_region(
                [s], state_roots, origins, params
            ):
                write_pos = pos
    if write_pos is not None and (check_pos is None or check_pos > write_pos):
        diag(
            chain[-1].lineno,
            "state-write loop precedes the source-check loop; the "
            "reference executes check-then-write per trial",
        )
    return diags
