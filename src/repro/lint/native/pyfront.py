"""Python front-end: lower the ``@njit`` twins into NIR.

The numba tier's kernels are plain python functions nested inside
:func:`repro.backends.numba_jit._jit` (so the module imports without
numba).  This front-end reads the *source* of that module, extracts the
inner ``FunctionDef`` nodes by name and lowers their restricted python
into the same NIR the C front-end produces — no numba import, no
execution: the verifier sees exactly the loops the JIT will compile.

The accepted fragment mirrors the C subset: ``range`` loops,
``if``/``break``/``continue``/``return``, integer arithmetic,
subscripts, ``.size``/``.shape[k]`` queries, boolean flags.  Anything
else raises :class:`~repro.lint.native.nir.NativeSyntaxError` — the
verifier refuses to guess about code it cannot model.
"""

from __future__ import annotations

import ast
import inspect

from .nir import (
    VOID,
    Assign,
    AugAssign,
    BinOp,
    BoolLit,
    Break,
    Continue,
    DimOf,
    Expr,
    For,
    If,
    Index,
    IntLit,
    Name,
    NativeFunc,
    NativeSyntaxError,
    Return,
    Stmt,
    Unary,
)

__all__ = ["parse_numba_funcs", "jit_source"]

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "/",
    ast.Mod: "%",
}

_CMPOPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


def jit_source(module=None) -> str:
    """The source text of the numba backend module."""
    if module is None:
        from ...backends import numba_jit as module  # noqa: PLC0415
    return inspect.getsource(module)


def _err(node: ast.AST, msg: str) -> NativeSyntaxError:
    line = getattr(node, "lineno", "?")
    return NativeSyntaxError(f"line {line}: {msg}")


def _lower_expr(node: ast.expr) -> Expr:
    if isinstance(node, ast.Name):
        return Name(node.id, lineno=node.lineno)
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return BoolLit(node.value, lineno=node.lineno)
        if isinstance(node.value, int):
            return IntLit(node.value, lineno=node.lineno)
        raise _err(node, f"unsupported constant {node.value!r}")
    if isinstance(node, ast.BinOp):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _err(node, f"unsupported operator {ast.dump(node.op)}")
        return BinOp(
            op, _lower_expr(node.left), _lower_expr(node.right),
            lineno=node.lineno,
        )
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise _err(node, "chained comparisons are outside the subset")
        op = _CMPOPS.get(type(node.ops[0]))
        if op is None:
            raise _err(node, "unsupported comparison")
        return BinOp(
            op, _lower_expr(node.left), _lower_expr(node.comparators[0]),
            lineno=node.lineno,
        )
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return Unary("!", _lower_expr(node.operand), lineno=node.lineno)
        if isinstance(node.op, ast.USub):
            return Unary("-", _lower_expr(node.operand), lineno=node.lineno)
        raise _err(node, "unsupported unary operator")
    if isinstance(node, ast.Subscript):
        return _lower_subscript(node)
    if isinstance(node, ast.Attribute):
        if node.attr == "size" and isinstance(node.value, ast.Name):
            return DimOf(node.value.id, None, lineno=node.lineno)
        raise _err(node, f"unsupported attribute .{node.attr}")
    raise _err(node, f"unsupported expression {type(node).__name__}")


def _lower_subscript(node: ast.Subscript) -> Expr:
    # arr.shape[k] -> DimOf(arr, k)
    if (
        isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
        and isinstance(node.value.value, ast.Name)
    ):
        axis = node.slice
        if not (isinstance(axis, ast.Constant) and isinstance(axis.value, int)):
            raise _err(node, ".shape index must be a literal axis")
        return DimOf(node.value.value.id, axis.value, lineno=node.lineno)
    base = _lower_expr(node.value)
    sl = node.slice
    elts = sl.elts if isinstance(sl, ast.Tuple) else [sl]
    return Index(
        base, tuple(_lower_expr(e) for e in elts), lineno=node.lineno
    )


def _lower_stmt(node: ast.stmt) -> Stmt:
    if isinstance(node, ast.Assign):
        if len(node.targets) != 1:
            raise _err(node, "multiple assignment targets")
        target = _lower_expr(node.targets[0])
        if not isinstance(target, (Name, Index)):
            raise _err(node, "unsupported assignment target")
        return Assign(target, _lower_expr(node.value), lineno=node.lineno)
    if isinstance(node, ast.AugAssign):
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise _err(node, "unsupported augmented assignment")
        target = _lower_expr(node.target)
        if not isinstance(target, (Name, Index)):
            raise _err(node, "unsupported assignment target")
        return AugAssign(target, op, _lower_expr(node.value), lineno=node.lineno)
    if isinstance(node, ast.For):
        return _lower_for(node)
    if isinstance(node, ast.If):
        return If(
            _lower_expr(node.test),
            tuple(_lower_stmt(s) for s in node.body),
            tuple(_lower_stmt(s) for s in node.orelse),
            lineno=node.lineno,
        )
    if isinstance(node, ast.Break):
        return Break(lineno=node.lineno)
    if isinstance(node, ast.Continue):
        return Continue(lineno=node.lineno)
    if isinstance(node, ast.Return):
        value = None if node.value is None else _lower_expr(node.value)
        return Return(value, lineno=node.lineno)
    raise _err(node, f"unsupported statement {type(node).__name__}")


def _lower_for(node: ast.For) -> For:
    if node.orelse:
        raise _err(node, "for-else is outside the subset")
    if not isinstance(node.target, ast.Name):
        raise _err(node, "loop target must be a plain name")
    it = node.iter
    if not (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Name)
        and it.func.id == "range"
        and not it.keywords
        and 1 <= len(it.args) <= 2
    ):
        raise _err(node, "loops must iterate range(n) or range(a, b)")
    if len(it.args) == 1:
        init: Expr = IntLit(0, lineno=node.lineno)
        bound = _lower_expr(it.args[0])
    else:
        init = _lower_expr(it.args[0])
        bound = _lower_expr(it.args[1])
    return For(
        var=node.target.id,
        var_ctype=None,
        init=init,
        cond_op="<",
        bound=bound,
        step=1,
        body=tuple(_lower_stmt(s) for s in node.body),
        lineno=node.lineno,
    )


def parse_numba_funcs(
    source: str, names: tuple[str, ...]
) -> list[NativeFunc]:
    """Extract and lower the named inner functions of ``_jit``.

    ``source`` is the full module text of ``repro.backends.numba_jit``;
    the inner ``@njit`` function definitions are located by name inside
    the ``_jit`` factory and lowered statement by statement.  A missing
    name is an error — the verifier must fail loudly if the twins are
    renamed without updating the specs.
    """
    tree = ast.parse(source)
    jit_def = next(
        (
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "_jit"
        ),
        None,
    )
    if jit_def is None:
        raise NativeSyntaxError("no _jit() factory found in numba module")
    inner = {
        n.name: n
        for n in ast.walk(jit_def)
        if isinstance(n, ast.FunctionDef) and n.name != "_jit"
    }
    funcs: list[NativeFunc] = []
    for name in names:
        fdef = inner.get(name)
        if fdef is None:
            raise NativeSyntaxError(
                f"@njit twin {name!r} not found inside _jit() "
                f"(have: {sorted(inner)})"
            )
        params = tuple(
            (a.arg, VOID) for a in fdef.args.args
        )  # types bound later from the kernel spec's regions
        body = tuple(_lower_stmt(s) for s in fdef.body)
        funcs.append(
            NativeFunc(
                name=fdef.name,
                params=params,
                ret=VOID,
                body=body,
                lang="numba",
                lineno=fdef.lineno,
            )
        )
    return funcs
