"""Symbolic polynomial arithmetic for the native bounds prover.

The native abstract interpreter (:mod:`repro.lint.native.absint`)
represents scalar quantities as intervals whose endpoints are
polynomials over the kernel's *size symbols* (``n_sites``, ``c_max``,
``n_types``, ...).  Bounds proofs then reduce to one decidable
question: is a polynomial provably nonnegative when every symbol is
nonnegative?

The trick that makes plain coefficient inspection complete enough for
the kernels at hand is the **lower-bound substitution**: a symbol
declared ``>= b`` enters every polynomial as ``(s' + b)`` with
``s' >= 0``.  After expansion, "all monomial coefficients >= 0" proves
statements like ``T*C*N - C*N + 1 >= 0`` (needs ``T >= 1``) without a
solver: with ``T = T' + 1`` it expands to ``T'*C*N + 1``.

This mirrors the residue-algebra style of
:mod:`repro.lint.offsets` — a tiny, purpose-built decision procedure
instead of a general SMT dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["Poly", "Interval", "TOP", "product"]


def _merge(terms: Mapping[tuple[str, ...], int]) -> dict[tuple[str, ...], int]:
    return {m: c for m, c in terms.items() if c != 0}


@dataclass(frozen=True)
class Poly:
    """A multivariate polynomial with integer coefficients.

    ``terms`` maps a *monomial* — a sorted tuple of symbol names,
    repeats encoding powers, ``()`` the constant term — to its
    coefficient.  All symbols are implicitly ``>= 0`` (larger lower
    bounds are folded in at construction, see :meth:`sym`).
    """

    terms: tuple[tuple[tuple[str, ...], int], ...] = ()

    # -- constructors --------------------------------------------------
    @staticmethod
    def const(value: int) -> "Poly":
        return Poly._of({(): int(value)})

    @staticmethod
    def sym(name: str, lower: int = 0) -> "Poly":
        """The symbol ``name`` with a declared lower bound.

        ``lower > 0`` substitutes ``name = name' + lower`` so that the
        nonnegativity test sees the slack variable ``name' >= 0``.
        """
        base = Poly._of({(name,): 1})
        if lower:
            base = base + Poly.const(lower)
        return base

    @staticmethod
    def _of(terms: Mapping[tuple[str, ...], int]) -> "Poly":
        merged = _merge(terms)
        return Poly(tuple(sorted(merged.items())))

    # -- arithmetic (ints coerce, so spec expressions read naturally) --
    def _dict(self) -> dict[tuple[str, ...], int]:
        return dict(self.terms)

    @staticmethod
    def _coerce(other: "Poly | int") -> "Poly":
        return Poly.const(other) if isinstance(other, int) else other

    def __add__(self, other: "Poly | int") -> "Poly":
        other = Poly._coerce(other)
        out = self._dict()
        for m, c in other.terms:
            out[m] = out.get(m, 0) + c
        return Poly._of(out)

    __radd__ = __add__

    def __sub__(self, other: "Poly | int") -> "Poly":
        return self + (-Poly._coerce(other))

    def __rsub__(self, other: "Poly | int") -> "Poly":
        return Poly._coerce(other) + (-self)

    def __neg__(self) -> "Poly":
        return Poly._of({m: -c for m, c in self.terms})

    def __mul__(self, other: "Poly | int") -> "Poly":
        other = Poly._coerce(other)
        out: dict[tuple[str, ...], int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                m = tuple(sorted(m1 + m2))
                out[m] = out.get(m, 0) + c1 * c2
        return Poly._of(out)

    __rmul__ = __mul__

    # -- decision procedure --------------------------------------------
    def is_nonneg(self) -> bool:
        """Provably ``>= 0`` for all nonnegative symbol values?

        Sound but incomplete: every monomial coefficient must be
        nonnegative.  Completeness is recovered in practice by the
        lower-bound substitution performed in :meth:`sym`.
        """
        return all(c >= 0 for _, c in self.terms)

    def is_const(self) -> bool:
        return all(m == () for m, _ in self.terms)

    def const_value(self) -> int | None:
        """The integer value if constant, else None."""
        if not self.is_const():
            return None
        return self.terms[0][1] if self.terms else 0

    def __le__(self, other: "Poly | int") -> bool:  # provable <=
        return (Poly._coerce(other) - self).is_nonneg()

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for m, c in self.terms:
            mono = "*".join(m) if m else ""
            if mono:
                parts.append(f"{c}*{mono}" if c != 1 else mono)
            else:
                parts.append(str(c))
        return " + ".join(parts).replace("+ -", "- ")


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) interval with polynomial endpoints.

    ``None`` endpoints mean unknown (±inf).  Multiplication is only
    precise when both operands are provably nonnegative or one side is
    a constant; anything else degrades to :data:`TOP`, which makes all
    downstream bounds proofs fail — conservative, never unsound.
    """

    lo: Poly | None = None
    hi: Poly | None = None

    @staticmethod
    def exact(p: Poly) -> "Interval":
        return Interval(p, p)

    @staticmethod
    def const(v: int) -> "Interval":
        return Interval.exact(Poly.const(v))

    @property
    def known(self) -> bool:
        return self.lo is not None and self.hi is not None

    def nonneg(self) -> bool:
        return self.lo is not None and self.lo.is_nonneg()

    def add(self, other: "Interval") -> "Interval":
        lo = self.lo + other.lo if (self.lo is not None and other.lo is not None) else None
        hi = self.hi + other.hi if (self.hi is not None and other.hi is not None) else None
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = self.lo - other.hi if (self.lo is not None and other.hi is not None) else None
        hi = self.hi - other.lo if (self.hi is not None and other.lo is not None) else None
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            -self.hi if self.hi is not None else None,
            -self.lo if self.lo is not None else None,
        )

    def mul(self, other: "Interval") -> "Interval":
        # constant scaling keeps exactness in either sign
        for a, b in ((self, other), (other, self)):
            c = a.lo.const_value() if (a.lo is not None and a.lo == a.hi) else None
            if c is not None:
                if not b.known:
                    return TOP if c != 0 else Interval.const(0)
                scaled = (b.lo * Poly.const(c), b.hi * Poly.const(c))
                return Interval(*(scaled if c >= 0 else scaled[::-1]))
        if self.known and other.known and self.nonneg() and other.nonneg():
            return Interval(self.lo * other.lo, self.hi * other.hi)  # type: ignore[operator]
        return TOP

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound of two branch values (conservative).

        Endpoints stay known only when the two candidates are provably
        ordered; incomparable symbolic endpoints degrade to unknown.
        """
        if self.lo is None or other.lo is None:
            lo = None
        elif self.lo <= other.lo:
            lo = self.lo
        elif other.lo <= self.lo:
            lo = other.lo
        else:
            lo = None
        if self.hi is None or other.hi is None:
            hi = None
        elif other.hi <= self.hi:
            hi = self.hi
        elif self.hi <= other.hi:
            hi = other.hi
        else:
            hi = None
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = str(self.lo) if self.lo is not None else "-inf"
        hi = str(self.hi) if self.hi is not None else "+inf"
        return f"[{lo}, {hi}]"


#: the unknown interval — any bounds proof through it fails
TOP = Interval()


def product(polys: Iterable[Poly]) -> Poly:
    out = Poly.const(1)
    for p in polys:
        out = out * p
    return out
