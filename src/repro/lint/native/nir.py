"""NIR — the typed native IR shared by the C and numba front-ends.

Both compiled tiers implement the *same* strict-order trial loops: the
``cnative`` tier as a restricted-C translation unit, the ``numba`` tier
as ``@njit`` python loops over the same packed tables.  The two
front-ends (:mod:`repro.lint.native.cfront`,
:mod:`repro.lint.native.pyfront`) lower both surface syntaxes into this
one IR so a single abstract interpreter
(:mod:`repro.lint.native.absint`) carries the SR062/SR063/SR064 proofs
for both tiers — the native analogue of how
:mod:`repro.lint.ir` serves every NumPy kernel.

The IR is deliberately tiny: the translation units are a restricted
language by construction (no calls, no heap, no aliasing beyond
pointer-plus-offset into caller buffers), and the front-ends *reject*
anything outside that fragment instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "CType",
    "VOID",
    "INT64",
    "INT32",
    "UINT8",
    "BOOL",
    "Expr",
    "Name",
    "IntLit",
    "BoolLit",
    "BinOp",
    "Unary",
    "Index",
    "DimOf",
    "Cast",
    "Cond",
    "Stmt",
    "Decl",
    "Assign",
    "AugAssign",
    "For",
    "If",
    "Break",
    "Continue",
    "Return",
    "NativeFunc",
    "NativeSyntaxError",
    "DTYPE_CTYPES",
    "LoopShape",
]


class NativeSyntaxError(ValueError):
    """The source is outside the restricted native fragment."""


@dataclass(frozen=True)
class CType:
    """A scalar or pointer type of the restricted fragment."""

    name: str  # int64 | int32 | uint8 | bool | void
    bits: int
    signed: bool
    pointer: bool = False
    const: bool = False

    def deref(self) -> "CType":
        if not self.pointer:
            raise NativeSyntaxError(f"dereference of non-pointer {self}")
        return CType(self.name, self.bits, self.signed, pointer=False)

    def __str__(self) -> str:
        core = f"{'u' if not self.signed and self.bits > 1 else ''}{self.name}"
        return f"{core}{'*' if self.pointer else ''}"


VOID = CType("void", 0, True)
INT64 = CType("int64", 64, True)
INT32 = CType("int32", 32, True)
UINT8 = CType("uint8", 8, False)
BOOL = CType("bool", 1, False)

#: numpy dtype name -> NIR scalar type
DTYPE_CTYPES: dict[str, CType] = {
    "int64": INT64,
    "int32": INT32,
    "uint8": UINT8,
    "bool": BOOL,
}


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Name:
    id: str
    lineno: int = 0


@dataclass(frozen=True)
class IntLit:
    value: int
    lineno: int = 0


@dataclass(frozen=True)
class BoolLit:
    value: bool
    lineno: int = 0


@dataclass(frozen=True)
class BinOp:
    """op in {+ - * / % < <= > >= == != && ||}."""

    op: str
    left: "Expr"
    right: "Expr"
    lineno: int = 0


@dataclass(frozen=True)
class Unary:
    """op in {- ! *}; ``*`` is pointer dereference (C only)."""

    op: str
    operand: "Expr"
    lineno: int = 0


@dataclass(frozen=True)
class Index:
    """``base[i0, i1, ...]`` — one index for flat C pointers, one per
    declared region dimension for the numba twins."""

    base: "Expr"
    indices: tuple["Expr", ...]
    lineno: int = 0


@dataclass(frozen=True)
class DimOf:
    """``arr.shape[axis]`` / ``arr.size`` (axis=None) from the numba
    twins — resolved against the region's declared dims."""

    base: str
    axis: int | None
    lineno: int = 0


@dataclass(frozen=True)
class Cast:
    ctype: CType
    operand: "Expr"
    lineno: int = 0


@dataclass(frozen=True)
class Cond:
    """Ternary ``test ? then : orelse``."""

    test: "Expr"
    then: "Expr"
    orelse: "Expr"
    lineno: int = 0


Expr = Union[Name, IntLit, BoolLit, BinOp, Unary, Index, DimOf, Cast, Cond]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Decl:
    """``ctype name = init;`` (python assignments use ctype=None)."""

    name: str
    ctype: CType | None
    init: Expr | None
    lineno: int = 0


@dataclass(frozen=True)
class Assign:
    target: Expr  # Name or Index
    value: Expr
    lineno: int = 0


@dataclass(frozen=True)
class AugAssign:
    target: Expr  # Name or Index
    op: str
    value: Expr
    lineno: int = 0


@dataclass(frozen=True)
class For:
    """Canonicalised counted loop.

    ``init`` may be None when the induction variable was initialised
    before the loop (C's ``for (; c < nc; ++c)`` idiom).  ``cond_op``
    is one of ``< <= > >=`` against ``bound``; ``step`` is ±1.
    """

    var: str
    var_ctype: CType | None
    init: Expr | None
    cond_op: str
    bound: Expr
    step: int
    body: tuple["Stmt", ...]
    lineno: int = 0


@dataclass(frozen=True)
class If:
    test: Expr
    body: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()
    lineno: int = 0


@dataclass(frozen=True)
class Break:
    lineno: int = 0


@dataclass(frozen=True)
class Continue:
    lineno: int = 0


@dataclass(frozen=True)
class Return:
    value: Expr | None
    lineno: int = 0


Stmt = Union[Decl, Assign, AugAssign, For, If, Break, Continue, Return]


@dataclass(frozen=True)
class NativeFunc:
    """One lowered native entry point."""

    name: str
    params: tuple[tuple[str, CType], ...]
    ret: CType
    body: tuple[Stmt, ...]
    lang: str  # "c" | "numba"
    lineno: int = 0

    def param_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.params)


@dataclass
class LoopShape:
    """Structural summary of one counted loop, for the SR064 check."""

    var: str
    init: str  # rendered init expression ("0", "starts[r]", "?")
    bound: str  # rendered bound expression
    cond_op: str
    step: int
    depth: int
    lineno: int = 0
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
