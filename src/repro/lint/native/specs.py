"""Kernel specifications: the trusted preconditions of the native tier.

Each compiled entry point is verified against a :class:`EntrySpec`
declaring exactly what its python wrapper establishes before the call:

* **symbols** — the size quantities (``N`` sites, ``T`` types, ``C``
  max changes, ``R`` replicas, ``B`` block length, ``n_trials``) with
  their guaranteed lower bounds (``cnative_tables`` can only be built
  from a compiled model with at least one type, one change slot and
  one site, hence ``T, C, N >= 1``).
* **regions** — every array the kernel touches, with its numpy dtype,
  symbolic extents per dimension, the value range the wrapper
  validates for its *contents* (``_stream_valid`` proves
  ``sites in [0, N-1]``, ``types in [0, T-1]``; table packing proves
  ``maps in [0, N-1]``, ``nch in [0, C]``), and — for nullable /
  flag-gated buffers — the guard name that must be tested before
  access.
* **params** — the positional binding of the entry point's parameters
  to regions, size symbols, or boolean flags.
* **order** — the loop-order certificate: the nesting chain of stream
  loops (init/bound each must render to an admitted form) under which
  strict ascending execution is one of the orders the reference
  kernel's commutativity argument admits (see the ``cnative`` module
  docstring for the argument per kernel).
* **guards** — the wrapper callables (dotted names) that must
  syntactically appear in each wrapper's source; they are the
  *justification* for the region value ranges, so a wrapper that drops
  its guard invalidates the bounds proof (SR062).

The specs are data, not code: the abstract interpreter
(:mod:`repro.lint.native.absint`) and the ABI checker
(:mod:`repro.lint.native.abi`) consume them; the differential fuzzer
exercises the same wrappers dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sym import Interval, Poly

__all__ = [
    "C_SPECS",
    "NUMBA_SPECS",
    "EntrySpec",
    "LoopSpec",
    "Param",
    "Region",
    "eval_expr",
    "symbol_table",
]

#: size symbol -> guaranteed lower bound
SYMBOL_LOWER = {
    "N": 1,  # n_sites: CompiledModel requires a nonempty lattice
    "T": 1,  # n_types: cnative_tables takes max() over >= 1 type
    "C": 1,  # c_max:   every type has >= 1 change slot
    "R": 0,  # n_reps
    "B": 0,  # n_blk (interleaved per-replica stream length)
    "n_trials": 0,
}


def symbol_table() -> dict[str, Poly]:
    """Fresh ``symbol -> Poly`` mapping with lower bounds folded in."""
    return {s: Poly.sym(s, low) for s, low in SYMBOL_LOWER.items()}


def eval_expr(expr: str, syms: dict[str, Poly]) -> Poly:
    """Evaluate a spec size/range expression (``"3*n_trials-1"``)."""
    out = eval(expr, {"__builtins__": {}}, dict(syms))  # noqa: S307
    return Poly.const(out) if isinstance(out, int) else out


@dataclass(frozen=True)
class Region:
    """One array the native kernel touches."""

    name: str
    dtype: str  # numpy dtype name: uint8 | int64 | int32 | bool
    dims: tuple[str, ...]  # symbolic extent expression per dimension
    #: (lo, hi) expressions for validated *content* values, or None
    value_range: tuple[str, str] | None = None
    writable: bool = False
    #: name that must be truth-tested on the path before access
    guard: str | None = None

    def extent(self, syms: dict[str, Poly]) -> Poly:
        out = Poly.const(1)
        for d in self.dims:
            out = out * eval_expr(d, syms)
        return out

    def dim_polys(self, syms: dict[str, Poly]) -> tuple[Poly, ...]:
        return tuple(eval_expr(d, syms) for d in self.dims)

    def value_interval(self, syms: dict[str, Poly]) -> "Interval | None":
        if self.value_range is None:
            return None
        lo, hi = self.value_range
        return Interval(eval_expr(lo, syms), eval_expr(hi, syms))


@dataclass(frozen=True)
class Param:
    """Positional binding of one entry-point parameter."""

    name: str
    kind: str  # "region" | "scalar" | "flag"
    region: str | None = None  # kind == "region"
    symbol: str | None = None  # kind == "scalar": bound exactly to this


@dataclass(frozen=True)
class LoopSpec:
    """One admitted stream loop in the order certificate."""

    inits: tuple[str, ...]  # admitted renders of the init expression
    bounds: tuple[str, ...]  # admitted renders of the bound expression


@dataclass(frozen=True)
class EntrySpec:
    """Everything the verifier knows about one native entry point."""

    name: str
    lang: str  # "c" | "numba"
    params: tuple[Param, ...]
    regions: tuple[Region, ...]
    #: nesting chain of trial-stream loops (outermost first)
    order: tuple[LoopSpec, ...]
    #: guard callables that must appear in each wrapper's source
    wrapper_guards: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: the @kernel-decorated wrappers (dotted names) calling this entry
    wrappers: tuple[str, ...] = ()

    def region(self, name: str) -> "Region | None":
        for r in self.regions:
            if r.name == name:
                return r
        return None


def _r(name, dtype, dims, rng=None, writable=False, guard=None) -> Region:
    return Region(name, dtype, tuple(dims), rng, writable, guard)


# -- shared region shapes ----------------------------------------------
_MAPS = _r("maps", "int64", ("T", "C", "N"), ("0", "N-1"))
_SRCS = _r("srcs", "uint8", ("T", "C"), ("0", "255"))
_TGTS = _r("tgts", "uint8", ("T", "C"), ("0", "255"))
_NCH = _r("nch", "int32", ("T",), ("0", "C"))
_SITES_1D = _r("sites", "int64", ("n_trials",), ("0", "N-1"))
_TYPES_1D = _r("types", "int64", ("n_trials",), ("0", "T-1"))
_REPS_1D = _r("reps", "int64", ("n_trials",), ("0", "R-1"))

_INNER_LOOPS = (LoopSpec(("0",), ("nc",)),)  # change loops: 0 -> nch[t]

_C_GUARDS = {
    "repro.backends.cnative.c_run_trials_sequential": (
        "_c_usable", "_stream_valid",
    ),
    "repro.backends.cnative.c_run_trials_batch": (
        "_c_usable", "_stream_valid",
    ),
    "repro.backends.cnative.c_run_trials_batch_with_duplicates": (
        "_c_usable", "_stream_valid",
    ),
    "repro.backends.cnative.c_execute_type_everywhere": (
        "_c_usable", "_stream_valid",
    ),
}

C_RUN_TRIALS = EntrySpec(
    name="repro_run_trials",
    lang="c",
    params=(
        Param("state", "region", region="state"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("c_max", "scalar", symbol="C"),
        Param("n_sites", "scalar", symbol="N"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("n_trials", "scalar", symbol="n_trials"),
        Param("counts", "region", region="counts"),
        Param("rec", "region", region="rec"),
    ),
    regions=(
        _r("state", "uint8", ("N",), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH, _SITES_1D, _TYPES_1D,
        _r("counts", "int64", ("T",), writable=True, guard="counts"),
        _r("rec", "int64", ("3*n_trials",), writable=True, guard="rec"),
    ),
    order=(LoopSpec(("0",), ("n_trials",)),) ,
    wrapper_guards=_C_GUARDS,
    wrappers=tuple(_C_GUARDS),
)

C_RUN_TRIALS_STACKED = EntrySpec(
    name="repro_run_trials_stacked",
    lang="c",
    params=(
        Param("states", "region", region="states"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("c_max", "scalar", symbol="C"),
        Param("n_sites", "scalar", symbol="N"),
        Param("reps", "region", region="reps"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("n_trials", "scalar", symbol="n_trials"),
        Param("counts", "region", region="counts"),
        Param("n_types", "scalar", symbol="T"),
    ),
    regions=(
        _r("states", "uint8", ("R", "N"), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH, _REPS_1D, _SITES_1D, _TYPES_1D,
        _r("counts", "int64", ("R", "T"), writable=True, guard="counts"),
    ),
    order=(LoopSpec(("0",), ("n_trials",)),),
    wrapper_guards={
        "repro.backends.cnative.c_run_trials_stacked": (
            "_c_usable", "_stream_valid",
        ),
    },
    wrappers=("repro.backends.cnative.c_run_trials_stacked",),
)

C_RUN_INTERLEAVED = EntrySpec(
    name="repro_run_interleaved",
    lang="c",
    params=(
        Param("states", "region", region="states"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("c_max", "scalar", symbol="C"),
        Param("n_sites", "scalar", symbol="N"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("starts", "region", region="starts"),
        Param("stops", "region", region="stops"),
        Param("n_reps", "scalar", symbol="R"),
        Param("n_blk", "scalar", symbol="B"),
        Param("counts", "region", region="counts"),
        Param("n_types", "scalar", symbol="T"),
    ),
    regions=(
        _r("states", "uint8", ("R", "N"), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH,
        _r("sites", "int64", ("R", "B"), ("0", "N-1")),
        _r("types", "int64", ("R", "B"), ("0", "T-1")),
        _r("starts", "int64", ("R",), ("0", "B")),
        _r("stops", "int64", ("R",), ("0", "B")),
        _r("counts", "int64", ("R", "T"), writable=True, guard="counts"),
    ),
    order=(
        LoopSpec(("0",), ("n_reps",)),
        LoopSpec(("starts[r]",), ("stops[r]",)),
    ),
    wrapper_guards={
        "repro.backends.cnative.c_run_trials_interleaved": (
            "_c_usable", "_stream_valid",
        ),
    },
    wrappers=("repro.backends.cnative.c_run_trials_interleaved",),
)

C_SPECS: tuple[EntrySpec, ...] = (
    C_RUN_TRIALS, C_RUN_TRIALS_STACKED, C_RUN_INTERLEAVED,
)


_NB_GUARDS = {
    "repro.backends.numba_jit.nb_run_trials_sequential": (
        "_usable", "_stream_valid",
    ),
    "repro.backends.numba_jit.nb_run_trials_batch": (
        "_usable", "_stream_valid",
    ),
    "repro.backends.numba_jit.nb_run_trials_batch_with_duplicates": (
        "_usable", "_stream_valid",
    ),
    "repro.backends.numba_jit.nb_execute_type_everywhere": (
        "_usable", "_stream_valid",
    ),
}

NB_RUN_TRIALS = EntrySpec(
    name="run_trials",
    lang="numba",
    params=(
        Param("state", "region", region="state"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("counts", "region", region="counts"),
        Param("use_counts", "flag"),
        Param("rec", "region", region="rec"),
        Param("use_rec", "flag"),
    ),
    regions=(
        _r("state", "uint8", ("N",), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH, _SITES_1D, _TYPES_1D,
        _r("counts", "int64", ("T",), writable=True, guard="use_counts"),
        _r(
            "rec", "int64", ("3*n_trials",), writable=True,
            guard="use_rec",
        ),
    ),
    order=(LoopSpec(("0",), ("sites.size",)),),
    wrapper_guards=_NB_GUARDS,
    wrappers=tuple(_NB_GUARDS),
)

NB_RUN_TRIALS_STACKED = EntrySpec(
    name="run_trials_stacked",
    lang="numba",
    params=(
        Param("states", "region", region="states"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("reps", "region", region="reps"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("counts", "region", region="counts"),
        Param("use_counts", "flag"),
    ),
    regions=(
        _r("states", "uint8", ("R", "N"), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH, _REPS_1D, _SITES_1D, _TYPES_1D,
        _r(
            "counts", "int64", ("R", "T"), writable=True,
            guard="use_counts",
        ),
    ),
    order=(LoopSpec(("0",), ("sites.size",)),),
    wrapper_guards={
        "repro.backends.numba_jit.nb_run_trials_stacked": (
            "_usable", "_stream_valid",
        ),
    },
    wrappers=("repro.backends.numba_jit.nb_run_trials_stacked",),
)

NB_RUN_INTERLEAVED = EntrySpec(
    name="run_interleaved",
    lang="numba",
    params=(
        Param("states", "region", region="states"),
        Param("maps", "region", region="maps"),
        Param("srcs", "region", region="srcs"),
        Param("tgts", "region", region="tgts"),
        Param("nch", "region", region="nch"),
        Param("sites", "region", region="sites"),
        Param("types", "region", region="types"),
        Param("starts", "region", region="starts"),
        Param("stops", "region", region="stops"),
        Param("counts", "region", region="counts"),
        Param("use_counts", "flag"),
    ),
    regions=(
        _r("states", "uint8", ("R", "N"), writable=True),
        _MAPS, _SRCS, _TGTS, _NCH,
        _r("sites", "int64", ("R", "B"), ("0", "N-1")),
        _r("types", "int64", ("R", "B"), ("0", "T-1")),
        _r("starts", "int64", ("R",), ("0", "B")),
        _r("stops", "int64", ("R",), ("0", "B")),
        _r(
            "counts", "int64", ("R", "T"), writable=True,
            guard="use_counts",
        ),
    ),
    order=(
        LoopSpec(("0",), ("states.shape[0]",)),
        LoopSpec(("starts[r]",), ("stops[r]",)),
    ),
    wrapper_guards={
        "repro.backends.numba_jit.nb_run_trials_interleaved": (
            "_usable", "_stream_valid",
        ),
    },
    wrappers=("repro.backends.numba_jit.nb_run_trials_interleaved",),
)

NUMBA_SPECS: tuple[EntrySpec, ...] = (
    NB_RUN_TRIALS, NB_RUN_TRIALS_STACKED, NB_RUN_INTERLEAVED,
)
