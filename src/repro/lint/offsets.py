"""Offset algebra: pattern footprints and conflict-witness attribution.

The non-overlap rule is a statement about *offsets*, not about lattice
sites: reactions anchored at sites ``s`` and ``t`` touch a common cell
iff ``t - s = a - b`` for offsets ``a`` in the footprint of one
reaction type and ``b`` in the footprint of another.  Lifting the rule
to this offset algebra is what makes conflict-freedom a finite,
lattice-size-independent property — the whole symbolic race detector
(:mod:`repro.lint.partition_lint`) operates on the difference set
``D = {a - b}`` and never enumerates sites.

This module computes the difference set together with a *witness* per
displacement — the concrete reaction pair and offset pair realising it
— so that every failed proof names the reactions and the overlapping
cell of its counterexample, not just an abstract displacement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lattice import Offset
from ..core.model import Model

__all__ = ["Witness", "Conflict", "conflict_witnesses", "footprints"]


@dataclass(frozen=True)
class Witness:
    """One realisation ``a - b = d`` of a conflict displacement.

    Reaction ``reaction_a`` anchored at ``s`` touches ``s + offset_a``;
    reaction ``reaction_b`` anchored at ``t = s + d`` touches
    ``t + offset_b`` — the same cell.
    """

    reaction_a: str
    offset_a: Offset
    reaction_b: str
    offset_b: Offset


@dataclass(frozen=True)
class Conflict:
    """A minimal counterexample to the non-overlap rule.

    Two distinct sites ``site_s`` and ``site_t`` share chunk ``chunk``
    although reactions ``reaction_a`` (anchored at ``site_s``) and
    ``reaction_b`` (anchored at ``site_t``) both touch the lattice
    ``cell``; ``displacement`` is ``site_t - site_s`` before periodic
    wrapping.
    """

    site_s: Offset
    site_t: Offset
    chunk: int
    displacement: Offset
    reaction_a: str
    offset_a: Offset
    reaction_b: str
    offset_b: Offset
    cell: Offset

    def describe(self) -> str:
        """Human-readable one-liner naming sites, reactions and cell."""
        return (
            f"sites {self.site_s} and {self.site_t} share chunk "
            f"{self.chunk} but {self.reaction_a}@{self.site_s} and "
            f"{self.reaction_b}@{self.site_t} both touch cell {self.cell} "
            f"(displacement {self.displacement})"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable payload for :class:`~repro.lint.diagnostics.Diagnostic`."""
        return {
            "site_s": list(self.site_s),
            "site_t": list(self.site_t),
            "chunk": self.chunk,
            "displacement": list(self.displacement),
            "reaction_a": self.reaction_a,
            "offset_a": list(self.offset_a),
            "reaction_b": self.reaction_b,
            "offset_b": list(self.offset_b),
            "cell": list(self.cell),
        }


def footprints(model: Model) -> dict[str, tuple[Offset, ...]]:
    """Per-reaction-type footprint ``Nb_Rt`` as offset tuples."""
    return {rt.name: rt.neighborhood for rt in model.reaction_types}


def conflict_witnesses(model: Model) -> dict[Offset, Witness]:
    """The conflict difference set with one witness per displacement.

    Maps every nonzero ``d = a - b`` (``a`` in the footprint of some
    reaction type, ``b`` in the footprint of another — or the same)
    to a :class:`Witness` realising it.  The key set equals
    :func:`repro.partition.partition.conflict_displacements` of the
    union neighborhood; the values additionally attribute each
    displacement to a concrete reaction pair.

    Witness preference: same-reaction pairs are kept only when no
    cross-reaction pair realises the displacement, and among candidates
    the lexicographically first (by reaction names, then offsets) wins
    — deterministic output for stable counterexamples.
    """
    out: dict[Offset, Witness] = {}
    rts = model.reaction_types
    for rt_a in rts:
        for rt_b in rts:
            for a in rt_a.neighborhood:
                for b in rt_b.neighborhood:
                    d = tuple(x - y for x, y in zip(a, b))
                    if not any(d):
                        continue
                    cand = Witness(rt_a.name, a, rt_b.name, b)
                    prev = out.get(d)
                    if prev is None or _witness_key(cand) < _witness_key(prev):
                        out[d] = cand
    return out


def _witness_key(w: Witness) -> tuple:
    """Sort key preferring cross-reaction pairs, then lexicographic order."""
    return (w.reaction_a == w.reaction_b, w.reaction_a, w.reaction_b, w.offset_a, w.offset_b)
