"""Structured diagnostics with stable ``SR0xx`` error codes.

Every lint pass reports through :class:`Diagnostic` records collected
in a :class:`LintReport`.  Codes are *stable*: once published they keep
their meaning forever (tools and CI configurations key on them), so new
checks get new codes and retired checks leave gaps.

Code ranges
-----------
``SR00x``
    partition / tiling race detection (the non-overlap rule),
``SR01x``
    model sanity (probability mass, reachability, conservation),
``SR03x``
    RNG draw accounting (sequential vs. ensemble kernels),
``SR04x``
    kernel dataflow: scatter aliasing proofs (SR040/SR041) and
    shape/dtype inference (SR042/SR043),
``SR05x``
    kernel effect contracts: undeclared mutation (SR050) and
    sequential/ensemble twin drift (SR051),
``SR06x``
    native-tier verification (:mod:`repro.lint.native`): C/ctypes ABI
    agreement (SR060/SR061), symbolic bounds and overflow proofs over
    the compiled loops (SR062/SR063), and twin loop-order admissibility
    (SR064),
``SR07x``
    process-level protocol verification (:mod:`repro.lint.protocol`):
    shared-memory lifecycle typestate (SR070/SR071), signal/ambient
    stack pairing (SR072), checkpoint round-trip field and codec
    agreement (SR073/SR074), recovery-ladder draw and snapshot
    invariance (SR075/SR076), spawn-safety of worker initializers
    (SR077), and the fail-closed unmodeled-construct code (SR078).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["CODES", "Diagnostic", "LintReport", "code_table"]


#: code -> (severity, slug, one-line description).  Append-only.
CODES: dict[str, tuple[str, str, str]] = {
    "SR001": (
        "error",
        "tiling-residue-conflict",
        "modular tiling maps two conflicting sites into one residue class "
        "(fails on every aligned lattice size)",
    ),
    "SR002": (
        "error",
        "tiling-wrap-conflict",
        "modular tiling conflicts under the periodic wrap of a specific "
        "lattice shape",
    ),
    "SR003": (
        "error",
        "partition-conflict",
        "partition places two conflicting sites in the same chunk",
    ),
    "SR004": (
        "info",
        "partition-suboptimal",
        "partition uses more chunks than the clique lower bound requires",
    ),
    "SR005": (
        "error",
        "single-type-conflict",
        "partition is not conflict-free for a single reaction type "
        "(type-partitioned CA precondition)",
    ),
    "SR010": (
        "error",
        "probability-mass",
        "per-site reaction probability mass exceeds 1 at the chosen time step",
    ),
    "SR011": (
        "warning",
        "dead-reaction",
        "reaction can never become enabled from the initial species set",
    ),
    "SR012": (
        "warning",
        "unreachable-species",
        "species is neither present initially nor produced by any reaction",
    ),
    "SR013": (
        "warning",
        "null-reaction",
        "reaction rewrites every site to its current species (no effect)",
    ),
    "SR014": (
        "error",
        "conservation-violated",
        "declared conservation law is not conserved by the stoichiometry",
    ),
    "SR015": (
        "error",
        "non-finite-rate",
        "reaction rate constant is not finite",
    ),
    "SR016": (
        "warning",
        "duplicate-reaction",
        "two reaction types share an identical change pattern",
    ),
    "SR030": (
        "error",
        "ensemble-extra-draw",
        "ensemble replica stream draws a kind the sequential kernel never draws",
    ),
    "SR031": (
        "error",
        "schedule-draw-on-replica-stream",
        "shared-schedule randomness drawn from a per-replica stream",
    ),
    "SR032": (
        "warning",
        "missing-replica-draw",
        "sequential draw kind missing from the ensemble counterpart",
    ),
    "SR040": (
        "error",
        "scatter-lost-update",
        "augmented fancy-index scatter whose index set may repeat "
        "(numpy drops all but one update; use np.add.at or dedup)",
    ),
    "SR041": (
        "error",
        "scatter-write-alias",
        "fancy-index scatter writes array values through possibly "
        "repeated indices (surviving value is an ordering accident)",
    ),
    "SR042": (
        "error",
        "shape-broadcast-mismatch",
        "kernel operands have provably incompatible shapes under "
        "numpy broadcasting",
    ),
    "SR043": (
        "warning",
        "dtype-downcast",
        "implicit store narrows the value dtype (information loss "
        "without an explicit astype)",
    ),
    "SR050": (
        "error",
        "undeclared-mutation",
        "kernel mutates an input its @kernel contract does not "
        "declare in writes=/caches= (or mutates despite pure=True)",
    ),
    "SR051": (
        "error",
        "twin-contract-drift",
        "sequential/ensemble kernel twins disagree on declared "
        "effects after parameter renaming",
    ),
    "SR060": (
        "error",
        "native-signature-mismatch",
        "native entry point, ctypes declaration and kernel binding "
        "disagree on arity or parameter kind (pointer vs scalar)",
    ),
    "SR061": (
        "error",
        "native-width-mismatch",
        "C parameter type and numpy dtype / ctypes declaration differ "
        "in integer width or signedness",
    ),
    "SR062": (
        "error",
        "native-unproven-bounds",
        "array subscript in a native kernel is not provably in-bounds "
        "under the wrapper-validated preconditions",
    ),
    "SR063": (
        "error",
        "native-overflow",
        "integer expression in a native kernel may overflow or "
        "truncate at its declared width",
    ),
    "SR064": (
        "error",
        "native-order-drift",
        "native twin executes trials in an order its reference "
        "kernel's commutativity argument does not admit",
    ),
    "SR070": (
        "error",
        "shm-lifecycle-leak",
        "shared-memory segment has a control path (exception paths and "
        "interpreter shutdown included) on which it is never both "
        "closed and unlinked",
    ),
    "SR071": (
        "error",
        "shm-use-after-close",
        "shared-memory state or a view into it is accessed on a path "
        "after the segment has been released",
    ),
    "SR072": (
        "error",
        "unbalanced-protocol-pair",
        "signal-handler install or ambient-stack push is not paired "
        "with its restore/pop on every control path (the pop must sit "
        "in a finally covering the pushed region)",
    ),
    "SR073": (
        "error",
        "checkpoint-field-drift",
        "checkpoint payload key is written but never restored, or "
        "restored but never written, by the matching "
        "checkpoint_payload/restore_payload pair",
    ),
    "SR074": (
        "error",
        "checkpoint-codec-mismatch",
        "checkpoint field crosses the encode_array/decode_array (or "
        "rng_state/restore_rng_state) codec asymmetrically — the "
        "dtype/encoding round trip is broken",
    ),
    "SR075": (
        "error",
        "recovery-draw-divergence",
        "recovery-ladder rung or worker dispatch path performs an RNG "
        "draw, changing draw counts relative to an undisturbed run",
    ),
    "SR076": (
        "error",
        "recovery-uncaptured-state",
        "recovery rung mutates or re-dispatches state the pre-chunk "
        "snapshot does not capture or restore",
    ),
    "SR077": (
        "error",
        "spawn-unsafe-capture",
        "worker initializer captures a non-picklable object or reads a "
        "master-side mutable global that spawn-context workers never "
        "receive",
    ),
    "SR078": (
        "error",
        "protocol-unmodeled",
        "protocol verifier cannot model a construct in a "
        "protocol-critical function; nothing is proven (fail closed)",
    ),
}

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding: a stable code, a location and a message.

    ``subject`` names the artefact being linted (a model, a partition,
    a tiling spec, a simulator pair); ``data`` carries the structured
    counterexample payload (site pair, reaction pair, overlapping cell,
    displacement, ...) so that tools need not parse the message.
    """

    code: str
    subject: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        """``"error"``, ``"warning"`` or ``"info"`` (fixed per code)."""
        return CODES[self.code][0]

    @property
    def slug(self) -> str:
        """Short kebab-case name of the check behind the code."""
        return CODES[self.code][1]

    def render(self) -> str:
        """One-line human-readable rendering."""
        return f"{self.code} {self.severity:<7s} [{self.subject}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (used by ``lint --json``)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "slug": self.slug,
            "subject": self.subject,
            "message": self.message,
            "data": self.data,
        }


class LintReport:
    """An ordered collection of diagnostics plus pass metadata.

    Reports merge (``+=``), sort by severity for rendering, and decide
    the CI verdict: :attr:`ok` is True when no error-severity
    diagnostic is present (``strict=True`` also fails on warnings).
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)
        #: free-form one-line notes (proof statements, pass summaries)
        self.notes: list[str] = []

    def add(self, diag: Diagnostic) -> None:
        """Append one diagnostic."""
        self.diagnostics.append(diag)

    def note(self, text: str) -> None:
        """Record a pass note (e.g. a proof statement) for the report."""
        self.notes.append(text)

    def extend(self, other: "LintReport") -> None:
        """Merge another report's diagnostics and notes into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.notes.extend(other.notes)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Diagnostics with error severity."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Diagnostics with warning severity."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    def ok(self, strict: bool = False) -> bool:
        """No errors (and, with ``strict``, no warnings)?"""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def by_code(self, code: str) -> list[Diagnostic]:
        """All diagnostics carrying one code."""
        return [d for d in self.diagnostics if d.code == code]

    def render(self) -> str:
        """Multi-line report: notes, then diagnostics by severity."""
        lines = list(self.notes)
        ordered = sorted(
            self.diagnostics, key=lambda d: _SEVERITY_ORDER[d.severity]
        )
        lines += [d.render() for d in ordered]
        n_err, n_warn = len(self.errors), len(self.warnings)
        lines.append(
            f"lint: {n_err} error(s), {n_warn} warning(s), "
            f"{len(self.diagnostics) - n_err - n_warn} info"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """The whole report as a JSON document.

        Diagnostics are emitted in deterministic ``(code, file, line)``
        order — pass scheduling must not leak into the document, so two
        runs over the same tree diff byte-identically in CI artifacts.
        """

        def sort_key(d: Diagnostic) -> tuple[str, str, int, str, str]:
            data = d.data if isinstance(d.data, dict) else {}
            line = data.get("line", 0)
            return (
                d.code,
                str(data.get("file", "")),
                line if isinstance(line, int) else 0,
                d.subject,
                d.message,
            )

        ordered = sorted(self.diagnostics, key=sort_key)
        return json.dumps(
            {
                "notes": self.notes,
                "diagnostics": [d.to_dict() for d in ordered],
                "ok": self.ok(),
            },
            indent=2,
        )


def code_table() -> list[tuple[str, str, str, str]]:
    """``(code, severity, slug, description)`` rows for documentation."""
    return [
        (code, sev, slug, desc) for code, (sev, slug, desc) in sorted(CODES.items())
    ]
