"""Kernel-level static analysis: the scatter/gather aliasing prover.

This pass lifts the package's conflict-freedom story down to the
vectorized NumPy kernels: the partition linter proves that distinct
chunk sites cannot have overlapping reaction footprints; this module
proves that the kernels *exploiting* that theorem cannot reintroduce
a race through aliasing scatter writes, undeclared mutation, or shape
and dtype drift.  It is pure static analysis — no kernel is executed.

Checks (stable codes, see :data:`repro.lint.diagnostics.CODES`):

SR040 *scatter-lost-update* (error)
    ``arr[idx] += v`` (any augmented op) where ``idx`` is a fancy index
    that may contain duplicates.  NumPy buffers the gather, so repeated
    indices silently drop all but one contribution — the in-kernel
    analogue of the within-chunk race the partition rules out.  Safe
    routes: ``np.add.at``, an ``_occurrence_index`` round mask, or a
    provably duplicate-free index (``np.arange``, boolean-mask subsets
    of ``disjoint`` parameters, injective maps gathered at unique
    indices, ...).

SR041 *scatter-write-alias* (error)
    ``arr[idx] = values`` with possibly-repeated ``idx`` and a
    non-scalar right-hand side: which value lands is an ordering
    accident.  (A scalar RHS is exempt — last-write-wins with an
    identical value.)  Justifiable via a contract ``justify`` entry or
    a ``# lint: justified(SR041): ...`` pragma when disjointness
    follows from an argument outside the analyzer's fragment.

SR042 *shape-broadcast-mismatch* (error)
    Provably incompatible operand shapes under broadcasting, using the
    symbolic ``(C, T, N)`` / stacked ``(R, N)`` dims the contracts
    declare.  Only concrete, unequal, non-1 dimension pairs fire.

SR043 *dtype-downcast* (warning)
    Implicit value-narrowing store (e.g. ``float64`` into ``int64``,
    ``int64`` into ``int32``).  Explicit ``astype`` never fires.

SR050 *undeclared-mutation* (error)
    A kernel mutates a parameter (or ``self.*`` attribute) that its
    ``@kernel`` contract does not list in ``writes``/``caches`` — or
    declares ``pure=True`` while mutating anything reachable from its
    arguments.

SR051 *twin-contract-drift* (error)
    A stacked/interleaved ensemble kernel and its declared sequential
    ``twin`` disagree on effects after applying the parameter
    ``rename`` map (purity flip, or mismatched write sets restricted
    to the shared parameters).  This extends the sequential/ensemble
    pairing discipline of :mod:`repro.lint.rng_lint` from RNG draws to
    memory effects; ``caches`` are invisible to twins by design.

Entry point: :func:`lint_kernels`, wired into
``python -m repro lint --kernels`` and the CI strict gate.
:func:`runtime_write_collisions` is the brute-force runtime
counterpart used by the differential tests.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .contracts import KernelContract, contract_of, registered_kernels
from .diagnostics import Diagnostic, LintReport
from .ir import KernelIR, build_ir

__all__ = [
    "KERNEL_MODULES",
    "analyze_kernel",
    "check_twins",
    "lint_kernels",
    "runtime_write_collisions",
]

#: the kernel modules the CI gate analyzes
KERNEL_MODULES: tuple[str, ...] = (
    "repro.core.kernels",
    "repro.core.compiled",
    "repro.ensemble.rsm",
    "repro.ensemble.ndca",
    "repro.ensemble.pndca",
    "repro.backends.cnative",
    "repro.backends.numba_jit",
)


def _subject(ir: KernelIR) -> str:
    return f"{ir.module}.{ir.qualname}"


def _allowed(root: str, allowed: frozenset[str]) -> bool:
    """Is a mutation root covered by a declared write/cache entry?

    ``"compiled"`` covers ``"compiled._seq_tables"`` (object-level
    grants cover attribute stores); dotted declarations match exactly
    or by prefix.
    """
    for w in allowed:
        if root == w or root.startswith(w + "."):
            return True
    return False


def _emit(
    report: LintReport,
    ir: KernelIR,
    code: str,
    lineno: int,
    message: str,
    data: dict[str, Any],
) -> None:
    """Add a diagnostic, honouring pragma / contract justifications."""
    reason = ir.pragma_for(lineno, code) or ir.contract.justify.get(code)
    if reason is not None:
        report.note(
            f"{_subject(ir)}:{lineno}: {code} justified: {reason}"
        )
        return
    report.add(
        Diagnostic(
            code=code,
            subject=f"{_subject(ir)}:{lineno}",
            message=message,
            data=data,
        )
    )


def analyze_kernel(
    fn: Callable[..., Any], source: str | None = None
) -> LintReport:
    """Static report for one ``@kernel``-decorated function.

    ``source`` overrides the function's real source (for analyzing
    seeded mutants in tests).
    """
    return _analyze_ir(build_ir(fn, source=source))


def _analyze_ir(ir: KernelIR) -> LintReport:
    report = LintReport()
    contract = ir.contract

    for sc in ir.scatters:
        if sc.index_unique:
            continue
        if sc.augmented:
            _emit(
                report, ir, "SR040", sc.lineno,
                f"augmented scatter '{sc.target} op= ...' uses a fancy "
                f"index that may repeat values: with duplicate indices "
                f"numpy drops all but one update (lost update); route "
                f"through np.add.at or an occurrence-round dedup, or "
                f"prove the index duplicate-free",
                {"target": sc.target, "roots": sorted(sc.roots)},
            )
        elif not sc.value_scalar:
            _emit(
                report, ir, "SR041", sc.lineno,
                f"scatter '{sc.target} = ...' writes array values "
                f"through a fancy index that may repeat: the surviving "
                f"value per repeated index is an ordering accident",
                {"target": sc.target, "roots": sorted(sc.roots)},
            )

    allowed = contract.allowed_writes()
    seen: set[tuple[str, int]] = set()
    for mu in ir.mutations:
        bad = sorted(r for r in mu.roots if not _allowed(r, allowed))
        if not bad:
            continue
        key = (",".join(bad), mu.lineno)
        if key in seen:
            continue
        seen.add(key)
        what = "pure kernel mutates" if contract.pure else (
            "kernel mutates undeclared"
        )
        _emit(
            report, ir, "SR050", mu.lineno,
            f"{what} {', '.join(bad)} (via {mu.via} on {mu.target}); "
            f"declare it in writes=/caches= or make the effect local",
            {"roots": bad, "via": mu.via, "target": mu.target},
        )

    for sh in ir.shape_issues:
        _emit(
            report, ir, "SR042", sh.lineno, sh.detail, {"detail": sh.detail}
        )
    for ca in ir.cast_issues:
        _emit(
            report, ir, "SR043", ca.lineno,
            f"implicit downcast storing {ca.from_dtype} into "
            f"{ca.to_dtype} array '{ca.target}' (use an explicit astype "
            f"if intended)",
            {
                "target": ca.target,
                "from": ca.from_dtype,
                "to": ca.to_dtype,
            },
        )
    return report


def _find_twin(
    contract: KernelContract, kernels: Sequence[Callable[..., Any]]
) -> Callable[..., Any] | None:
    for fn in kernels:
        if fn.__name__ == contract.twin:
            return fn
    return None


def _twin_params(fn: Callable[..., Any]) -> set[str]:
    import inspect

    try:
        return set(inspect.signature(fn).parameters)
    except (TypeError, ValueError):  # pragma: no cover
        return set()


def check_twins(kernels: Sequence[Callable[..., Any]]) -> LintReport:
    """SR051: effect-contract drift between sequential/ensemble twins."""
    report = LintReport()
    for fn in kernels:
        contract = contract_of(fn)
        if contract is None or contract.twin is None:
            continue
        subject = f"{fn.__module__}.{fn.__qualname__}"
        twin = _find_twin(contract, kernels)
        if twin is None:
            report.add(
                Diagnostic(
                    code="SR051",
                    subject=subject,
                    message=f"declared twin {contract.twin!r} is not a "
                    f"registered kernel",
                    data={"twin": contract.twin},
                )
            )
            continue
        twin_contract = contract_of(twin)
        assert twin_contract is not None
        if contract.pure != twin_contract.pure:
            report.add(
                Diagnostic(
                    code="SR051",
                    subject=subject,
                    message=f"purity drift against twin {contract.twin}: "
                    f"pure={contract.pure} vs {twin_contract.pure}",
                    data={"twin": contract.twin},
                )
            )
            continue
        # writes, mapped through the rename onto the twin's parameter
        # space; the comparison is restricted to parameters both twins
        # actually have (the sequential `record` hook and ensemble-only
        # extras are out of scope), and caches are benign memoisation
        # invisible to the comparison
        rename = dict(contract.rename)
        mapped = {rename.get(w, w) for w in contract.writes}
        shared = {rename.get(p, p) for p in _twin_params(fn)}
        shared &= _twin_params(twin)
        twin_writes = set(twin_contract.writes) & shared
        mapped &= shared
        if mapped != twin_writes:
            report.add(
                Diagnostic(
                    code="SR051",
                    subject=subject,
                    message=f"write-set drift against twin "
                    f"{contract.twin}: {sorted(mapped)} vs "
                    f"{sorted(twin_writes)} on the shared parameters",
                    data={
                        "twin": contract.twin,
                        "writes": sorted(mapped),
                        "twin_writes": sorted(twin_writes),
                    },
                )
            )
        else:
            report.note(
                f"twin contracts agree: {fn.__name__} ≡ "
                f"{contract.twin} on {sorted(mapped)}"
            )
    return report


def lint_kernels(
    modules: Iterable[str] = KERNEL_MODULES,
) -> LintReport:
    """Analyze every registered kernel of the given modules.

    Imports the modules (running their ``@kernel`` decorators), builds
    the dataflow IR of each kernel, emits SR040-SR043/SR050
    diagnostics, then cross-checks the declared sequential/ensemble
    twins (SR051).
    """
    modules = tuple(modules)
    for mod in modules:
        importlib.import_module(mod)
    kernels = registered_kernels(modules)
    report = LintReport()
    n_scatters = 0
    for fn in kernels:
        ir = build_ir(fn)
        n_scatters += len(ir.scatters)
        report.extend(_analyze_ir(ir))
    report.extend(check_twins(kernels))
    report.note(
        f"kernel lint: {len(kernels)} kernels across {len(modules)} "
        f"modules, {n_scatters} scatter site(s) analyzed"
    )
    return report


# ----------------------------------------------------------------------
# runtime ground truth for the differential tests
# ----------------------------------------------------------------------

def runtime_write_collisions(
    compiled: Any, sites: np.ndarray, types: np.ndarray
) -> list[tuple[int, int, int]]:
    """Brute-force write-footprint collisions of one trial batch.

    Enumerates the *write* index set of every trial ``(site, type)``
    through the compiled neighbour maps and reports every flat cell
    written by two distinct trials, as ``(cell, trial_i, trial_j)``
    triples.  An empty result is the runtime ground truth that a
    simultaneous scatter over this batch cannot lose updates — the
    property SR040/SR041 prove statically for the kernels.
    """
    sites = np.asarray(sites, dtype=np.intp)
    types = np.asarray(types, dtype=np.intp)
    owner: dict[int, int] = {}
    collisions: list[tuple[int, int, int]] = []
    for trial, (s, t) in enumerate(zip(sites.tolist(), types.tolist())):
        ct = compiled.types[t]
        for m in ct.maps:
            cell = int(m[s])
            prev = owner.get(cell)
            if prev is not None and prev != trial:
                collisions.append((cell, prev, trial))
            else:
                owner[cell] = trial
    return collisions
