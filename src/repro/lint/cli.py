"""``python -m repro lint`` — the static verification CI gate.

Default invocation lints every registered model: sanity pass, then the
symbolic conflict-freedom proof for the model's canonical modular
tiling (``find_modular_tiling``), then — once each — the RNG draw
audit of the sequential/ensemble kernel pairs and the native-tier
verifier.  Exit status 0 iff no error-severity diagnostic fired
(``--strict`` also fails on warnings).

Targeted runs::

    python -m repro lint --model ziff                  # one model
    python -m repro lint --model ziff --tiling 5:1,2   # explicit tiling
    python -m repro lint --model ziff --tiling 5:1,2 --shape 7x7
    python -m repro lint --kernels --strict            # kernel pass only
    python -m repro lint --native --strict             # native tier only
    python -m repro lint --protocol --strict           # protocol layer only
    python -m repro lint --json                        # machine-readable
    python -m repro lint --list-codes                  # error-code table

``--kernels`` runs the kernel-level pass alone (scatter aliasing
proofs SR040/SR041, shape/dtype dataflow SR042/SR043, effect
contracts SR050/SR051) over every ``@kernel``-decorated function in
:data:`repro.lint.kernel_lint.KERNEL_MODULES` — no models are built,
so it is fast enough for a pre-commit hook.

``--native`` runs the native-tier verifier alone
(:mod:`repro.lint.native`, SR060-SR064): ABI agreement between the C
signatures, the ctypes table, the packed numpy dtypes and the
``@kernel`` contracts, then the symbolic bounds/overflow proofs and
the loop-order certificates over both the cnative translation unit
and the ``@njit`` twins.  Everything is source-level: no C compiler
or numba installation is needed.

``--protocol`` runs the process-level protocol verifier alone
(:mod:`repro.lint.protocol`, SR070-SR078): the SharedMemory lifecycle
typestate, signal/ambient-stack pairing, checkpoint round-trip field
analysis, recovery-ladder draw/snapshot invariance and spawn-safety
passes over the executor and resilience layers.  Everything is
source-level: no pools are spawned and no signals installed.

``--shape`` switches the proof from "all aligned lattice sizes" to the
exact borrow analysis for one finite periodic shape — use it to check
a lattice whose sides are *not* multiples of the tiling modulus.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from ..core.model import Model
from .diagnostics import LintReport, code_table
from .engine import run_lint

__all__ = ["MODEL_REGISTRY", "main", "add_lint_arguments"]


def _ziff() -> tuple[Model, list[str] | None]:
    from ..models import ziff_model

    return ziff_model(), None


def _zgb() -> tuple[Model, list[str] | None]:
    from ..models import zgb_model

    return zgb_model(0.5), None


def _diffusion_1d() -> tuple[Model, list[str] | None]:
    from ..models import diffusion_model_1d

    # experiments start from a random gas: vacancies and particles
    return diffusion_model_1d(), ["*", "A"]


def _diffusion_2d() -> tuple[Model, list[str] | None]:
    from ..models import diffusion_model_2d

    return diffusion_model_2d(), ["*", "A"]


def _ising() -> tuple[Model, list[str] | None]:
    from ..models import ising_model_2d

    # both spin species exist in any initial configuration
    return ising_model_2d(beta=0.4), ["-", "+"]


def _single_file() -> tuple[Model, list[str] | None]:
    from ..models import single_file_model

    # tracer experiments place equally spaced particles on the ring
    return single_file_model(), ["*", "A"]


def _pt100() -> tuple[Model, list[str] | None]:
    from ..models import pt100_model

    # simulations start from the clean hex phase; CO arrives by adsorption
    return pt100_model(), ["h"]


#: name -> factory returning ``(model, initial_species | None)``
MODEL_REGISTRY: dict[str, Callable[[], tuple[Model, list[str] | None]]] = {
    "ziff": _ziff,
    "zgb": _zgb,
    "diffusion-1d": _diffusion_1d,
    "diffusion-2d": _diffusion_2d,
    "ising": _ising,
    "single-file": _single_file,
    "pt100": _pt100,
}


def _parse_tiling(spec: str) -> tuple[int, tuple[int, ...]]:
    """Parse ``"m:c0,c1,..."`` (e.g. ``"5:1,2"``)."""
    try:
        m_str, _, coeff_str = spec.partition(":")
        m = int(m_str)
        coeffs = tuple(int(c) for c in coeff_str.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tiling spec {spec!r} is not of the form 'm:c0,c1' (e.g. '5:1,2')"
        ) from None
    return m, coeffs


def _parse_shape(spec: str) -> tuple[int, ...]:
    """Parse ``"LxM"`` / ``"L,M"`` (e.g. ``"7x7"``)."""
    try:
        return tuple(int(s) for s in spec.replace("x", ",").split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shape spec {spec!r} is not of the form 'LxM' (e.g. '7x7')"
        ) from None


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to a parser (shared with ``repro.__main__``)."""
    parser.add_argument(
        "--model",
        choices=sorted(MODEL_REGISTRY),
        help="lint a single model (default: all registered models)",
    )
    parser.add_argument(
        "--tiling",
        type=_parse_tiling,
        metavar="M:C0,C1",
        help="modular tiling to verify, e.g. '5:1,2' (default: the "
        "canonical tiling found by find_modular_tiling)",
    )
    parser.add_argument(
        "--shape",
        type=_parse_shape,
        metavar="LxM",
        help="check one finite periodic lattice shape (default: prove "
        "for all aligned sizes symbolically)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--strict", action="store_true", help="treat warnings as failures"
    )
    parser.add_argument(
        "--no-rng-audit",
        action="store_true",
        help="skip the sequential-vs-ensemble RNG draw audit",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="run only the kernel aliasing/effect-contract pass "
        "(SR040-SR043, SR050/SR051)",
    )
    parser.add_argument(
        "--native",
        action="store_true",
        help="run only the native-tier verifier over the C/numba twins "
        "(SR060-SR064)",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="run only the protocol verifier over the executor/resilience "
        "layer (SR070-SR078)",
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help="preflight every shipped scenario file (model sanity + "
        "partition proof for parallel engine kinds)",
    )
    all_codes = code_table()
    parser.add_argument(
        "--codes",
        "--list-codes",
        action="store_true",
        dest="codes",
        help=f"print the diagnostic code table "
        f"({all_codes[0][0]}..{all_codes[-1][0]})",
    )


def _canonical_tiling(model: Model) -> tuple[int, tuple[int, ...]] | None:
    from ..partition.tilings import find_modular_tiling

    try:
        return find_modular_tiling(model)
    except ValueError:
        return None


def run(args: argparse.Namespace) -> int:
    """Execute the lint command for parsed arguments; returns exit code."""
    if args.codes:
        for code, sev, slug, desc in code_table():
            print(f"{code}  {sev:<7s} {slug:<30s} {desc}")
        return 0

    if args.kernels or args.native or args.protocol or args.scenarios:
        report = LintReport()
        if args.kernels:
            from .kernel_lint import lint_kernels

            report.extend(lint_kernels())
        if args.native:
            from .native import lint_native

            report.extend(lint_native())
        if args.protocol:
            from .protocol import lint_protocol

            report.extend(lint_protocol())
        if args.scenarios:
            from ..scenario import ScenarioError, lint_scenario, scenario_registry
            from .engine import LintError

            try:
                registry = scenario_registry()
            except ScenarioError as exc:
                print(exc.args[0] if exc.args else exc, file=sys.stderr)
                return 2
            for name in sorted(registry):
                spec = registry[name]
                try:
                    scenario_report = lint_scenario(spec)
                except LintError as exc:
                    report.extend(exc.report)
                except ScenarioError as exc:
                    print(
                        f"scenario {name}: {exc.args[0] if exc.args else exc}",
                        file=sys.stderr,
                    )
                    return 2
                else:
                    report.extend(scenario_report)
                    report.note(
                        f"scenario {name!r} ({spec.source}): preflight clean, "
                        f"digest {spec.short_digest()}"
                    )
        if args.json:
            print(report.to_json())
        else:
            print(report.render())
        return 0 if report.ok(strict=args.strict) else 1

    names = [args.model] if args.model else sorted(MODEL_REGISTRY)
    report = LintReport()
    for i, name in enumerate(names):
        model, initial = MODEL_REGISTRY[name]()
        tiling = args.tiling if args.tiling else _canonical_tiling(model)
        if tiling is None:
            report.note(f"model {name}: no modular tiling found (skipping proof)")
        report.extend(
            run_lint(
                model,
                tiling=tiling,
                shape=args.shape,
                initial_species=initial,
                rng_audit=(i == 0 and not args.no_rng_audit),
                native_audit=(i == 0),
                protocol_audit=(i == 0),
            )
        )

    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok(strict=args.strict) else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="static conflict/race proofs for partitions, kernels, models",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run(args)
    except BrokenPipeError:  # pragma: no cover
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
