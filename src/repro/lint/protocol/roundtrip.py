"""Checkpoint round-trip field analysis: SR073 / SR074.

The ``repro.ckpt/1`` bit-identity guarantee is only as strong as the
field-level agreement between each engine's ``checkpoint_payload`` and
``restore_payload`` (and the ``_extra_checkpoint_state`` /
``_restore_extra`` pair beneath them): a key written but never
restored silently drops run-loop state on resume; a key restored but
never written crashes (or worse, restores a default) on every resume;
a field encoded through :func:`~repro.resilience.checkpoint.encode_array`
but consumed without :func:`decode_array` breaks the dtype/encoding
round trip.

The pass parses both methods of a class, extracts the produced dict
literal (keys + per-key codec: ``encode_array`` / ``rng_state`` /
plain) and every consumption site (``payload["k"]`` subscripts,
``payload.get("k", ...)`` calls, ``"k" in payload`` guards), then
checks set equality modulo the *metadata keys* — identity fields
(``kind``, ``fingerprint``, ``algorithm``, ...) that are validated or
intentionally ignored rather than restored — and codec agreement per
key.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..diagnostics import Diagnostic, LintReport
from .astutil import class_def, make_diag, parse_source, walk_calls

__all__ = ["METADATA_KEYS", "RoundTripSpec", "audit_roundtrip"]

#: identity/metadata keys a restore validates or deliberately ignores
#: instead of assigning back into the engine
METADATA_KEYS = frozenset(
    {
        "kind",
        "algorithm",
        "model",
        "lattice",
        "time_mode",
        "fingerprint",
        "seed",
        "n_replicas",
    }
)

#: producer-side codec call -> codec tag
_ENCODERS = {"encode_array": "array", "rng_state": "rng"}

#: consumer-side codec call -> codec tag it satisfies
_DECODERS = {"decode_array": "array", "restore_rng_state": "rng"}


@dataclass(frozen=True)
class RoundTripSpec:
    """One produce/consume method pair audited for field agreement."""

    produce: str
    consume: str
    metadata: frozenset[str] = METADATA_KEYS


#: the two pair shapes every engine participates in
PAIR_SPECS: tuple[RoundTripSpec, ...] = (
    RoundTripSpec("checkpoint_payload", "restore_payload"),
    RoundTripSpec("_extra_checkpoint_state", "_restore_extra", frozenset()),
)


@dataclass
class _Produced:
    """Codec + location for one produced payload key."""

    codec: str
    node: ast.AST


@dataclass
class _Consumed:
    """Consumption sites + decoders applied for one payload key."""

    nodes: list[ast.AST] = field(default_factory=list)
    codecs: set[str] = field(default_factory=set)


def _value_codec(value: ast.expr) -> str:
    """Codec tag of a produced dict value expression."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in _ENCODERS:
            return _ENCODERS[value.func.id]
    if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
        elt = value.elt
        if isinstance(elt, ast.Call) and isinstance(elt.func, ast.Name):
            if elt.func.id in _ENCODERS:
                return _ENCODERS[elt.func.id] + "-seq"
    return "plain"


def _produced_keys(
    fn: ast.FunctionDef,
) -> tuple[dict[str, _Produced] | None, ast.AST | None]:
    """Keys of the dict literal(s) returned by the producer method."""
    produced: dict[str, _Produced] = {}
    saw_dict = False
    bad: ast.AST | None = None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if not isinstance(node.value, ast.Dict):
            bad = node
            continue
        saw_dict = True
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                produced[key.value] = _Produced(_value_codec(value), key)
            else:
                bad = key if key is not None else node
    if not saw_dict:
        return None, bad
    return produced, bad


def _payload_param(fn: ast.FunctionDef) -> str | None:
    """Name of the payload parameter (first one after ``self``)."""
    args = [a.arg for a in fn.args.args if a.arg != "self"]
    return args[0] if args else None


def _consumed_keys(fn: ast.FunctionDef, param: str) -> dict[str, _Consumed]:
    """Every key read from the payload parameter, with codec context."""
    consumed: dict[str, _Consumed] = {}

    def record(key: str, node: ast.AST) -> _Consumed:
        return consumed.setdefault(key, _Consumed())

    # direct reads and .get() calls
    key_nodes: dict[int, str] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            entry = record(node.slice.value, node)
            entry.nodes.append(node)
            key_nodes[id(node)] = node.slice.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            entry = record(node.args[0].value, node)
            entry.nodes.append(node)
            key_nodes[id(node)] = node.args[0].value
        elif (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
            and isinstance(node.comparators[0], ast.Name)
            and node.comparators[0].id == param
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            entry = record(node.left.value, node)
            entry.nodes.append(node)
    # decoder context: which keys flow through decode calls
    for call in walk_calls(fn):
        if not (
            isinstance(call.func, ast.Name) and call.func.id in _DECODERS
        ):
            continue
        codec = _DECODERS[call.func.id]
        for arg in call.args:
            for sub in ast.walk(arg):
                key = key_nodes.get(id(sub))
                if key is not None:
                    consumed[key].codecs.add(codec)
    # iteration context: `for x, rec in zip(..., payload["rngs"])` feeding
    # a decoder inside the loop body counts as a sequenced decode
    for node in ast.walk(fn):
        if not isinstance(node, ast.For):
            continue
        reads: set[str] = set()
        for sub in ast.walk(node.iter):
            key = key_nodes.get(id(sub))
            if key is not None:
                reads.add(key)
        if not reads:
            continue
        for call in walk_calls(node):
            if isinstance(call.func, ast.Name) and call.func.id in _DECODERS:
                for key in reads:
                    consumed[key].codecs.add(_DECODERS[call.func.id] + "-seq")
    return consumed


def audit_roundtrip(
    source: str,
    filename: str,
    class_name: str,
    line_offset: int = 0,
    metadata_keys: frozenset[str] = METADATA_KEYS,
) -> LintReport:
    """The SR073/SR074 pass over one engine class's source."""
    report = LintReport()
    subject = f"protocol:{class_name}"

    def diag(code: str, message: str, node: ast.AST, **data: object) -> None:
        report.add(
            make_diag(
                code, subject, message, filename, node, line_offset, **data
            )
        )

    try:
        tree = parse_source(source, filename)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "SR078",
                subject,
                f"source does not parse, nothing is proven: {exc}",
                {"file": filename, "line": exc.lineno or 0},
            )
        )
        return report
    cls = class_def(tree, class_name)
    if cls is None:
        diag("SR078", f"class {class_name} not found in {filename}", tree)
        return report
    mets = {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }
    audited = 0
    for spec in PAIR_SPECS:
        produce = mets.get(spec.produce)
        consume = mets.get(spec.consume)
        if produce is None and consume is None:
            continue
        if produce is None or consume is None:
            present = produce or consume
            assert present is not None
            diag(
                "SR073",
                f"{class_name} overrides {present.name} without its "
                f"counterpart ({spec.consume if consume is None else spec.produce})"
                f" — the round trip is one-sided",
                present,
                pair=(spec.produce, spec.consume),
            )
            continue
        audited += 1
        meta = metadata_keys if spec.metadata else frozenset()
        produced, bad = _produced_keys(produce)
        if produced is None:
            diag(
                "SR078",
                f"{spec.produce} does not return a dict literal the field "
                f"analysis can model",
                bad if bad is not None else produce,
            )
            continue
        if bad is not None:
            diag(
                "SR078",
                f"{spec.produce} builds payload keys the field analysis "
                f"cannot resolve statically",
                bad,
            )
        param = _payload_param(consume)
        if param is None:
            diag(
                "SR078",
                f"{spec.consume} takes no payload parameter to analyse",
                consume,
            )
            continue
        consumed = _consumed_keys(consume, param)
        # SR073: written but never restored / restored but never written
        for key in sorted(set(produced) - set(consumed) - meta):
            diag(
                "SR073",
                f"payload key {key!r} is written by {spec.produce} but "
                f"never consumed by {spec.consume} — its state is silently "
                f"dropped on resume",
                produced[key].node,
                key=key,
                direction="written-not-restored",
            )
        for key in sorted(set(consumed) - set(produced)):
            diag(
                "SR073",
                f"payload key {key!r} is consumed by {spec.consume} but "
                f"never written by {spec.produce} — every resume reads a "
                f"missing field",
                consumed[key].nodes[0],
                key=key,
                direction="restored-not-written",
            )
        # SR074: codec agreement per shared key
        for key in sorted(set(produced) & set(consumed)):
            codec = produced[key].codec
            applied = consumed[key].codecs
            if codec == "plain":
                if applied:
                    diag(
                        "SR074",
                        f"payload key {key!r} is written plain but restored "
                        f"through {sorted(applied)} — the decode will reject "
                        f"or reinterpret the value",
                        consumed[key].nodes[0],
                        key=key,
                        produced="plain",
                        consumed=sorted(applied),
                    )
                continue
            base = codec.removesuffix("-seq")
            if not any(a.removesuffix("-seq") == base for a in applied):
                decoder = {v: k for k, v in _DECODERS.items()}[base]
                diag(
                    "SR074",
                    f"payload key {key!r} is encoded with codec "
                    f"{codec!r} but {spec.consume} never passes it through "
                    f"{decoder} — the dtype/encoding round trip is broken",
                    consumed[key].nodes[0],
                    key=key,
                    produced=codec,
                    consumed=sorted(applied),
                )
    if report.ok() and audited:
        report.note(
            f"protocol round-trip: {class_name} payload fields and codecs "
            f"agree across {audited} produce/consume pair(s)"
        )
    return report
