"""Static verifier for the parallel-execution & resilience protocol layer.

The SR070-range passes prove, at the source level, the process-level
protocol invariants the PR-5/PR-6 subsystems rely on but no unit test
can exhaustively cover:

============  =====================================================
``SR070/071``  SharedMemory create/attach/close/unlink typestate
               (:mod:`~repro.lint.protocol.typestate`)
``SR072``      signal-handler and ambient-stack push/pop pairing
               (:mod:`~repro.lint.protocol.pairing`)
``SR073/074``  checkpoint payload round-trip field/codec agreement
               (:mod:`~repro.lint.protocol.roundtrip`)
``SR075/076``  recovery-ladder draw invariance and snapshot
               sufficiency (:mod:`~repro.lint.protocol.ladder`)
``SR077``      spawn-safe worker capture
               (:mod:`~repro.lint.protocol.spawn`)
``SR078``      analysis gap: the pass cannot model a shape and
               refuses to vouch for it
============  =====================================================

Entry points: :func:`lint_protocol` (the ``repro lint --protocol``
pass) and :func:`protocol_verdict` (the bench-provenance condensate).
"""

from .ladder import ALLOWED_RUNG_MUTATIONS, RUNG_METHODS, WORKER_FUNCS, audit_ladder
from .pairing import DEFAULT_PAIRS, PairSpec, audit_pairs
from .roundtrip import METADATA_KEYS, RoundTripSpec, audit_roundtrip
from .spawn import POOL_DISPATCH, UNPICKLABLE_ATTRS, audit_spawn
from .typestate import audit_shm_lifecycle
from .verify import PROTOCOL_CODES, ROUNDTRIP_CLASSES, lint_protocol, protocol_verdict

__all__ = [
    "ALLOWED_RUNG_MUTATIONS",
    "DEFAULT_PAIRS",
    "METADATA_KEYS",
    "PairSpec",
    "POOL_DISPATCH",
    "PROTOCOL_CODES",
    "ROUNDTRIP_CLASSES",
    "RoundTripSpec",
    "RUNG_METHODS",
    "UNPICKLABLE_ATTRS",
    "WORKER_FUNCS",
    "audit_ladder",
    "audit_pairs",
    "audit_roundtrip",
    "audit_shm_lifecycle",
    "audit_spawn",
    "lint_protocol",
    "protocol_verdict",
]
