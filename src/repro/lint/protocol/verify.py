"""The protocol lint pass: orchestrate all five analyses.

:func:`lint_protocol` is the ``repro lint --protocol`` entry point.
It pulls *source text* for the shipped protocol layer (the parallel
executor, the resilience checkpoint module, the backend registry and
every engine with a checkpoint pair) via :mod:`inspect` — no process
pools are spawned, no shared memory is created, no signals installed —
and runs:

* the SharedMemory lifecycle typestate pass (SR070/SR071),
* the signal/ambient-stack pairing pass (SR072),
* the checkpoint round-trip field analysis (SR073/SR074),
* the recovery-ladder draw/snapshot audit (SR075/SR076),
* the spawn-safety pass (SR077),

over them.  :func:`protocol_verdict` condenses a run into the same
provenance-block shape :func:`repro.lint.native.lint_verdict` emits,
so bench records carry both the native and the protocol verdicts side
by side.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
from types import ModuleType

from ..diagnostics import Diagnostic, LintReport
from .ladder import audit_ladder
from .pairing import audit_pairs
from .roundtrip import audit_roundtrip
from .spawn import audit_spawn
from .typestate import audit_shm_lifecycle

__all__ = [
    "PROTOCOL_CODES",
    "ROUNDTRIP_CLASSES",
    "lint_protocol",
    "protocol_verdict",
]

#: every code this pass can emit (recorded in bench provenance)
PROTOCOL_CODES = (
    "SR070", "SR071", "SR072", "SR073", "SR074",
    "SR075", "SR076", "SR077", "SR078",
)

#: ``module:Class`` pairs audited for checkpoint round-trip agreement
ROUNDTRIP_CLASSES = (
    "repro.dmc.base:SimulatorBase",
    "repro.ensemble.base:EnsembleBase",
    "repro.ca.pndca:PNDCA",
    "repro.ensemble.pndca:EnsemblePNDCA",
)

#: modules audited for signal/ambient-stack pairing discipline
PAIRING_MODULES = (
    "repro.resilience.checkpoint",
    "repro.backends.registry",
    "repro.jobs.orchestrator",
    "repro.jobs.journal",
)

#: the module holding the executor + worker functions
EXECUTOR_MODULE = "repro.parallel.executor"

#: modules whose worker entrypoints get the spawn-safety pass (the
#: executor additionally gets typestate + ladder)
SPAWN_MODULES = (EXECUTOR_MODULE, "repro.jobs.pool")


def _rel(path: str) -> str:
    """Repo-relative rendering of a module path (stable in reports)."""
    norm = path.replace(os.sep, "/")
    marker = "/src/repro/"
    idx = norm.rfind(marker)
    if idx >= 0:
        return norm[idx + 1 :]
    return norm


def _module_source(dotted: str) -> tuple[str, str] | Diagnostic:
    """``(source, relpath)`` of a module, or an SR078 on failure."""
    import importlib

    try:
        module: ModuleType = importlib.import_module(dotted)
        source = inspect.getsource(module)
        path = inspect.getsourcefile(module) or dotted
    except Exception as exc:  # unimportable/frozen: nothing is proven
        return Diagnostic(
            "SR078",
            f"protocol:{dotted}",
            f"cannot load source for {dotted}, nothing is proven: {exc}",
            {"file": dotted, "line": 0},
        )
    return source, _rel(path)


def lint_protocol() -> LintReport:
    """The full protocol pass over the shipped tree."""
    report = LintReport()

    # -- executor: typestate, ladder, spawn ----------------------------
    got = _module_source(EXECUTOR_MODULE)
    if isinstance(got, Diagnostic):
        report.add(got)
    else:
        source, path = got
        report.extend(audit_shm_lifecycle(source, path))
        report.extend(audit_ladder(source, path))

    # -- worker entrypoints: spawn safety ------------------------------
    for dotted in SPAWN_MODULES:
        got = _module_source(dotted)
        if isinstance(got, Diagnostic):
            report.add(got)
            continue
        source, path = got
        report.extend(audit_spawn(source, path))

    # -- resilience/backend layers: pairing ----------------------------
    for dotted in PAIRING_MODULES:
        got = _module_source(dotted)
        if isinstance(got, Diagnostic):
            report.add(got)
            continue
        source, path = got
        report.extend(audit_pairs(source, path))

    # -- engines: checkpoint round trips -------------------------------
    for entry in ROUNDTRIP_CLASSES:
        dotted, _, class_name = entry.partition(":")
        got = _module_source(dotted)
        if isinstance(got, Diagnostic):
            report.add(got)
            continue
        source, path = got
        report.extend(audit_roundtrip(source, path, class_name))

    return report


def protocol_verdict() -> dict:
    """Condensed verdict for bench provenance blocks.

    Mirrors :func:`repro.lint.native.lint_verdict`: ``codes`` lists
    what was checked (not what fired), ``ok`` the pass/fail verdict,
    ``errors`` the codes that actually fired, and ``digest`` a short
    stable hash of the full diagnostic payload so two BENCH files can
    be compared for "same verified protocol layer".
    """
    try:
        report = lint_protocol()
        errors = sorted({d.code for d in report.diagnostics})
        ok = report.ok()
    except Exception as exc:  # the verdict must never sink a bench run
        return {
            "codes": list(PROTOCOL_CODES),
            "ok": False,
            "errors": ["verifier-crash"],
            "digest": hashlib.sha256(str(exc).encode()).hexdigest()[:12],
        }
    payload = json.dumps(
        [d.to_dict() for d in report.diagnostics], sort_keys=True
    )
    return {
        "codes": list(PROTOCOL_CODES),
        "ok": ok,
        "errors": errors,
        "digest": hashlib.sha256(payload.encode()).hexdigest()[:12],
    }
