"""Recovery-ladder draw/snapshot invariance: SR075 / SR076.

The executor's fault-tolerance claim (PR 5) is *bit-identity through
recovery*: a chunk that fails, is retried, respawned or degraded to
serial execution must produce exactly the bytes an undisturbed run
would have.  Two invariants carry the proof:

1. **Draw invariance** (SR075): every random draw is master-drawn
   *before* dispatch; no recovery rung (deadline handling, respawn,
   serial fallback) and no worker-side function may consume RNG state,
   or the retried chunk replays different randoms than the original.
2. **Snapshot sufficiency** (SR076): the retry rung restores the
   pre-chunk snapshot before re-dispatching, the degraded rung
   restores it before the serial pass, and no rung mutates engine
   state outside the set the snapshot captures (the shared state
   array) or the executor's own recovery bookkeeping — anything else
   is state a retry would silently double-apply.

The pass audits a declared set of *rung* methods/functions of the
executor module; the set is part of the protocol spec, mirroring how
:mod:`repro.lint.native` trusts its entry-point specs.
"""

from __future__ import annotations

import ast

from ..diagnostics import Diagnostic, LintReport
from ..rng_lint import GENERATOR_METHODS, HELPER_KINDS
from .astutil import (
    attr_chain,
    class_def,
    find_shm_attrs,
    make_diag,
    parse_source,
    walk_calls,
)

__all__ = ["RUNG_METHODS", "WORKER_FUNCS", "ALLOWED_RUNG_MUTATIONS",
           "audit_ladder"]

#: executor methods forming the dispatch path and the recovery ladder
RUNG_METHODS: tuple[str, ...] = (
    "execute_chunk",
    "_dispatch",
    "_execute_fault_tolerant",
    "_armed_jobs",
    "_respawn_pool",
    "_exec_serial",
)

#: module-level functions executed inside worker processes
WORKER_FUNCS: tuple[str, ...] = ("_init_worker", "_exec_slice")

#: attributes a rung may mutate: the snapshot-captured state plus the
#: executor's own recovery bookkeeping (restored/reset deliberately)
ALLOWED_RUNG_MUTATIONS = frozenset(
    {"_pool", "_degraded", "_compiled_master", "_closed"}
)

#: RNG entry points beyond Generator methods: creating a generator or
#: reseeding global state inside a rung also breaks draw invariance
_RNG_FACTORY = frozenset({"default_rng", "seed", "RandomState"})


def _draw_sites(fn: ast.AST) -> list[tuple[ast.Call, str]]:
    """Every call that consumes or reseeds RNG state, with its kind."""
    sites: list[tuple[ast.Call, str]] = []
    for call in walk_calls(fn):
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in GENERATOR_METHODS or func.attr in _RNG_FACTORY:
                sites.append((call, func.attr))
        elif isinstance(func, ast.Name):
            if func.id in HELPER_KINDS:
                sites.append((call, HELPER_KINDS[func.id]))
            elif func.id in _RNG_FACTORY:
                sites.append((call, func.id))
    return sites


def _self_mutations(fn: ast.FunctionDef) -> list[tuple[ast.AST, str]]:
    """``self.X`` attribute stores (plain and augmented) in a method."""
    out: list[tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for t in targets:
            elts = t.elts if isinstance(t, ast.Tuple) else [t]
            for e in elts:
                if isinstance(e, ast.Attribute):
                    chain = attr_chain(e) or ""
                    if chain.startswith("self.") and chain.count(".") == 1:
                        out.append((node, chain[5:]))
    return out


def _subscript_store_attrs(fn: ast.FunctionDef) -> list[tuple[ast.AST, str]]:
    """``self.X[...] = ...`` stores (the snapshot-restore idiom)."""
    out: list[tuple[ast.AST, str]] = []
    for node in ast.walk(fn):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for t in targets:
            if isinstance(t, ast.Subscript) and isinstance(
                t.value, ast.Attribute
            ):
                chain = attr_chain(t.value) or ""
                if chain.startswith("self."):
                    out.append((node, chain.split(".")[1]))
    return out


def _snapshot_name(
    fn: ast.FunctionDef, view_attrs: set[str]
) -> tuple[str, ast.AST] | None:
    """The local bound to ``self.<view>.copy()`` (the pre-chunk snapshot)."""
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "copy"
        ):
            chain = attr_chain(node.value.func.value) or ""
            if chain.startswith("self.") and chain.split(".")[1] in view_attrs:
                return node.targets[0].id, node
    return None


def _restores_snapshot(
    node: ast.AST, view_attrs: set[str], snap: str
) -> bool:
    """Does the subtree contain ``self.<view>[...] = <snap>``?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        if not (
            isinstance(sub.value, ast.Name) and sub.value.id == snap
        ):
            continue
        for t in sub.targets:
            if isinstance(t, ast.Subscript) and isinstance(
                t.value, ast.Attribute
            ):
                chain = attr_chain(t.value) or ""
                if (
                    chain.startswith("self.")
                    and chain.split(".")[1] in view_attrs
                ):
                    return True
    return False


def audit_ladder(
    source: str,
    filename: str,
    class_name: str = "ParallelChunkExecutor",
    rung_methods: tuple[str, ...] = RUNG_METHODS,
    worker_funcs: tuple[str, ...] = WORKER_FUNCS,
    line_offset: int = 0,
) -> LintReport:
    """The SR075/SR076 pass over one executor module's source."""
    report = LintReport()
    subject = f"protocol:{class_name}.ladder"

    def diag(code: str, message: str, node: ast.AST, **data: object) -> None:
        report.add(
            make_diag(
                code, subject, message, filename, node, line_offset, **data
            )
        )

    try:
        tree = parse_source(source, filename)
    except SyntaxError as exc:
        report.add(
            Diagnostic(
                "SR078",
                subject,
                f"source does not parse, nothing is proven: {exc}",
                {"file": filename, "line": exc.lineno or 0},
            )
        )
        return report
    cls = class_def(tree, class_name)
    if cls is None:
        diag("SR078", f"class {class_name} not found in {filename}", tree)
        return report
    mets = {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }
    module_funcs = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    _, _, _, view_attrs = find_shm_attrs(cls)
    if not view_attrs:
        view_attrs = {"_state"}

    # -- SR075: no rung or worker function consumes RNG state ----------
    audited: list[str] = []
    for name in rung_methods:
        fn = mets.get(name)
        if fn is None:
            continue
        audited.append(name)
        for call, kind in _draw_sites(fn):
            diag(
                "SR075",
                f"{name} draws {kind!r}: recovery rungs must not consume "
                f"RNG state — a retried chunk would replay different "
                f"randoms than the original dispatch",
                call,
                method=name,
                kind=kind,
            )
    for name in worker_funcs:
        fn_mod = module_funcs.get(name)
        if fn_mod is None:
            continue
        audited.append(name)
        for call, kind in _draw_sites(fn_mod):
            diag(
                "SR075",
                f"worker function {name} draws {kind!r}: all randoms are "
                f"master-drawn; a worker-side draw desynchronises the "
                f"bit-identity contract",
                call,
                method=name,
                kind=kind,
            )

    # -- SR076: snapshot discipline in the fault-tolerant rung ---------
    ft = mets.get("_execute_fault_tolerant")
    if ft is not None:
        snap = _snapshot_name(ft, view_attrs)
        if snap is None:
            diag(
                "SR076",
                "_execute_fault_tolerant never snapshots the shared state "
                "before dispatch — a failed slice cannot be rolled back",
                ft,
            )
        else:
            snap_name, _snap_node = snap
            # every except handler that continues the retry loop must
            # restore the snapshot before the next dispatch
            for node in ast.walk(ft):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    reraises = any(
                        isinstance(s, ast.Raise)
                        for stmt in handler.body
                        for s in ast.walk(stmt)
                    )
                    if reraises:
                        continue
                    if not _restores_snapshot(
                        handler, view_attrs, snap_name
                    ):
                        diag(
                            "SR076",
                            "retry handler re-dispatches without restoring "
                            "the pre-chunk snapshot — completed co-slices "
                            "stay applied and the retry double-executes "
                            "them",
                            handler,
                            snapshot=snap_name,
                        )
            # the degraded rung: a serial fallback after the loop must
            # also run from the restored snapshot
            serial_call: ast.AST | None = None
            for call in walk_calls(ft):
                chain = attr_chain(call.func) or ""
                if chain == "self._exec_serial":
                    serial_call = call
            if serial_call is not None:
                restored_before = False
                for node in ast.walk(ft):
                    if (
                        isinstance(node, ast.Assign)
                        and node.lineno < serial_call.lineno
                        and not isinstance(node, ast.For)
                        and _restores_snapshot(node, view_attrs, snap_name)
                        and not _inside_loop(ft, node)
                    ):
                        restored_before = True
                if not restored_before:
                    diag(
                        "SR076",
                        "serial degradation executes without restoring the "
                        "pre-chunk snapshot first — the degraded pass "
                        "re-applies slices the failed dispatch completed",
                        serial_call,
                        snapshot=snap_name,
                    )

    # -- SR076: rungs must not mutate uncaptured engine state ----------
    allowed = ALLOWED_RUNG_MUTATIONS | view_attrs
    for name in rung_methods:
        fn = mets.get(name)
        if fn is None:
            continue
        for node, attr in _self_mutations(fn):
            if attr not in allowed:
                diag(
                    "SR076",
                    f"{name} mutates self.{attr}, which the pre-chunk "
                    f"snapshot does not capture — a retry would not roll "
                    f"it back",
                    node,
                    method=name,
                    attr=attr,
                )
        for node, attr in _subscript_store_attrs(fn):
            if attr not in allowed:
                diag(
                    "SR076",
                    f"{name} writes into self.{attr}, which the pre-chunk "
                    f"snapshot does not capture — a retry would not roll "
                    f"it back",
                    node,
                    method=name,
                    attr=attr,
                )

    if report.ok() and audited:
        report.note(
            f"protocol ladder: {len(audited)} rung/worker function(s) "
            f"draw-free and snapshot-disciplined "
            f"({', '.join(sorted(audited))})"
        )
    return report


def _inside_loop(fn: ast.FunctionDef, target: ast.AST) -> bool:
    """Is ``target`` nested inside a for/while loop of the function?"""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.While)):
            for sub in ast.walk(node):
                if sub is target:
                    return True
    return False
